//! Stress and robustness tests of the coordination stack: many workers,
//! many pools, repeated runs, failure injection.

use manifold::prelude::*;
use protocol::{protocol_mw, MasterHandle, ProtocolOutcome, WorkerHandle};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn echo_worker(coord: &Coord, death: &Name) -> ProcessRef {
    let death = death.clone();
    coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
        let h = WorkerHandle::new(ctx, death);
        let u = h.receive()?;
        h.submit(u)?;
        h.die();
        Ok(())
    })
}

#[test]
fn thirty_one_workers_like_level_15() {
    // The paper's biggest pool: w = 2*15 + 1 = 31 workers.
    let env = Environment::new();
    let seen = Arc::new(AtomicUsize::new(0));
    let seen2 = seen.clone();
    let outcome = env
        .run_coordinator("Main", |coord| {
            let coord_ref = coord.self_ref();
            let env2 = coord.env().clone();
            let master = coord.create_atomic("Master", move |ctx: ProcessCtx| {
                let h = MasterHandle::new(ctx, coord_ref, env2);
                h.create_pool();
                for k in 0..31 {
                    let _w = h.request_worker()?;
                    h.send_work(Unit::int(k))?;
                }
                let mut sum = 0i64;
                for _ in 0..31 {
                    sum += h.collect()?.expect_int()?;
                }
                assert_eq!(sum, (0..31).sum::<i64>());
                seen2.store(sum as usize, Ordering::SeqCst);
                h.rendezvous()?;
                h.finished();
                Ok(())
            });
            coord.activate(&master)?;
            protocol_mw(coord, &master, echo_worker)
        })
        .unwrap();
    assert_eq!(outcome.pools()[0].workers_created, 31);
    assert_eq!(outcome.pools()[0].deaths_counted, 31);
    assert_eq!(seen.load(Ordering::SeqCst), 465);
    env.shutdown();
    assert!(env.failures().is_empty());
}

#[test]
fn ten_sequential_pools() {
    let env = Environment::new();
    let outcome = env
        .run_coordinator("Main", |coord| {
            let coord_ref = coord.self_ref();
            let env2 = coord.env().clone();
            let master = coord.create_atomic("Master", move |ctx: ProcessCtx| {
                let h = MasterHandle::new(ctx, coord_ref, env2);
                for _ in 0..10 {
                    h.create_pool();
                    for _ in 0..2 {
                        let _w = h.request_worker()?;
                        h.send_work(Unit::int(1))?;
                    }
                    for _ in 0..2 {
                        let _ = h.collect()?;
                    }
                    h.rendezvous()?;
                }
                h.finished();
                Ok(())
            });
            coord.activate(&master)?;
            protocol_mw(coord, &master, echo_worker)
        })
        .unwrap();
    assert_eq!(outcome.pools().len(), 10);
    assert!(outcome
        .pools()
        .iter()
        .all(|p| p.workers_created == 2 && p.deaths_counted == 2));
    env.shutdown();
}

#[test]
fn repeated_environments_do_not_leak_state() {
    for round in 0..20 {
        let env = Environment::new();
        let outcome = env
            .run_coordinator("Main", |coord| {
                let coord_ref = coord.self_ref();
                let env2 = coord.env().clone();
                let master = coord.create_atomic("Master", move |ctx: ProcessCtx| {
                    let h = MasterHandle::new(ctx, coord_ref, env2);
                    h.create_pool();
                    let _w = h.request_worker()?;
                    h.send_work(Unit::int(round))?;
                    let got = h.collect()?.expect_int()?;
                    assert_eq!(got, round);
                    h.rendezvous()?;
                    h.finished();
                    Ok(())
                });
                coord.activate(&master)?;
                protocol_mw(coord, &master, echo_worker)
            })
            .unwrap();
        assert!(matches!(outcome, ProtocolOutcome::Finished { .. }));
        env.shutdown();
        assert!(env.failures().is_empty(), "round {round} failed");
    }
}

#[test]
fn failing_worker_is_recorded_and_torn_down() {
    // A worker that errors out instead of submitting never raises
    // death_worker, so the pool's rendezvous could never be acknowledged.
    // The master times out and terminates; the pool observes the master's
    // termination and aborts instead of idling forever, so the coordinator
    // unblocks on its own — no shutdown needed to reclaim it — and both
    // failures (the worker's crash, the aborted pool) are on record.
    let env = Environment::new();
    let master_done = Arc::new(AtomicUsize::new(0));
    let md = master_done.clone();
    let env2 = env.clone();
    let coordinator = env.spawn_coordinator("Main", move |coord| {
        let coord_ref = coord.self_ref();
        let env3 = coord.env().clone();
        let md2 = md.clone();
        let master = coord.create_atomic("Master", move |ctx: ProcessCtx| {
            let h = MasterHandle::new(ctx, coord_ref, env3);
            h.create_pool();
            let _w = h.request_worker()?;
            h.send_work(Unit::int(1))?;
            match h
                .ctx()
                .read_timeout("dataport", std::time::Duration::from_millis(300))
            {
                Err(MfError::Timeout) => {
                    // Expected: the worker died without submitting.
                    md2.store(1, Ordering::SeqCst);
                    Ok(())
                }
                other => panic!("expected timeout, got {other:?}"),
            }
        });
        coord.activate(&master)?;
        protocol_mw(coord, &master, |coord, death| {
            let death = death.clone();
            coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
                let h = WorkerHandle::new(ctx, death);
                let _ = h.receive()?;
                Err(MfError::App("simulated crash".into()))
            })
        })?;
        Ok(())
    });
    // The master finishes (with its timeout) even though the pool stalls.
    for _ in 0..200 {
        if master_done.load(Ordering::SeqCst) == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(
        master_done.load(Ordering::SeqCst),
        1,
        "master never finished"
    );
    // The pool is master-termination sensitive: the coordinator aborts the
    // pool and terminates by itself once the master is gone.
    for _ in 0..200 {
        if coordinator.life_state() == manifold::process::LifeState::Terminated {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(
        coordinator.life_state(),
        manifold::process::LifeState::Terminated,
        "coordinator stayed stalled inside the dead master's pool"
    );
    env2.shutdown();
    let failures = env2.failures();
    assert!(
        failures
            .iter()
            .any(|(_, e)| e.to_string().contains("simulated crash")),
        "worker crash not recorded: {failures:?}"
    );
    assert!(
        failures.iter().any(|(_, e)| e
            .to_string()
            .contains("master terminated inside an active worker pool")),
        "pool abort not recorded: {failures:?}"
    );
}

#[test]
fn heavyweight_payloads_flow_through_pool() {
    // 1 MB of reals per worker, checks no corruption and no copies lost.
    let env = Environment::new();
    env.run_coordinator("Main", |coord| {
        let coord_ref = coord.self_ref();
        let env2 = coord.env().clone();
        let master = coord.create_atomic("Master", move |ctx: ProcessCtx| {
            let h = MasterHandle::new(ctx, coord_ref, env2);
            h.create_pool();
            for k in 0..4 {
                let _w = h.request_worker()?;
                let data: Vec<f64> = (0..131_072).map(|i| (i + k) as f64).collect();
                h.send_work(Unit::reals(data))?;
            }
            let mut checks = Vec::new();
            for _ in 0..4 {
                let sum = h.collect()?.expect_real()?;
                checks.push(sum);
            }
            checks.sort_by(f64::total_cmp);
            let expect: Vec<f64> = (0..4)
                .map(|k| (0..131_072u64).map(|i| (i + k) as f64).sum::<f64>())
                .collect();
            assert_eq!(checks, expect);
            h.rendezvous()?;
            h.finished();
            Ok(())
        });
        coord.activate(&master)?;
        protocol_mw(coord, &master, |coord, death| {
            let death = death.clone();
            coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
                let h = WorkerHandle::new(ctx, death);
                let data = h.receive()?.expect_reals()?;
                let sum: f64 = data.iter().sum();
                h.submit(Unit::real(sum))?;
                h.die();
                Ok(())
            })
        })
    })
    .unwrap();
    env.shutdown();
    assert!(env.failures().is_empty());
}
