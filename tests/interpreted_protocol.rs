//! The deepest fidelity test in the repository: take the paper's
//! `protocolMW.m` **source code** (§4.2), parse it with the `Mc` front-end,
//! and *execute* it with the interpreter against real master and worker
//! processes — then check it behaves exactly like the hand-transliterated
//! `protocol::protocol_mw`, down to the sparse-grid application's results.

use std::rc::Rc;
use std::sync::Arc;

use manifold::lang::{parse_program, Interp, Value};
use manifold::prelude::*;
use parking_lot::Mutex;
use protocol::{MasterHandle, WorkerHandle};
use renovation::codec::{request_from_unit, request_to_unit, result_from_unit, result_to_unit};
use solver::SequentialApp;

/// Run the paper's ProtocolMW (from source) over a squaring master/worker
/// pair and return the collected results.
fn run_interpreted_squares(jobs: Vec<f64>) -> Vec<f64> {
    let program = parse_program(manifold::lang::PROTOCOL_MW_SOURCE).unwrap();
    let env = Environment::new();
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    let n = jobs.len();

    env.run_coordinator("Main", |coord| {
        let coord_ref = coord.self_ref();
        let env2 = coord.env().clone();
        let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
            let h = MasterHandle::new(ctx, coord_ref, env2);
            h.create_pool();
            for x in &jobs {
                let _w = h.request_worker()?;
                h.send_work(Unit::real(*x))?;
            }
            for _ in 0..n {
                out2.lock().push(h.collect()?.expect_real()?);
            }
            h.rendezvous()?;
            h.finished();
            Ok(())
        });
        // Tune in before the master can raise anything.
        coord.watch(&master);
        coord.activate(&master)?;

        let worker_factory: manifold::lang::AtomicFactory = Rc::new(|coord, args| {
            let death = match &args[0] {
                Value::Event(e) => e.clone(),
                other => panic!("worker factory expected an event, got {other:?}"),
            };
            // Created but NOT activated: per §4.3 step 3(c), the master
            // activates the worker after receiving its reference.
            Ok(
                coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
                    let h = WorkerHandle::new(ctx, death);
                    let x = h.receive()?.expect_real()?;
                    h.submit(Unit::real(x * x))?;
                    h.die();
                    Ok(())
                }),
            )
        });

        let interp = Interp::new(&program, "protocolMW.m");
        interp.call_manner(
            coord,
            "ProtocolMW",
            vec![Value::Process(master), Value::Manifold(worker_factory)],
        )
    })
    .unwrap();
    env.shutdown();
    assert!(env.failures().is_empty());
    let mut v = out.lock().clone();
    v.sort_by(f64::total_cmp);
    v
}

#[test]
fn interpreted_paper_source_squares_numbers() {
    let got = run_interpreted_squares(vec![2.0, 3.0, 4.0, 5.0]);
    assert_eq!(got, vec![4.0, 9.0, 16.0, 25.0]);
}

#[test]
fn interpreted_paper_source_single_worker() {
    assert_eq!(run_interpreted_squares(vec![7.0]), vec![49.0]);
}

#[test]
fn interpreted_paper_source_runs_sparse_grid_app() {
    // The full renovated application coordinated by the *interpreted*
    // paper source: results must be bit-identical to the sequential run.
    let app = SequentialApp::new(2, 1, 1.0e-3);
    let seq = app.run().unwrap();

    let program = parse_program(manifold::lang::PROTOCOL_MW_SOURCE).unwrap();
    let env = Environment::new();
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();

    env.run_coordinator("Main", |coord| {
        let coord_ref = coord.self_ref();
        let env2 = coord.env().clone();
        let grids = app.grids();
        let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
            let h = MasterHandle::new(ctx, coord_ref, env2);
            h.create_pool();
            for idx in &grids {
                let _w = h.request_worker()?;
                h.send_work(request_to_unit(&app.request_for(*idx)))?;
            }
            for _ in &grids {
                out2.lock().push(result_from_unit(&h.collect()?)?);
            }
            h.rendezvous()?;
            h.finished();
            Ok(())
        });
        coord.watch(&master);
        coord.activate(&master)?;

        let worker_factory: manifold::lang::AtomicFactory = Rc::new(|coord, args| {
            let death = match &args[0] {
                Value::Event(e) => e.clone(),
                _ => unreachable!(),
            };
            Ok(
                coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
                    let h = WorkerHandle::new(ctx, death);
                    let req = request_from_unit(&h.receive()?)?;
                    let res = solver::subsolve(&req).map_err(|e| MfError::App(e.to_string()))?;
                    h.submit(result_to_unit(&res))?;
                    h.die();
                    Ok(())
                }),
            )
        });

        Interp::new(&program, "protocolMW.m").call_manner(
            coord,
            "ProtocolMW",
            vec![Value::Process(master), Value::Manifold(worker_factory)],
        )
    })
    .unwrap();
    env.shutdown();
    assert!(env.failures().is_empty());

    let mut per_grid = out.lock().clone();
    per_grid.sort_by_key(|r| (r.l + r.m, r.l));
    let mut work = solver::WorkCounter::new();
    let combined = solver::sequential::prolongation_phase(2, 1, &per_grid, &mut work);
    assert_eq!(combined, seq.combined, "interpreted run diverged");
}

#[test]
fn interpreted_source_emits_paper_trace_messages() {
    let program = parse_program(manifold::lang::PROTOCOL_MW_SOURCE).unwrap();
    let env = Environment::new();
    env.run_coordinator("Main", |coord| {
        let coord_ref = coord.self_ref();
        let env2 = coord.env().clone();
        let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
            let h = MasterHandle::new(ctx, coord_ref, env2);
            h.create_pool();
            let _w = h.request_worker()?;
            h.send_work(Unit::real(1.0))?;
            let _ = h.collect()?;
            h.rendezvous()?;
            h.finished();
            Ok(())
        });
        coord.watch(&master);
        coord.activate(&master)?;
        let factory: manifold::lang::AtomicFactory = Rc::new(|coord, args| {
            let death = match &args[0] {
                Value::Event(e) => e.clone(),
                _ => unreachable!(),
            };
            Ok(
                coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
                    let h = WorkerHandle::new(ctx, death);
                    let x = h.receive()?;
                    h.submit(x)?;
                    h.die();
                    Ok(())
                }),
            )
        });
        Interp::new(&program, "protocolMW.m").call_manner(
            coord,
            "ProtocolMW",
            vec![Value::Process(master), Value::Manifold(factory)],
        )
    })
    .unwrap();
    let msgs: Vec<(String, String)> = env
        .trace()
        .snapshot()
        .into_iter()
        .map(|r| (r.source_file, r.message))
        .collect();
    env.shutdown();
    // The MES messages of protocolMW.m, attributed to the .m source.
    for want in ["begin", "create_worker: begin", "rendezvous acknowledged"] {
        assert!(
            msgs.iter().any(|(f, m)| f == "protocolMW.m" && m == want),
            "missing MES {want:?} in {msgs:?}"
        );
    }
}
