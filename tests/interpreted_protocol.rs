//! The deepest fidelity test in the repository: take the paper's
//! `protocolMW.m` **source code** (§4.2), parse it with the `Mc` front-end,
//! and *execute* it — under the tree-walking interpreter AND the compiled
//! state-machine VM — against real master and worker processes. Both
//! executors must behave exactly like the hand-transliterated
//! `protocol::protocol_mw`, down to the sparse-grid application's results.

use std::sync::Arc;

use manifold::lang::CoordExec;
use manifold::prelude::*;
use parking_lot::Mutex;
use protocol::{run_protocol_source, MasterHandle, WorkerHandle};
use renovation::codec::{request_from_unit, request_to_unit, result_from_unit, result_to_unit};
use solver::SequentialApp;

/// Run the paper's ProtocolMW (from source) over a squaring master/worker
/// pair and return the collected results.
fn run_interpreted_squares(kind: CoordExec, jobs: Vec<f64>) -> Vec<f64> {
    let env = Environment::new();
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();
    let n = jobs.len();

    run_protocol_source(
        &env,
        kind,
        move |h: MasterHandle| {
            h.create_pool();
            for x in &jobs {
                let _w = h.request_worker()?;
                h.send_work(Unit::real(*x))?;
            }
            for _ in 0..n {
                out2.lock().push(h.collect()?.expect_real()?);
            }
            h.rendezvous()?;
            h.finished();
            Ok(())
        },
        |h: WorkerHandle| {
            let x = h.receive()?.expect_real()?;
            h.submit(Unit::real(x * x))?;
            h.die();
            Ok(())
        },
    )
    .unwrap();
    env.shutdown();
    assert!(env.failures().is_empty());
    let mut v = out.lock().clone();
    v.sort_by(f64::total_cmp);
    v
}

#[test]
fn interpreted_paper_source_squares_numbers() {
    for kind in CoordExec::ALL {
        let got = run_interpreted_squares(kind, vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(got, vec![4.0, 9.0, 16.0, 25.0], "executor {kind}");
    }
}

#[test]
fn interpreted_paper_source_single_worker() {
    for kind in CoordExec::ALL {
        assert_eq!(
            run_interpreted_squares(kind, vec![7.0]),
            vec![49.0],
            "executor {kind}"
        );
    }
}

#[test]
fn interpreted_paper_source_runs_sparse_grid_app() {
    // The full renovated application coordinated by the paper source:
    // results must be bit-identical to the sequential run — under *both*
    // coordinator executors.
    let app = SequentialApp::new(2, 1, 1.0e-3);
    let seq = app.run().unwrap();

    for kind in CoordExec::ALL {
        let app = SequentialApp::new(2, 1, 1.0e-3);
        let env = Environment::new();
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = out.clone();

        run_protocol_source(
            &env,
            kind,
            move |h: MasterHandle| {
                let grids = app.grids();
                h.create_pool();
                for idx in &grids {
                    let _w = h.request_worker()?;
                    h.send_work(request_to_unit(&app.request_for(*idx)))?;
                }
                for _ in &grids {
                    out2.lock().push(result_from_unit(&h.collect()?)?);
                }
                h.rendezvous()?;
                h.finished();
                Ok(())
            },
            |h: WorkerHandle| {
                let req = request_from_unit(&h.receive()?)?;
                let res = solver::subsolve(&req).map_err(|e| MfError::App(e.to_string()))?;
                h.submit(result_to_unit(&res))?;
                h.die();
                Ok(())
            },
        )
        .unwrap();
        env.shutdown();
        assert!(env.failures().is_empty());

        let mut per_grid = out.lock().clone();
        per_grid.sort_by_key(|r| (r.l + r.m, r.l));
        let mut work = solver::WorkCounter::new();
        let combined = solver::sequential::prolongation_phase(2, 1, &per_grid, &mut work);
        assert_eq!(
            combined, seq.combined,
            "{kind} run diverged from sequential"
        );
    }
}

#[test]
fn interpreted_source_emits_paper_trace_messages() {
    for kind in CoordExec::ALL {
        let env = Environment::new();
        run_protocol_source(
            &env,
            kind,
            |h: MasterHandle| {
                h.create_pool();
                let _w = h.request_worker()?;
                h.send_work(Unit::real(1.0))?;
                let _ = h.collect()?;
                h.rendezvous()?;
                h.finished();
                Ok(())
            },
            |h: WorkerHandle| {
                let x = h.receive()?;
                h.submit(x)?;
                h.die();
                Ok(())
            },
        )
        .unwrap();
        let msgs: Vec<(String, String)> = env
            .trace()
            .snapshot()
            .into_iter()
            .map(|r| (r.source_file, r.message))
            .collect();
        env.shutdown();
        // The MES messages of protocolMW.m, attributed to the .m source.
        for want in ["begin", "create_worker: begin", "rendezvous acknowledged"] {
            assert!(
                msgs.iter().any(|(f, m)| f == "protocolMW.m" && m == want),
                "executor {kind}: missing MES {want:?} in {msgs:?}"
            );
        }
    }
}
