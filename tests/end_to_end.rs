//! End-to-end integration: the renovated application against the
//! sequential original, across deployment modes — the §6 guarantee that
//! "the computational results … are exactly the same as in the sequential
//! version".

use renovation::app::{run_concurrent, RunMode};
use solver::problem::Problem;
use solver::SequentialApp;

#[test]
fn all_modes_agree_bit_for_bit_level2() {
    let app = SequentialApp::new(2, 2, 1.0e-3);
    let seq = app.run().unwrap();

    let parallel = run_concurrent(&app, &RunMode::Parallel, true).unwrap();
    assert_eq!(parallel.result.combined, seq.combined);

    let distributed = run_concurrent(
        &app,
        &RunMode::Distributed {
            hosts: RunMode::paper_hosts(),
        },
        true,
    )
    .unwrap();
    assert_eq!(distributed.result.combined, seq.combined);

    let io_workers = run_concurrent(&app, &RunMode::Parallel, false).unwrap();
    assert_eq!(io_workers.result.combined, seq.combined);
}

#[test]
fn agreement_holds_across_levels_and_tolerances() {
    for (level, tol) in [(0u32, 1.0e-3), (1, 1.0e-4), (3, 1.0e-3)] {
        let app = SequentialApp::new(2, level, tol);
        let seq = app.run().unwrap();
        let conc = run_concurrent(&app, &RunMode::Parallel, true).unwrap();
        assert_eq!(
            conc.result.combined, seq.combined,
            "divergence at level {level}, tol {tol:e}"
        );
        assert_eq!(
            conc.outcome.pools()[0].workers_created as u32,
            2 * level + 1,
            "worker count formula w = 2l+1"
        );
    }
}

#[test]
fn agreement_on_manufactured_problem() {
    let app = SequentialApp::new(2, 2, 1.0e-4).with_problem(Problem::manufactured_benchmark());
    let seq = app.run().unwrap();
    let conc = run_concurrent(&app, &RunMode::Parallel, true).unwrap();
    assert_eq!(conc.result.combined, seq.combined);
    assert!(conc.result.l2_error < 1e-2);
}

#[test]
fn distributed_trace_reproduces_section6_structure() {
    let app = SequentialApp::new(2, 2, 1.0e-3);
    let conc = run_concurrent(
        &app,
        &RunMode::Distributed {
            hosts: RunMode::paper_hosts(),
        },
        true,
    )
    .unwrap();
    let recs: Vec<_> = conc
        .records
        .iter()
        .filter(|r| r.message == "Welcome" || r.message == "Bye")
        .collect();
    // Master Welcome first; master Bye last; 5 workers in between.
    assert_eq!(
        recs.first().unwrap().manifold_name.as_str(),
        "Master(port in)"
    );
    assert_eq!(recs.first().unwrap().message, "Welcome");
    assert_eq!(
        recs.last().unwrap().manifold_name.as_str(),
        "Master(port in)"
    );
    assert_eq!(recs.last().unwrap().message, "Bye");
    let worker_welcomes = recs
        .iter()
        .filter(|r| r.manifold_name.as_str() == "Worker(event)" && r.message == "Welcome")
        .count();
    assert_eq!(worker_welcomes, 5);
    // The master runs on the start-up machine; workers never do (their
    // task instances fork on the locus machines).
    assert!(recs
        .iter()
        .filter(|r| r.manifold_name.as_str() == "Worker(event)")
        .all(|r| r.host.as_str() != "bumpa.sen.cwi.nl"));
    // Every record carries the full paper label (task uid, timestamps).
    for r in &conc.records {
        assert!(r.task_uid > 0);
        assert!(r.secs > 0);
    }
}

#[test]
fn five_host_cluster_reuses_machines_for_seven_workers() {
    // Level 3 → 7 workers on 5 locus machines: perpetual task reuse must
    // make it fit ("we need less than six machines to run an application
    // with five workers").
    let app = SequentialApp::new(2, 3, 1.0e-3);
    let conc = run_concurrent(
        &app,
        &RunMode::Distributed {
            hosts: RunMode::paper_hosts(),
        },
        true,
    )
    .unwrap();
    assert_eq!(conc.outcome.pools()[0].workers_created, 7);
    assert!(conc.machines_used <= 6, "used {}", conc.machines_used);
    let seq = app.run().unwrap();
    assert_eq!(conc.result.combined, seq.combined);
}

#[test]
fn repeated_runs_are_deterministic() {
    let app = SequentialApp::new(2, 1, 1.0e-3);
    let a = run_concurrent(&app, &RunMode::Parallel, true).unwrap();
    let b = run_concurrent(&app, &RunMode::Parallel, true).unwrap();
    assert_eq!(a.result.combined, b.result.combined);
}

#[test]
fn every_policy_matches_sequential_in_every_mode() {
    // The scheduler acceptance matrix: all three dispatch policies, in
    // both deployment modes, must be bit-identical to the sequential
    // program — policies change only job order and worker concurrency.
    use renovation::app::run_concurrent_with_policy;
    use std::sync::Arc;

    let app = SequentialApp::new(2, 2, 1.0e-3);
    let seq = app.run().unwrap();
    let policies: [protocol::PolicyRef; 3] = [
        Arc::new(protocol::PaperFaithful),
        Arc::new(protocol::BoundedReuse::new(2)),
        Arc::new(protocol::CostAware),
    ];
    let modes = [
        RunMode::Parallel,
        RunMode::Distributed {
            hosts: RunMode::paper_hosts(),
        },
    ];
    for policy in &policies {
        for mode in &modes {
            let conc = run_concurrent_with_policy(&app, mode, true, policy.clone()).unwrap();
            assert_eq!(
                conc.result.combined,
                seq.combined,
                "policy {} diverged in {mode:?}",
                policy.name()
            );
            assert_eq!(conc.result.l2_error, seq.l2_error);
            assert_eq!(conc.outcome.pools()[0].workers_created, 5);
        }
    }
}
