//! Quantitative integration tests against the paper's Table 1.
//!
//! The sequential-time column is the calibration target and must track the
//! paper closely; the concurrent columns are *predictions* of the simulator
//! and must reproduce the paper's shape (crossover, saturation, machine
//! growth) within the documented bands. EXPERIMENTS.md discusses each.

use renovation::cost::{CostModel, REF_TOL};
use renovation::run_distributed_experiment;
use renovation::virtualrun::figure1_run;

/// Paper Table 1, 1.0e-3 block: (level, st, ct, m, su).
const PAPER_1E3: &[(u32, f64, f64, f64, f64)] = &[
    (8, 4.27, 30.06, 3.7, 0.1),
    (9, 10.28, 23.84, 4.1, 0.4),
    (10, 24.14, 21.82, 5.5, 1.1),
    (11, 57.91, 33.58, 6.3, 1.7),
    (12, 145.47, 50.79, 7.6, 2.9),
    (13, 337.69, 75.28, 9.8, 4.5),
    (14, 818.62, 124.20, 11.7, 6.6),
    (15, 2019.02, 259.69, 12.2, 7.8),
];

/// Paper Table 1, 1.0e-4 block (levels 10+).
const PAPER_1E4: &[(u32, f64, f64, f64, f64)] = &[
    (10, 51.64, 38.66, 5.7, 1.3),
    (11, 124.17, 46.30, 7.6, 2.7),
    (12, 301.17, 65.02, 9.9, 4.6),
    (13, 724.92, 129.28, 11.4, 5.6),
    (14, 1751.02, 227.18, 13.1, 7.7),
    (15, 4118.08, 519.15, 13.3, 7.9),
];

#[test]
fn sequential_times_track_paper_within_quarter() {
    let model = CostModel::paper_calibrated();
    for &(level, st, _, _, _) in PAPER_1E3 {
        let ours = model.sequential_seconds(2, level, REF_TOL);
        let ratio = ours / st;
        assert!(
            (0.75..1.35).contains(&ratio),
            "st({level}, 1e-3): ours {ours:.2} vs paper {st} (ratio {ratio:.2})"
        );
    }
    for &(level, st, _, _, _) in PAPER_1E4 {
        let ours = model.sequential_seconds(2, level, 1.0e-4);
        let ratio = ours / st;
        assert!(
            (0.75..1.35).contains(&ratio),
            "st({level}, 1e-4): ours {ours:.2} vs paper {st} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn concurrent_shape_matches_paper() {
    let points = run_distributed_experiment(
        [0, 5, 8, 9, 10, 11, 12, 13, 14, 15],
        &[1.0e-3, 1.0e-4],
        3,
        20040406,
        true,
    );
    let get = |tol: f64, lvl: u32| {
        points
            .iter()
            .find(|p| p.tol == tol && p.level == lvl)
            .unwrap()
    };

    // Criterion 1: no speedup below level ~9-10, speedup after.
    for lvl in [0, 5, 8] {
        assert!(get(1e-3, lvl).su < 1.0, "su(1e-3, {lvl})");
    }
    assert!(get(1e-3, 10).su > 0.85, "crossover: {}", get(1e-3, 10).su);
    assert!(get(1e-3, 11).su > 1.3);

    // Criterion 2: saturation near the paper's 7.8/7.9 (documented band:
    // within ~40%).
    let su15_a = get(1e-3, 15).su;
    let su15_b = get(1e-4, 15).su;
    assert!((5.5..11.0).contains(&su15_a), "su(1e-3, 15) = {su15_a}");
    assert!((5.5..12.0).contains(&su15_b), "su(1e-4, 15) = {su15_b}");

    // Criterion 3: machine usage grows monotonically with level and lands
    // near the paper's 12-13 at level 15.
    let levels = [0u32, 5, 8, 10, 12, 15];
    for w in levels.windows(2) {
        assert!(
            get(1e-3, w[1]).m >= get(1e-3, w[0]).m - 0.2,
            "m not growing at {}",
            w[1]
        );
    }
    assert!(
        (8.0..15.0).contains(&get(1e-3, 15).m),
        "m = {}",
        get(1e-3, 15).m
    );
    assert!((8.0..15.0).contains(&get(1e-4, 15).m));

    // Criterion 4: for high levels speedup stays clearly below the machine
    // count (the paper: about half).
    for lvl in [12, 13, 14, 15] {
        let p = get(1e-3, lvl);
        assert!(
            p.su < p.m,
            "speedup {} should lag machines {} at level {lvl}",
            p.su,
            p.m
        );
    }

    // Criterion 5: sequential growth ≈ 2.4×/level; 1e-4 ≈ 2× 1e-3.
    let growth = get(1e-3, 15).st / get(1e-3, 14).st;
    assert!((2.2..2.65).contains(&growth), "growth {growth}");
    let tol_ratio = get(1e-4, 15).st / get(1e-3, 15).st;
    assert!((1.8..2.3).contains(&tol_ratio), "tol ratio {tol_ratio}");
}

#[test]
fn figure1_quantities_match_paper_scale() {
    // Paper Figure 1: a level-15 run of 634 s, peak 32 machines, weighted
    // average 11.
    let report = figure1_run(15, 1.0e-4, 1);
    assert!(
        (250.0..800.0).contains(&report.elapsed),
        "elapsed {}",
        report.elapsed
    );
    assert!(
        (20..=32).contains(&(report.peak_machines as usize)),
        "peak {}",
        report.peak_machines
    );
    assert!(
        (8.0..15.0).contains(&report.weighted_avg_machines),
        "avg {}",
        report.weighted_avg_machines
    );
}

#[test]
fn io_worker_ablation_beats_paper_design_at_high_level() {
    // The untried §4.1 alternative: workers fetch their own input, so the
    // master's serial feeding phase shrinks and the speedup grows.
    let through = run_distributed_experiment([14], &[1.0e-3], 3, 9, true);
    let io = run_distributed_experiment([14], &[1.0e-3], 3, 9, false);
    assert!(
        io[0].su > through[0].su,
        "io-workers {} should beat through-master {}",
        io[0].su,
        through[0].su
    );
}

#[test]
fn speedup_bounded_by_machines_and_workers() {
    let points = run_distributed_experiment([6, 10, 14], &[1.0e-3], 2, 3, true);
    for p in &points {
        assert!(p.su <= p.m + 0.5, "su {} > m {}", p.su, p.m);
        assert!(p.peak as u32 <= 2 * p.level + 2);
        assert!(p.peak <= 32);
    }
}
