//! # bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's §7 (see DESIGN.md for
//! the experiment index):
//!
//! * `cargo run -p bench --release --bin table1` — Table 1 (st, ct, m, su
//!   for levels 0–15 × tolerances 1.0e-3 / 1.0e-4, five runs averaged).
//!   `--io-workers` runs the §4.1 I/O-worker ablation instead.
//! * `cargo run -p bench --release --bin figure1` — Figure 1 (machines in
//!   use vs elapsed seconds for a level-15 run).
//! * `cargo run -p bench --release --bin figures -- <2|3|4|5>` — Figures
//!   2–5 (the Table 1 series, formatted per figure).
//! * `cargo run -p bench --release --bin chronology` — the §6 chronological
//!   `Welcome`/`Bye` output of a small distributed run.
//!
//! Criterion micro-benchmarks (`cargo bench -p bench`) cover the solver
//! kernels, the coordination-layer overheads (the paper's third overhead
//! category), KK- vs BK-stream dismantling, and the live shared-memory
//! parallel run against the sequential baseline.

use renovation::ExperimentPoint;

pub mod cli;
pub mod live;

/// Render experiment points as the paper's Table 1 (two blocks: one per
/// tolerance, levels ascending).
pub fn format_table1(points: &[ExperimentPoint]) -> String {
    let mut out = String::new();
    out.push_str("| run    | level |      st |      ct |    m |   su |\n");
    out.push_str("|--------|-------|---------|---------|------|------|\n");
    let mut tols: Vec<f64> = points.iter().map(|p| p.tol).collect();
    tols.sort_by(|a, b| b.total_cmp(a));
    tols.dedup();
    for tol in tols {
        let mut rows: Vec<&ExperimentPoint> = points.iter().filter(|p| p.tol == tol).collect();
        rows.sort_by_key(|p| p.level);
        for p in rows {
            out.push_str(&format!(
                "| {:<6} | {:>5} | {:>7.2} | {:>7.2} | {:>4.1} | {:>4.1} |\n",
                format!("{tol:.0e}"),
                p.level,
                p.st,
                p.ct,
                p.m,
                p.su
            ));
        }
    }
    out
}

/// Simple ASCII plot: one labelled series of (x, y) points, log-y optional.
pub fn ascii_plot(title: &str, series: &[(&str, Vec<(f64, f64)>)], log_y: bool) -> String {
    let width = 64usize;
    let height = 20usize;
    let mut out = format!("{title}\n");
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, pts)| pts.clone()).collect();
    if all.is_empty() {
        return out;
    }
    let tx = |v: f64| v;
    let ty = |v: f64| if log_y { v.max(1e-12).log10() } else { v };
    let (xmin, xmax) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| {
        (lo.min(tx(x)), hi.max(tx(x)))
    });
    let (ymin, ymax) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| {
        (lo.min(ty(y)), hi.max(ty(y)))
    });
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);
    let mut canvas = vec![vec![b' '; width]; height];
    let marks = [b'*', b'o', b'+', b'x'];
    for (si, (_, pts)) in series.iter().enumerate() {
        for &(x, y) in pts {
            let cx = (((tx(x) - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let cy = (((ty(y) - ymin) / yspan) * (height - 1) as f64).round() as usize;
            canvas[height - 1 - cy][cx] = marks[si % marks.len()];
        }
    }
    for (ri, row) in canvas.iter().enumerate() {
        let yv = ymax - yspan * ri as f64 / (height - 1) as f64;
        let label = if log_y { 10f64.powf(yv) } else { yv };
        out.push_str(&format!(
            "{label:>10.2} |{}\n",
            String::from_utf8_lossy(row)
        ));
    }
    out.push_str(&format!(
        "{:>10} +{}\n{:>10}  {:<10.1}{:>w$.1}\n",
        "",
        "-".repeat(width),
        "",
        xmin,
        xmax,
        w = width - 10
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {} {}\n",
            marks[si % marks.len()] as char,
            name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_contains_rows() {
        let pts = vec![ExperimentPoint {
            level: 3,
            tol: 1e-3,
            st: 0.25,
            ct: 11.45,
            m: 2.9,
            su: 0.02,
            peak: 4,
            forks: 3,
        }];
        let s = format_table1(&pts);
        assert!(s.contains("| 1e-3"));
        assert!(s.contains("11.45"));
    }

    #[test]
    fn ascii_plot_renders_points() {
        let s = ascii_plot("test", &[("a", vec![(0.0, 1.0), (1.0, 10.0)])], true);
        assert!(s.contains('*'));
        assert!(s.starts_with("test\n"));
    }

    #[test]
    fn ascii_plot_empty_series() {
        let s = ascii_plot("empty", &[("a", vec![])], false);
        assert_eq!(s, "empty\n");
    }
}
