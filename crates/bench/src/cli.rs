//! Shared flag parsing for the bench binaries.
//!
//! `table1`, `scaling`, `ablations` (and now `engine_bench`) grew the same
//! hand-rolled `args.iter().position(...)` parsing three times over, each
//! with `.expect(...)` panics for malformed values. This module is that
//! logic extracted once: position-independent `--flag [value]` pairs,
//! typed accessors with defaults, and *usage + exit code 2* instead of a
//! panic backtrace when a value is missing or malformed.

use std::path::PathBuf;
use std::str::FromStr;

use protocol::PolicyRef;

use crate::live::Backend;

/// Parsed command line of one bench binary.
pub struct Cli {
    bin: &'static str,
    usage: &'static str,
    args: Vec<String>,
}

impl Cli {
    /// Capture this process's arguments. `usage` is the flag summary
    /// printed (with `bin`) when parsing fails.
    pub fn parse(bin: &'static str, usage: &'static str) -> Cli {
        Cli {
            bin,
            usage,
            args: std::env::args().skip(1).collect(),
        }
    }

    /// A `Cli` over explicit arguments (for tests).
    pub fn from_args(bin: &'static str, usage: &'static str, args: Vec<String>) -> Cli {
        Cli { bin, usage, args }
    }

    /// Print the offending flag and the usage line, then exit(2) — the
    /// conventional "bad command line" status, distinct from a run that
    /// started and failed.
    pub fn usage_exit(&self, msg: &str) -> ! {
        eprintln!("{}: {msg}", self.bin);
        eprintln!("usage: {} {}", self.bin, self.usage);
        std::process::exit(2);
    }

    /// Is the bare flag present?
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value following `name`, if the flag is present. A flag present
    /// without a value (or followed by another flag) is a usage error.
    pub fn value(&self, name: &str) -> Option<&str> {
        let i = self.args.iter().position(|a| a == name)?;
        match self.args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Some(v),
            _ => self.usage_exit(&format!("{name} needs a value")),
        }
    }

    /// Typed value with a default; a malformed value is a usage error.
    pub fn parsed<T: FromStr>(&self, name: &str, default: T) -> T {
        self.parsed_opt(name).unwrap_or(default)
    }

    /// Typed optional value; a malformed value is a usage error.
    pub fn parsed_opt<T: FromStr>(&self, name: &str) -> Option<T> {
        let v = self.value(name)?;
        match v.parse() {
            Ok(t) => Some(t),
            Err(_) => self.usage_exit(&format!("{name}: cannot parse {v:?}")),
        }
    }

    /// `--level-range L..=M` (inclusive) or, failing that, `--level N` as
    /// a single-level range. A decreasing range is a usage error.
    pub fn level_range(&self, default: u32) -> std::ops::RangeInclusive<u32> {
        if let Some(spec) = self.value("--level-range") {
            let bounds = spec
                .split_once("..=")
                .and_then(|(a, b)| Some((a.trim().parse().ok()?, b.trim().parse().ok()?)));
            match bounds {
                Some((lo, hi)) if lo <= hi => lo..=hi,
                _ => self.usage_exit(&format!(
                    "--level-range: expected L..=M with L <= M, got {spec:?}"
                )),
            }
        } else {
            let l = self.parsed("--level", default);
            l..=l
        }
    }

    /// `--tier exact|fast|both` — which solver tiers a bench exercises.
    pub fn tiers(&self) -> Vec<solver::Tier> {
        match self.value("--tier") {
            None | Some("both") => vec![solver::Tier::Exact, solver::Tier::Fast],
            Some(v) => match solver::Tier::parse(v) {
                Some(t) => vec![t],
                None => {
                    self.usage_exit(&format!("--tier: expected exact, fast, or both, got {v:?}"))
                }
            },
        }
    }

    /// `--policy paper-faithful|bounded-reuse:N|cost-aware`, defaulting to
    /// the paper's dispatch order.
    pub fn policy(&self) -> PolicyRef {
        match self.value("--policy") {
            None => std::sync::Arc::new(protocol::PaperFaithful),
            Some(spec) => match protocol::parse_policy(spec) {
                Some(p) => p,
                None => self.usage_exit(&format!(
                    "--policy: unknown policy {spec:?} \
                     (expected paper-faithful, bounded-reuse:N, or cost-aware)"
                )),
            },
        }
    }

    /// `--backend sim|threads|procs|all` (the caller decides whether `all`
    /// is meaningful), defaulting to `default`.
    pub fn backend(&self, default: Backend) -> Backend {
        match self.value("--backend") {
            None => default,
            Some(v) => match Backend::parse(v) {
                Some(b) => b,
                None => self.usage_exit(&format!(
                    "--backend: unknown backend {v:?} (expected sim, threads, or procs)"
                )),
            },
        }
    }

    /// `--checkpoint-dir DIR`.
    pub fn checkpoint_dir(&self) -> Option<PathBuf> {
        self.value("--checkpoint-dir").map(PathBuf::from)
    }

    /// `--tenants N` — how many tenant identities a multi-tenant bench
    /// simulates (clamped to at least 1).
    pub fn tenants(&self, default: usize) -> usize {
        self.parsed("--tenants", default).max(1)
    }

    /// `--inflight N` — pipelined jobs each tenant keeps open (clamped to
    /// at least 1).
    pub fn inflight(&self, default: usize) -> usize {
        self.parsed("--inflight", default).max(1)
    }

    /// `--shards N` plus `--steal on|off` — the sharded-fleet dispatch
    /// spec. Defaults to one shard (the flat master) with stealing on.
    pub fn shards(&self) -> protocol::ShardSpec {
        let n: usize = self.parsed("--shards", 1);
        let spec = protocol::ShardSpec::new(n.max(1));
        match self.value("--steal") {
            None => spec,
            Some("on") => spec.with_steal(true),
            Some("off") => spec.with_steal(false),
            Some(v) => self.usage_exit(&format!("--steal: expected on or off, got {v:?}")),
        }
    }

    /// `--churn join@N,leave@M,...` — worker membership churn keyed on
    /// 1-based dispatch ordinals. Defaults to no churn.
    pub fn churn(&self) -> protocol::ChurnPlan {
        match self.value("--churn") {
            None => protocol::ChurnPlan::default(),
            Some(spec) => match protocol::ChurnPlan::parse(spec) {
                Ok(plan) => plan,
                Err(e) => self.usage_exit(&format!("--churn: malformed plan {spec:?}: {e}")),
            },
        }
    }

    /// The raw `--faults` specification, if present (a bare seed or a full
    /// textual plan — resolve per run with [`Cli::fault_plan`]).
    pub fn fault_spec(&self) -> Option<String> {
        self.value("--faults").map(str::to_string)
    }

    /// Resolve a `--faults` specification: a bare u64 is a seed for a
    /// generated schedule over `instances` workers and `jobs` jobs; any
    /// other text must parse as a full [`chaos::FaultPlan`].
    pub fn fault_plan(&self, spec: &str, instances: u64, jobs: u64) -> chaos::FaultPlan {
        match spec.parse::<u64>() {
            Ok(seed) => chaos::FaultPlan::from_seed(seed, instances, jobs),
            Err(_) => match chaos::FaultPlan::parse(spec) {
                Ok(plan) => plan,
                Err(e) => self.usage_exit(&format!("--faults: malformed plan {spec:?}: {e}")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::from_args(
            "test",
            "[--x N]",
            args.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn flags_values_and_defaults() {
        let c = cli(&["--resume", "--level", "7", "--tol", "1e-4"]);
        assert!(c.flag("--resume"));
        assert!(!c.flag("--io-workers"));
        assert_eq!(c.parsed("--level", 14u32), 7);
        assert_eq!(c.parsed("--runs", 5usize), 5);
        assert_eq!(c.parsed_opt::<f64>("--tol"), Some(1e-4));
        assert_eq!(c.value("--missing"), None);
    }

    #[test]
    fn tenants_and_inflight_clamp_to_one() {
        let c = cli(&["--tenants", "16", "--inflight", "0"]);
        assert_eq!(c.tenants(3), 16);
        assert_eq!(c.inflight(8), 1);
        assert_eq!(cli(&[]).tenants(3), 3);
        assert_eq!(cli(&[]).inflight(8), 8);
    }

    #[test]
    fn level_range_parses_and_falls_back_to_single_level() {
        assert_eq!(cli(&["--level-range", "6..=8"]).level_range(3), 6..=8);
        assert_eq!(cli(&["--level", "5"]).level_range(3), 5..=5);
        assert_eq!(cli(&[]).level_range(3), 3..=3);
    }

    #[test]
    fn tiers_parse() {
        assert_eq!(
            cli(&[]).tiers(),
            vec![solver::Tier::Exact, solver::Tier::Fast]
        );
        assert_eq!(cli(&["--tier", "exact"]).tiers(), vec![solver::Tier::Exact]);
        assert_eq!(cli(&["--tier", "fast"]).tiers(), vec![solver::Tier::Fast]);
    }

    #[test]
    fn policy_and_backend_parse() {
        let c = cli(&["--policy", "bounded-reuse:3", "--backend", "threads"]);
        assert_eq!(c.policy().name(), "bounded-reuse");
        assert_eq!(c.backend(Backend::Sim), Backend::Threads);
        assert_eq!(cli(&[]).backend(Backend::Sim), Backend::Sim);
        assert_eq!(cli(&[]).policy().name(), "paper-faithful");
    }

    #[test]
    fn shards_and_churn_parse() {
        let c = cli(&[
            "--shards",
            "4",
            "--steal",
            "off",
            "--churn",
            "join@3,leave@6",
        ]);
        let spec = c.shards();
        assert_eq!(spec.shards, 4);
        assert!(!spec.steal);
        let churn = c.churn();
        assert_eq!(churn.joins, vec![3]);
        assert_eq!(churn.leaves, vec![6]);
        let d = cli(&[]);
        assert!(d.shards().is_flat());
        assert!(d.shards().steal);
        assert!(d.churn().is_empty());
    }

    #[test]
    fn fault_plan_resolves_seed_or_plan() {
        let c = cli(&[]);
        let seeded = c.fault_plan("42", 2, 9);
        assert_eq!(seeded.seed, 42);
        let plan = c.fault_plan("seed:7,crash:0@2", 2, 9);
        assert_eq!(plan.faults.len(), 1);
        assert_eq!(plan.seed, 7);
    }
}
