//! Throughput of the persistent-fleet [`renovation::Engine`]: one fleet,
//! many jobs, and the question the one-shot entry points could never
//! answer — what does a solve cost once the pool/process/connection setup
//! is amortized away?
//!
//! ```text
//! cargo run -p bench --release --bin engine_bench \
//!     [-- --backend threads|procs|sim|all] [--jobs N] [--level N] \
//!     [--instances N] [--policy paper-faithful|bounded-reuse:N|cost-aware] \
//!     [--json PATH]
//! ```
//!
//! For each backend the bench constructs one `Engine`, submits `--jobs`
//! identical solves, and reports jobs/sec plus per-job latency (p50, p95,
//! and the cold job 1 vs warm job 2+ split). Job 1's latency deliberately
//! *includes* engine construction — fleet bring-up is exactly the cost the
//! perpetual pool exists to amortize. Every job is checked bit-for-bit
//! against the sequential oracle; a drift or a warm job that fails to beat
//! the cold one exits nonzero, so CI can run this as a smoke test.
//!
//! Threads and procs report wall-clock milliseconds; sim reports the
//! virtual-time milliseconds of the DES, where warm jobs skip the
//! application startup and the first-fork surcharge.

use std::time::Instant;

use bench::cli::Cli;
use bench::live::field_checksum;
use renovation::{AppConfig, Engine, EngineOpts, ProcsConfig, RunMode};
use solver::sequential::SequentialApp;

const USAGE: &str = "[--backend threads|procs|sim|all] [--jobs N] [--level N] \
     [--instances N] [--reps N] [--shards N] [--steal on|off] \
     [--churn join@N,leave@M] \
     [--policy paper-faithful|bounded-reuse:N|cost-aware] [--json PATH]";

/// One backend's aggregate numbers.
struct BackendStats {
    backend: &'static str,
    virtual_time: bool,
    jobs: usize,
    job1_ms: f64,
    jobs2plus_mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    jobs_per_sec: f64,
    warm_speedup: f64,
    bit_identical: bool,
    checksum: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn summarize(
    backend: &'static str,
    virtual_time: bool,
    latencies_ms: &[f64],
    bit_identical: bool,
    checksum: u64,
) -> BackendStats {
    let job1_ms = latencies_ms[0];
    let warm = &latencies_ms[1..];
    let jobs2plus_mean_ms = warm.iter().sum::<f64>() / warm.len() as f64;
    let mut sorted = latencies_ms.to_vec();
    sorted.sort_by(f64::total_cmp);
    let total_s = latencies_ms.iter().sum::<f64>() / 1e3;
    BackendStats {
        backend,
        virtual_time,
        jobs: latencies_ms.len(),
        job1_ms,
        jobs2plus_mean_ms,
        p50_ms: percentile(&sorted, 0.50),
        p95_ms: percentile(&sorted, 0.95),
        jobs_per_sec: latencies_ms.len() as f64 / total_s,
        warm_speedup: job1_ms / jobs2plus_mean_ms,
        bit_identical,
        checksum,
    }
}

/// Drive `jobs` identical solves through one engine, `reps` lifecycles
/// over; the closure builds each engine so its construction lands inside
/// job 1's timer. Each job position reports its *minimum* across
/// lifecycles: scheduler noise only ever adds latency, so the floor
/// isolates the systematic cold-vs-warm delta (engine construction +
/// first-job instance forks) that a mean would drown at
/// millisecond job sizes.
fn bench_backend(
    backend: &'static str,
    app: SequentialApp,
    jobs: usize,
    reps: usize,
    build: &dyn Fn() -> Result<Engine, manifold::prelude::MfError>,
) -> BackendStats {
    let oracle = app.run().expect("sequential oracle");
    let checksum = field_checksum(&oracle.combined);
    let virtual_time = backend == "sim";
    // The DES is deterministic: one lifecycle is the whole population.
    let reps = if virtual_time { 1 } else { reps };
    let mut latencies_ms = vec![f64::INFINITY; jobs];
    let mut bit_identical = true;

    for _ in 0..reps {
        let t0 = Instant::now();
        let mut engine = build().expect("engine construction");
        for job in 1..=jobs {
            let t_job = Instant::now();
            let report = engine
                .submit(AppConfig::new(app))
                .expect("engine admission")
                .wait()
                .expect("engine job");
            let wall_ms = if job == 1 {
                // Cold job: fleet bring-up + first solve.
                t0.elapsed().as_secs_f64() * 1e3
            } else {
                t_job.elapsed().as_secs_f64() * 1e3
            };
            let sample = if virtual_time {
                report.latency_s * 1e3
            } else {
                wall_ms
            };
            latencies_ms[job - 1] = latencies_ms[job - 1].min(sample);
            if report.result.combined != oracle.combined
                || report.result.l2_error != oracle.l2_error
            {
                eprintln!("engine_bench: {backend} job {job} drifted from the sequential oracle");
                bit_identical = false;
            }
        }
        engine.shutdown();
    }
    summarize(
        backend,
        virtual_time,
        &latencies_ms,
        bit_identical,
        checksum,
    )
}

fn render_json(level: u32, reps: usize, policy: &str, stats: &[BackendStats]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"engine_bench\",\n");
    out.push_str(&format!("  \"level\": {level},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"policy\": \"{policy}\",\n"));
    out.push_str("  \"backends\": {\n");
    for (i, s) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"jobs\": {},\n      \"virtual_time\": {},\n      \
             \"jobs_per_sec\": {:.3},\n      \"job1_ms\": {:.3},\n      \
             \"jobs2plus_mean_ms\": {:.3},\n      \"p50_ms\": {:.3},\n      \
             \"p95_ms\": {:.3},\n      \"warm_speedup\": {:.2},\n      \
             \"bit_identical\": {},\n      \"checksum\": \"{:016x}\"\n    }}{}\n",
            s.backend,
            s.jobs,
            s.virtual_time,
            s.jobs_per_sec,
            s.job1_ms,
            s.jobs2plus_mean_ms,
            s.p50_ms,
            s.p95_ms,
            s.warm_speedup,
            s.bit_identical,
            s.checksum,
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let cli = Cli::parse("engine_bench", USAGE);
    let jobs = cli.parsed("--jobs", 8usize).max(2);
    let level = cli.parsed("--level", 4u32);
    let instances = cli.parsed("--instances", 2usize);
    let reps = cli.parsed("--reps", 5usize).max(1);
    let policy = cli.policy();
    let backends: Vec<&'static str> = match cli.value("--backend").unwrap_or("all") {
        "threads" => vec!["threads"],
        "procs" => vec!["procs"],
        "sim" => vec!["sim"],
        "all" => vec!["threads", "procs", "sim"],
        other => cli.usage_exit(&format!(
            "--backend: unknown backend {other:?} (expected threads, procs, sim, or all)"
        )),
    };

    let app = SequentialApp::new(2, level, 1e-3);
    let shards = cli.shards();
    let churn = cli.churn();
    let opts = || EngineOpts {
        capacity_level: level,
        shards,
        churn: churn.clone(),
        ..EngineOpts::default()
    };

    println!(
        "engine_bench — {jobs} jobs at level {level}, dispatch: {}, \
         per-position floor over {reps} fleet lifecycles (job 1 includes fleet bring-up)",
        policy.name()
    );
    println!();
    println!("| backend |  jobs/s | job1 ms | warm mean ms |  p50 ms |  p95 ms | warm speedup | identical |");
    println!("|---------|---------|---------|--------------|---------|---------|--------------|-----------|");

    let mut stats = Vec::new();
    for backend in backends {
        let s = match backend {
            // The distributed deployment: workers live in their own task
            // instances, so job 1 pays the forks and warm jobs reuse the
            // parked `{perpetual}` instances (Parallel bundles everything
            // into the startup instance — nothing to amortize).
            "threads" => bench_backend("threads", app, jobs, reps, &|| {
                let mode = RunMode::Distributed {
                    hosts: RunMode::paper_hosts(),
                };
                Engine::threads(mode, policy.clone(), opts())
            }),
            "procs" => bench_backend("procs", app, jobs, reps, &|| {
                Engine::procs(ProcsConfig::new(instances), policy.clone(), opts())
            }),
            "sim" => bench_backend("sim", app, jobs, reps, &|| {
                Engine::sim(None, policy.clone(), opts())
            }),
            _ => unreachable!(),
        };
        println!(
            "| {:>7} | {:>7.2} | {:>7.2} | {:>12.2} | {:>7.2} | {:>7.2} | {:>11.2}x | {:>9} |",
            s.backend,
            s.jobs_per_sec,
            s.job1_ms,
            s.jobs2plus_mean_ms,
            s.p50_ms,
            s.p95_ms,
            s.warm_speedup,
            if s.bit_identical { "yes" } else { "NO" }
        );
        stats.push(s);
    }
    println!();

    let mut failed = false;
    for s in &stats {
        if !s.bit_identical {
            eprintln!("engine_bench: {} results are not bit-identical", s.backend);
            failed = true;
        }
        if s.jobs2plus_mean_ms >= s.job1_ms {
            eprintln!(
                "engine_bench: {} warm mean {:.2} ms not below cold job 1 {:.2} ms — \
                 fleet setup was not amortized",
                s.backend, s.jobs2plus_mean_ms, s.job1_ms
            );
            failed = true;
        }
    }

    let json = render_json(level, reps, policy.name(), &stats);
    match cli.value("--json") {
        Some(path) => {
            std::fs::write(path, &json).expect("write --json file");
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
    if failed {
        std::process::exit(1);
    }
}
