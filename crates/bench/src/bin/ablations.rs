//! Ablation studies of the design choices DESIGN.md calls out — each one
//! varies a single ingredient of the distributed run and reports its effect
//! on the level-14 concurrent time and speedup:
//!
//! 1. **Data path** — all data through the master (the paper's design) vs
//!    the §4.1 I/O-worker alternative the authors "have not tried out".
//! 2. **Pool structure** — one pool for all grids vs one pool per diagonal
//!    (the "more demanding master" of §4.2).
//! 3. **Network** — the paper's 100 Mbps switched Ethernet vs 10 Mbps and
//!    1 Gbps.
//! 4. **Task-fork cost** — 2003-era rsh forking vs an (anachronistic)
//!    instant fork.
//! 5. **Cluster heterogeneity** — the paper's 1200/1400/1466 MHz mix vs a
//!    homogeneous 1200 MHz cluster.
//! 6. **Dispatch policy** — the paper's feed-all-then-collect order vs the
//!    bounded-pool and cost-aware (LPT) scheduler policies.
//!
//! ```text
//! cargo run -p bench --release --bin ablations \
//!     [-- --level N --tol T] [--policy paper-faithful|bounded-reuse:N|cost-aware]
//! ```

use bench::cli::Cli;
use cluster::hosts::{paper_cluster, ClusterSpec, Host};
use cluster::sim::DistributedSim;
use cluster::workload::Workload;
use protocol::DispatchPolicy;
use renovation::cost::CostModel;

fn measure_with_policy(
    sim: &DistributedSim,
    wl: &Workload,
    seed: u64,
    policy: &dyn DispatchPolicy,
) -> (f64, f64, f64) {
    let (st, ct, _m, _) = sim.run_averaged_with_policy(wl, 5, seed, policy);
    (st, ct, st / ct)
}

fn report(name: &str, baseline: (f64, f64, f64), variant: (f64, f64, f64)) {
    println!(
        "{name:<44} ct {:>8.2} s   su {:>5.2}   (baseline ct {:.2}, su {:.2}, Δct {:+.1}%)",
        variant.1,
        variant.2,
        baseline.1,
        baseline.2,
        100.0 * (variant.1 - baseline.1) / baseline.1
    );
}

fn main() {
    let cli = Cli::parse(
        "ablations",
        "[--level N] [--tol T] [--policy paper-faithful|bounded-reuse:N|cost-aware]",
    );
    let level = cli.parsed("--level", 14u32);
    let tol = cli.parsed("--tol", 1.0e-3f64);
    let policy = cli.policy();
    let policy = policy.as_ref();

    let model = CostModel::paper_calibrated();
    let sim = DistributedSim::new(paper_cluster(model.ref_flops_per_sec));
    let wl = model.workload(2, level, tol, true);
    let measure =
        |sim: &DistributedSim, wl: &Workload, seed: u64| measure_with_policy(sim, wl, seed, policy);
    let baseline = measure(&sim, &wl, 11);

    println!(
        "ablations at level {level}, tol {tol:.0e} (5 runs averaged, dispatch: {})",
        policy.name()
    );
    println!();
    report("baseline (paper design)", baseline, baseline);

    // 1. I/O workers.
    let wl_io = model.workload(2, level, tol, false);
    report(
        "I/O workers (workers fetch own input, §4.1)",
        baseline,
        measure(&sim, &wl_io, 11),
    );

    // 2. Per-diagonal pools.
    let wl_pools = model
        .workload_per_diagonal(2, level, tol, true)
        .expect("cost-model workloads carry well-formed subsolve labels");
    report(
        "two pools, one per diagonal (§4.2 note)",
        baseline,
        measure(&sim, &wl_pools, 11),
    );

    // 3. Network sweeps.
    for (label, bw) in [("10 Mbps Ethernet", 1.1e6), ("1 Gbps Ethernet", 110.0e6)] {
        let mut slow = sim.clone();
        slow.network.bandwidth = bw;
        report(
            &format!("network: {label}"),
            baseline,
            measure(&slow, &wl, 11),
        );
    }

    // 4. Instant task forking.
    let mut instant = sim.clone();
    instant.costs.task_fork = 0.0;
    instant.costs.first_fork_extra = 0.0;
    instant.costs.startup = 0.0;
    report(
        "instant task forks (no rsh/NFS cost)",
        baseline,
        measure(&instant, &wl, 11),
    );

    // 5. Homogeneous cluster.
    let homogeneous = ClusterSpec::new(
        (0..32)
            .map(|i| Host::new(format!("uniform{i:02}.sen.cwi.nl"), 1200.0))
            .collect(),
        model.ref_flops_per_sec,
    );
    let homo_sim = DistributedSim::new(homogeneous);
    report(
        "homogeneous 32 x 1200 MHz cluster",
        baseline,
        measure(&homo_sim, &wl, 11),
    );

    // 6. Dispatch policies against the paper's feed order.
    report(
        "dispatch: bounded-reuse pool of 4",
        baseline,
        measure_with_policy(&sim, &wl, 11, &protocol::BoundedReuse::new(4)),
    );
    report(
        "dispatch: cost-aware (LPT) order",
        baseline,
        measure_with_policy(&sim, &wl, 11, &protocol::CostAware),
    );

    println!();
    println!(
        "(the paper's three overhead categories — multi-user noise, concurrency, \
         coordination layer — correspond to the noise model, the data-path/pool \
         ablations, and the fork/startup ablation respectively)"
    );
}
