//! Regenerate Table 1: average sequential time, average concurrent time,
//! weighted average machines, and speedup, for tolerances 1.0e-3 / 1.0e-4
//! and levels 0–15, five seeded runs averaged — on the simulated
//! 32-machine cluster.
//!
//! Usage:
//! ```text
//! cargo run -p bench --release --bin table1 \
//!     [-- --io-workers] [--runs N] [--policy paper-faithful|bounded-reuse:N|cost-aware] \
//!     [--backend sim|threads|procs] [--max-level N] [--instances N] \
//!     [--shards N] [--steal on|off] [--churn join@N,leave@M] \
//!     [--faults <seed|plan>] [--checkpoint-dir DIR] [--resume]
//! ```
//!
//! `--backend sim` (the default) regenerates the paper's virtual-time
//! table. `--backend threads` / `--backend procs` *actually execute* the
//! renovated application — as threads of this program, or as separate
//! worker OS processes over the transport — and print per-level live
//! observables. Apart from the timing-dependent columns (peak, wall s),
//! the two live backends must print identical rows: same jobs, same L2
//! error, same solution checksum.

use bench::cli::Cli;
use bench::live::{run_live_with, Backend, LiveOpts};
use renovation::run_distributed_experiment_with_policy;

const USAGE: &str = "[--io-workers] [--runs N] \
     [--policy paper-faithful|bounded-reuse:N|cost-aware] \
     [--backend sim|threads|procs] [--max-level N] [--instances N] \
     [--shards N] [--steal on|off] [--churn join@N,leave@M] \
     [--faults <seed|plan>] [--checkpoint-dir DIR] [--resume]";

fn main() {
    let cli = Cli::parse("table1", USAGE);
    let io_workers = cli.flag("--io-workers");
    let runs = cli.parsed("--runs", 5usize);
    let policy = cli.policy();
    let backend = cli.backend(Backend::Sim);

    if backend != Backend::Sim {
        let max_level = cli.parsed("--max-level", 5u32);
        let instances = cli.parsed("--instances", 2usize);
        // `--faults` is either a bare u64 — a seed for a generated
        // schedule, scaled to each level's job count — or a full textual
        // chaos::FaultPlan applied verbatim.
        let fault_spec = cli.fault_spec();
        let checkpoint_dir = cli.checkpoint_dir();
        let resume = cli.flag("--resume");
        println!(
            "Table 1, live {backend:?} backend — levels 0–{max_level}, tol 1.0e-3, \
             dispatch: {}{}",
            policy.name(),
            if backend == Backend::Procs {
                format!(", {instances} worker processes")
            } else {
                String::new()
            }
        );
        println!();
        println!(
            "| level | jobs |        l2 error        |     checksum     | peak | lost |  wall s |"
        );
        println!(
            "|-------|------|------------------------|------------------|------|------|---------|"
        );
        for level in 0..=max_level {
            let app = solver::sequential::SequentialApp::new(2, level, 1.0e-3);
            let faults = fault_spec
                .as_deref()
                .map(|spec| cli.fault_plan(spec, instances as u64, (2 * level + 1) as u64));
            let opts = LiveOpts {
                faults,
                checkpoint_dir: checkpoint_dir.clone(),
                resume,
                retry_budget: fault_spec.as_ref().map(|_| 16),
                shards: cli.shards(),
                churn: cli.churn(),
            };
            let r = run_live_with(backend, &app, policy.clone(), instances, &opts)
                .expect("live run failed (fault schedule exceeded the retry budget?)");
            println!(
                "| {level:>5} | {:>4} | {:>22.16e} | {:016x} | {:>4} | {:>4} | {:>7.3} |",
                r.jobs, r.l2_error, r.checksum, r.peak, r.losses, r.wall_s
            );
        }
        println!();
        println!(
            "jobs, l2 error and checksum are backend-invariant: rerun with the \
             other --backend and diff — with the same --faults schedule if \
             one was given, since injected losses must not change a single \
             bit. peak, lost and wall s depend on timing, not on the \
             backend's numerics."
        );
        return;
    }

    let variant = if io_workers {
        "I/O-worker ablation (§4.1 alternative: workers fetch their own input)"
    } else {
        "paper design (all data through the master)"
    };
    println!(
        "Table 1 reproduction — {variant}, {runs} runs averaged, dispatch: {}",
        policy.name()
    );
    println!();
    let points = run_distributed_experiment_with_policy(
        0..=15,
        &[1.0e-3, 1.0e-4],
        runs,
        20040406,
        !io_workers,
        policy.as_ref(),
    );
    print!("{}", bench::format_table1(&points));
    println!();
    println!("paper reference (1.0e-3): su crosses 1.0 at level 10, reaches 7.8 at 15;");
    println!("paper reference (1.0e-4): su reaches 7.9 at 15; m grows to 12.2 / 13.3.");
}
