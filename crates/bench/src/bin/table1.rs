//! Regenerate Table 1: average sequential time, average concurrent time,
//! weighted average machines, and speedup, for tolerances 1.0e-3 / 1.0e-4
//! and levels 0–15, five seeded runs averaged — on the simulated
//! 32-machine cluster.
//!
//! Usage:
//! ```text
//! cargo run -p bench --release --bin table1 \
//!     [-- --io-workers] [--runs N] [--policy paper-faithful|bounded-reuse:N|cost-aware]
//! ```

use renovation::run_distributed_experiment_with_policy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let io_workers = args.iter().any(|a| a == "--io-workers");
    let runs = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5usize);
    let policy = args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
        .map(|spec| protocol::parse_policy(spec).expect("unknown --policy"))
        .unwrap_or_else(|| std::sync::Arc::new(protocol::PaperFaithful));

    let variant = if io_workers {
        "I/O-worker ablation (§4.1 alternative: workers fetch their own input)"
    } else {
        "paper design (all data through the master)"
    };
    println!(
        "Table 1 reproduction — {variant}, {runs} runs averaged, dispatch: {}",
        policy.name()
    );
    println!();
    let points = run_distributed_experiment_with_policy(
        0..=15,
        &[1.0e-3, 1.0e-4],
        runs,
        20040406,
        !io_workers,
        policy.as_ref(),
    );
    print!("{}", bench::format_table1(&points));
    println!();
    println!("paper reference (1.0e-3): su crosses 1.0 at level 10, reaches 7.8 at 15;");
    println!("paper reference (1.0e-4): su reaches 7.9 at 15; m grows to 12.2 / 13.3.");
}
