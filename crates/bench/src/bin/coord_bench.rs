//! `coord_bench` — coordination overhead of the three protocol executors.
//!
//! The paper's ProtocolMW exists in this repository three times: the
//! hand-transliterated native `protocol::protocol_mw` (the oracle), the
//! tree-walking interpreter over the parsed `.m` source, and the compiled
//! state-machine VM stepping `lang::compile` IR. This benchmark measures
//! all three over (a) the squaring protocol, (b) the sparse-grid
//! application protocol, and (c) a pure dispatch loop — a `Count()` manner
//! whose only work is assign / compare / post / state transition — where
//! executor cost is not hidden behind worker thread lifecycles.
//!
//! ```text
//! cargo run -p bench --release --bin coord_bench [-- --jobs 32 --reps 5
//!     --iters 20000 --json [--out BENCH_coord.json]
//!     --assert-overhead 2.0 --assert-zero-alloc]
//! ```
//!
//! `--assert-overhead X` exits non-zero if compiled/native wall-clock on
//! the squaring protocol exceeds X. `--assert-zero-alloc` exits non-zero
//! if the VM's steady-state dispatch loop allocates: two `Count()` runs
//! differing only in iteration count must show *zero* extra allocations
//! (the binary installs a counting global allocator, as `solver_bench`
//! does for the solver's inner loop).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use bench::cli::Cli;
use manifold::builtin::Variable;
use manifold::event::EventPattern;
use manifold::lang::{CoordExec, Mc};
use manifold::prelude::*;
use parking_lot::Mutex;
use protocol::{protocol_mw, run_protocol_mc, MasterHandle, WorkerHandle};
use renovation::codec::{request_from_unit, request_to_unit, result_from_unit, result_to_unit};
use solver::SequentialApp;

// ---------------------------------------------------------------------------
// Counting allocator (same pattern as solver_bench): tallies this thread's
// allocations so "zero allocations per dispatch step" is a measurement.
// ---------------------------------------------------------------------------

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers to the system allocator; the counter is a thread-local
// side effect and `try_with` makes it safe during TLS teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOC_COUNT.with(|c| c.get());
    let out = f();
    let after = ALLOC_COUNT.with(|c| c.get());
    (out, after - before)
}

// ---------------------------------------------------------------------------
// Protocol runs: one master body + one worker body, three coordinators.
// ---------------------------------------------------------------------------

/// Which engine coordinates the run.
#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Native,
    Exec(CoordExec),
}

impl Engine {
    const ALL: [Engine; 3] = [
        Engine::Native,
        Engine::Exec(CoordExec::Interp),
        Engine::Exec(CoordExec::Compiled),
    ];

    fn name(self) -> &'static str {
        match self {
            Engine::Native => "native",
            Engine::Exec(CoordExec::Interp) => "interp",
            Engine::Exec(CoordExec::Compiled) => "compiled",
        }
    }
}

/// Run one protocol job set under `engine` and return wall seconds.
fn run_protocol<M, W>(engine: Engine, mc: &Mc, master_body: M, worker_body: W) -> f64
where
    M: FnOnce(MasterHandle) -> MfResult<()> + Send + 'static,
    W: Fn(WorkerHandle) -> MfResult<()> + Send + Sync + 'static,
{
    let env = Environment::new();
    let t0 = Instant::now();
    match engine {
        Engine::Exec(kind) => {
            run_protocol_mc(&env, mc, kind, master_body, worker_body).expect("protocol run");
        }
        Engine::Native => {
            let worker = Arc::new(worker_body);
            env.run_coordinator("ProtocolMW", |coord| {
                let coord_ref = coord.self_ref();
                let env2 = coord.env().clone();
                let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
                    master_body(MasterHandle::new(ctx, coord_ref, env2))
                });
                coord.watch(&master);
                coord.activate(&master)?;
                protocol_mw(coord, &master, |coord, death| {
                    let w = worker.clone();
                    let death = death.clone();
                    coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
                        w(WorkerHandle::new(ctx, death))
                    })
                })
                .map(|_| ())
            })
            .expect("protocol run");
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    env.shutdown();
    assert!(
        env.failures().is_empty(),
        "{}: worker failed",
        engine.name()
    );
    secs
}

/// Median wall seconds over `reps` squaring-protocol runs of `jobs` jobs.
fn squaring_secs(engine: Engine, mc: &Mc, jobs: usize, reps: usize) -> f64 {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = out.clone();
        let xs: Vec<f64> = (0..jobs).map(|i| i as f64).collect();
        let n = xs.len();
        let secs = run_protocol(
            engine,
            mc,
            move |h: MasterHandle| {
                h.create_pool();
                for x in &xs {
                    let _w = h.request_worker()?;
                    h.send_work(Unit::real(*x))?;
                }
                for _ in 0..n {
                    out2.lock().push(h.collect()?.expect_real()?);
                }
                h.rendezvous()?;
                h.finished();
                Ok(())
            },
            |h: WorkerHandle| {
                let x = h.receive()?.expect_real()?;
                h.submit(Unit::real(x * x))?;
                h.die();
                Ok(())
            },
        );
        assert_eq!(out.lock().len(), jobs, "{}: lost results", engine.name());
        times.push(secs);
    }
    median(&mut times)
}

/// Median wall seconds over `reps` sparse-grid-protocol runs.
fn sparse_grid_secs(engine: Engine, mc: &Mc, reps: usize) -> f64 {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let app = SequentialApp::new(2, 1, 1.0e-3);
        let grids = app.grids();
        let n = grids.len();
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = out.clone();
        let secs = run_protocol(
            engine,
            mc,
            move |h: MasterHandle| {
                h.create_pool();
                for idx in &grids {
                    let _w = h.request_worker()?;
                    h.send_work(request_to_unit(&app.request_for(*idx)))?;
                }
                for _ in &grids {
                    out2.lock().push(result_from_unit(&h.collect()?)?);
                }
                h.rendezvous()?;
                h.finished();
                Ok(())
            },
            |h: WorkerHandle| {
                let req = request_from_unit(&h.receive()?)?;
                let res = solver::subsolve(&req).map_err(|e| MfError::App(e.to_string()))?;
                h.submit(result_to_unit(&res))?;
                h.die();
                Ok(())
            },
        );
        assert_eq!(out.lock().len(), n, "{}: lost results", engine.name());
        times.push(secs);
    }
    median(&mut times)
}

// ---------------------------------------------------------------------------
// Dispatch loop: assign / compare / post / transition, no workers at all.
// ---------------------------------------------------------------------------

fn count_source(limit: u64) -> String {
    format!(
        "manner Count() {{\n\
         \x20   auto process n is variable(0).\n\
         \x20   begin: n = n + 1; if (n < {limit}) then (post (begin)) else (post (done)).\n\
         \x20   done: halt.\n\
         }}\n"
    )
}

/// Wall seconds and coordinator-thread allocations for one `Count()` run.
fn count_run(kind: CoordExec, limit: u64) -> (f64, u64) {
    let mc = Mc::from_source(&count_source(limit)).expect("count source");
    let env = Environment::new();
    let t0 = Instant::now();
    let (_, allocs) = allocations_during(|| {
        env.run_manner(&mc, kind, "count.m", "Count", |_| Ok(Vec::new()))
            .expect("count run")
    });
    let secs = t0.elapsed().as_secs_f64();
    env.shutdown();
    (secs, allocs)
}

/// The same loop hand-written against the runtime (variable + events),
/// the "native master" baseline for pure dispatch.
fn count_native(limit: u64) -> f64 {
    let env = Environment::new();
    let t0 = Instant::now();
    env.run_coordinator("Count", |coord| {
        let n = Variable::spawn(coord, "n", Unit::int(0))?;
        let pats = [EventPattern::named("begin"), EventPattern::named("done")];
        coord.post("begin");
        while let Some((0, _)) = coord.ctx().core().events().try_select(&pats) {
            let v = n.add(1);
            if (v as u64) < limit {
                coord.post("begin");
            } else {
                coord.post("done");
            }
        }
        Ok(())
    })
    .expect("native count");
    let secs = t0.elapsed().as_secs_f64();
    env.shutdown();
    secs
}

/// Per-step cost in nanoseconds via two run sizes (subtracts the fixed
/// startup/teardown work shared by both runs).
fn per_step_ns(run: impl Fn(u64) -> f64, k1: u64, k2: u64) -> f64 {
    let t1 = run(k1);
    let t2 = run(k2);
    ((t2 - t1) * 1e9 / (k2 - k1) as f64).max(0.0)
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

// ---------------------------------------------------------------------------

fn main() {
    let cli = Cli::parse(
        "coord_bench",
        "[--jobs N] [--reps N] [--iters N] [--json] [--out FILE] \
         [--assert-overhead X] [--assert-zero-alloc]",
    );
    let jobs: usize = cli.parsed("--jobs", 32);
    let reps: usize = cli.parsed("--reps", 5);
    let iters: u64 = cli.parsed("--iters", 20_000);
    let json = cli.flag("--json");
    let out_path: Option<String> = cli.parsed_opt("--out");
    let budget: Option<f64> = cli.parsed_opt("--assert-overhead");
    let assert_zero_alloc = cli.flag("--assert-zero-alloc");

    let mc = Mc::from_source(manifold::lang::PROTOCOL_MW_SOURCE).expect("protocolMW.m");

    // (a) + (b): the two protocols under all three engines.
    let mut squaring = [0.0f64; 3];
    let mut sparse = [0.0f64; 3];
    for (i, engine) in Engine::ALL.into_iter().enumerate() {
        squaring[i] = squaring_secs(engine, &mc, jobs, reps);
        sparse[i] = sparse_grid_secs(engine, &mc, reps);
        if !json {
            eprintln!(
                "{:>8}: squaring {:7.2} ms   sparse-grid {:7.2} ms",
                engine.name(),
                squaring[i] * 1e3,
                sparse[i] * 1e3
            );
        }
    }

    // (c): pure dispatch, plus the steady-state allocation check. Warm up
    // once so lazily-grown buffers (thread pool, event memory) settle.
    let _ = count_run(CoordExec::Compiled, 64);
    let _ = count_native(64);
    let (k1, k2) = (iters, iters * 11);
    let native_ns = per_step_ns(count_native, k1, k2);
    let interp_ns = per_step_ns(|k| count_run(CoordExec::Interp, k).0, k1, k2);
    let vm_ns = per_step_ns(|k| count_run(CoordExec::Compiled, k).0, k1, k2);
    let (_, a1) = count_run(CoordExec::Compiled, k1);
    let (_, a2) = count_run(CoordExec::Compiled, k2);
    let steady_allocs = a2.saturating_sub(a1);
    if !json {
        eprintln!(
            "dispatch: native {native_ns:6.1} ns/step   interp {interp_ns:6.1}   \
             compiled {vm_ns:6.1}   steady-state allocs/{} extra steps: {steady_allocs}",
            k2 - k1
        );
    }

    let squaring_overhead = squaring[2] / squaring[0];
    let report = format!(
        "{{\n  \"bench\": \"coord_bench\",\n  \"jobs\": {jobs},\n  \"reps\": {reps},\n\
         \x20 \"squaring\": {{\n    \"native_ms\": {:.3},\n    \"interp_ms\": {:.3},\n\
         \x20   \"compiled_ms\": {:.3},\n    \"interp_over_native\": {:.3},\n\
         \x20   \"compiled_over_native\": {:.3}\n  }},\n\
         \x20 \"sparse_grid\": {{\n    \"native_ms\": {:.3},\n    \"interp_ms\": {:.3},\n\
         \x20   \"compiled_ms\": {:.3},\n    \"interp_over_native\": {:.3},\n\
         \x20   \"compiled_over_native\": {:.3}\n  }},\n\
         \x20 \"dispatch\": {{\n    \"iters\": {iters},\n    \"native_ns_per_step\": {:.1},\n\
         \x20   \"interp_ns_per_step\": {:.1},\n    \"compiled_ns_per_step\": {:.1},\n\
         \x20   \"interp_over_compiled\": {:.3},\n\
         \x20   \"compiled_steady_state_allocs\": {steady_allocs}\n  }}\n}}\n",
        squaring[0] * 1e3,
        squaring[1] * 1e3,
        squaring[2] * 1e3,
        squaring[1] / squaring[0],
        squaring_overhead,
        sparse[0] * 1e3,
        sparse[1] * 1e3,
        sparse[2] * 1e3,
        sparse[1] / sparse[0],
        sparse[2] / sparse[0],
        native_ns,
        interp_ns,
        vm_ns,
        if vm_ns > 0.0 { interp_ns / vm_ns } else { 0.0 },
    );
    if json {
        println!("{report}");
    }
    if let Some(path) = out_path {
        std::fs::write(&path, &report).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }

    let mut failed = false;
    if let Some(x) = budget {
        if squaring_overhead > x {
            eprintln!(
                "FAIL: compiled/native overhead {squaring_overhead:.3} exceeds budget {x:.3}"
            );
            failed = true;
        }
    }
    if assert_zero_alloc && steady_allocs != 0 {
        eprintln!("FAIL: compiled dispatch loop allocated {steady_allocs} times in steady state");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
