//! The numerical case for the sparse-grid method — the paper's motivation
//! quantified: "The developers of the program found their algorithms to be
//! effective (good convergence rates) but inefficient (long computing
//! times)."
//!
//! Prints, per level: the L2 error and work of the combination-technique
//! solution vs the full isotropic grid of equal finest mesh width, plus
//! the observed convergence order.
//!
//! ```text
//! cargo run -p bench --release --bin convergence [-- --max-level N --tol T]
//! ```

use solver::problem::Problem;
use solver::study::{convergence_study, format_study, observed_orders};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_level: u32 = args
        .iter()
        .position(|a| a == "--max-level")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let tol: f64 = args
        .iter()
        .position(|a| a == "--tol")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0e-5);

    for (name, problem) in [
        ("manufactured benchmark", Problem::manufactured_benchmark()),
        ("transport benchmark", Problem::transport_benchmark()),
    ] {
        println!("convergence study — {name}, root 2, le_tol {tol:.0e}");
        let rows = convergence_study(2, 0..=max_level, tol, problem).expect("study solve failed");
        print!("{}", format_study(&rows));
        let orders = observed_orders(&rows);
        println!(
            "observed combination orders per level: {:?}",
            orders
                .iter()
                .map(|o| (o * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
        println!();
    }
}
