//! Regenerate Figures 2–5: the Table 1 series, plotted.
//!
//! * Figure 2 — average sequential and concurrent times vs level, 1.0e-3
//!   runs, logarithmic y ("Because of the wide range … we use the
//!   logarithmic scale").
//! * Figure 3 — average speedup and machines vs level, 1.0e-3 runs.
//! * Figure 4 — like Figure 2 for the 1.0e-4 runs.
//! * Figure 5 — like Figure 3 for the 1.0e-4 runs.
//!
//! Usage:
//! ```text
//! cargo run -p bench --release --bin figures -- <2|3|4|5> [--runs N]
//! ```
//! With no figure number, all four are printed.

use renovation::{run_distributed_experiment, ExperimentPoint};

fn plot_times(points: &[ExperimentPoint], tol: f64, fig: u32) {
    let pts: Vec<&ExperimentPoint> = points.iter().filter(|p| p.tol == tol).collect();
    let st: Vec<(f64, f64)> = pts.iter().map(|p| (p.level as f64, p.st)).collect();
    let ct: Vec<(f64, f64)> = pts.iter().map(|p| (p.level as f64, p.ct)).collect();
    print!(
        "{}",
        bench::ascii_plot(
            &format!(
                "Figure {fig}: avg sequential (st) & concurrent (ct) time [s] \
                 vs level — {tol:.0e} runs, log scale"
            ),
            &[("st", st), ("ct", ct)],
            true
        )
    );
    println!();
}

fn plot_speedup(points: &[ExperimentPoint], tol: f64, fig: u32) {
    let pts: Vec<&ExperimentPoint> = points.iter().filter(|p| p.tol == tol).collect();
    let su: Vec<(f64, f64)> = pts.iter().map(|p| (p.level as f64, p.su)).collect();
    let m: Vec<(f64, f64)> = pts.iter().map(|p| (p.level as f64, p.m)).collect();
    print!(
        "{}",
        bench::ascii_plot(
            &format!(
                "Figure {fig}: avg speedup (su) & weighted avg machines (m) \
                 vs level — {tol:.0e} runs"
            ),
            &[("su", su), ("m", m)],
            false
        )
    );
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which: Option<u32> = args.iter().find_map(|a| a.parse().ok());
    let runs = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5usize);

    let points = run_distributed_experiment(0..=15, &[1.0e-3, 1.0e-4], runs, 20040406, true);

    let figures: Vec<u32> = which.map(|f| vec![f]).unwrap_or_else(|| vec![2, 3, 4, 5]);
    for fig in figures {
        match fig {
            2 => plot_times(&points, 1.0e-3, 2),
            3 => plot_speedup(&points, 1.0e-3, 3),
            4 => plot_times(&points, 1.0e-4, 4),
            5 => plot_speedup(&points, 1.0e-4, 5),
            other => eprintln!("no figure {other}; choose 2..5"),
        }
    }

    println!("underlying series:");
    println!("tol    level       st        ct      su      m");
    for p in &points {
        println!(
            "{:<6} {:>5} {:>9.2} {:>9.2} {:>6.2} {:>6.1}",
            format!("{:.0e}", p.tol),
            p.level,
            p.st,
            p.ct,
            p.su,
            p.m
        );
    }
}
