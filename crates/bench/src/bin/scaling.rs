//! Scaling analysis beyond the paper's single 32-machine data point: how
//! does the renovated application's speedup respond to cluster size?
//!
//! Sweeps the number of machines for a fixed workload (strong scaling) and
//! reports speedup, machine utilisation, and the serial-fraction estimate
//! `f = (w/su − 1)/(w − 1)` (Amdahl, with w = machines offered). The
//! master's serial feeding and the per-worker coordination overhead bound
//! the useful cluster size — quantifying the paper's observation that "the
//! average speedup in a run always lags behind the average number of
//! machines it uses".
//!
//! ```text
//! cargo run -p bench --release --bin scaling [-- --level N --tol T]
//! ```

use cluster::hosts::{paper_cluster, ClusterSpec};
use cluster::noise::Perturbation;
use cluster::sim::DistributedSim;
use renovation::cost::CostModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let level: u32 = args
        .iter()
        .position(|a| a == "--level")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(13);
    let tol: f64 = args
        .iter()
        .position(|a| a == "--tol")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0e-3);

    let model = CostModel::paper_calibrated();
    let wl = model.workload(2, level, tol, true);
    let full = paper_cluster(model.ref_flops_per_sec);
    let st = DistributedSim::new(full.clone()).sequential_time(&wl, &mut Perturbation::none());

    println!(
        "strong scaling at level {level}, tol {tol:.0e} \
         (w = 2·{level}+1 = {} workers; st = {st:.2} s)",
        2 * level + 1
    );
    println!();
    println!("machines      ct       su    peak   serial fraction");
    for n in [2usize, 4, 8, 16, 24, 32] {
        let mut cluster = full.clone();
        cluster.hosts.truncate(n);
        let cluster = ClusterSpec::new(cluster.hosts, model.ref_flops_per_sec);
        let sim = DistributedSim::new(cluster);
        let report = sim.run(&wl, &mut Perturbation::none());
        let su = st / report.elapsed;
        let w = n as f64;
        let serial = if n > 1 {
            (w / su - 1.0) / (w - 1.0)
        } else {
            1.0
        };
        println!(
            "{n:>8} {:>8.2} {:>7.2} {:>7} {:>14.3}",
            report.elapsed, su, report.peak_machines, serial
        );
    }
    println!();
    println!(
        "the speedup saturates well below the cluster size: the master's \
         serial feeding + coordination overheads are the Amdahl bottleneck \
         the paper's Table 1 exhibits."
    );
}
