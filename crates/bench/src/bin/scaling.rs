//! Scaling analysis beyond the paper's single 32-machine data point: how
//! does the renovated application's speedup respond to cluster size?
//!
//! Sweeps the number of machines for a fixed workload (strong scaling) and
//! reports speedup, machine utilisation, and the serial-fraction estimate
//! `f = (w/su − 1)/(w − 1)` (Amdahl, with w = machines offered). The
//! master's serial feeding and the per-worker coordination overhead bound
//! the useful cluster size — quantifying the paper's observation that "the
//! average speedup in a run always lags behind the average number of
//! machines it uses".
//!
//! ```text
//! cargo run -p bench --release --bin scaling \
//!     [-- --level N --tol T] [--backend sim|threads|procs] \
//!     [--faults <seed|plan>] [--checkpoint-dir DIR] [--resume]
//! ```
//!
//! `--backend threads` / `--backend procs` run a *live* strong-scaling
//! sweep instead: the same workload under a bounded-reuse dispatch window
//! of 1, 2, 4, 8 (with that many worker processes for `procs`), measuring
//! wall-clock speedup and verifying the solution checksum never changes
//! with concurrency. `--faults` injects a `chaos::FaultPlan` (a bare
//! number is a seed for a generated schedule) into every window of the
//! sweep — the checksum column then also witnesses that losses and
//! re-dispatches change nothing but the wall clock.

use std::sync::Arc;

use bench::cli::Cli;
use bench::live::{field_checksum, run_live_with, Backend, LiveOpts};
use cluster::hosts::{paper_cluster, ClusterSpec};
use cluster::noise::Perturbation;
use cluster::sim::DistributedSim;
use renovation::cost::CostModel;

const USAGE: &str = "[--level N] [--tol T] [--backend sim|threads|procs] \
     [--faults <seed|plan>] [--checkpoint-dir DIR] [--resume]";

fn main() {
    let cli = Cli::parse("scaling", USAGE);
    let backend = cli.backend(Backend::Sim);
    let level = cli.parsed(
        "--level",
        if backend == Backend::Sim { 13u32 } else { 6u32 },
    );
    let tol = cli.parsed("--tol", 1.0e-3f64);

    if backend != Backend::Sim {
        let fault_spec = cli.fault_spec();
        let checkpoint_dir = cli.checkpoint_dir();
        let resume = cli.flag("--resume");
        let app = solver::sequential::SequentialApp::new(2, level, tol);
        let seq = app.run().expect("sequential reference");
        let reference = field_checksum(&seq.combined);
        println!(
            "live strong scaling, {backend:?} backend — level {level}, tol {tol:.0e} \
             ({} jobs), bounded-reuse window sweep{}",
            2 * level + 1,
            if fault_spec.is_some() {
                ", with injected faults"
            } else {
                ""
            }
        );
        println!();
        println!("| window |  wall s |   su | peak | lost | checksum ok |");
        println!("|--------|---------|------|------|------|-------------|");
        let mut base = None;
        for window in [1usize, 2, 4, 8] {
            let policy = Arc::new(protocol::BoundedReuse::new(window));
            let faults = fault_spec
                .as_deref()
                .map(|spec| cli.fault_plan(spec, window as u64, (2 * level + 1) as u64));
            let opts = LiveOpts {
                faults,
                checkpoint_dir: checkpoint_dir.clone(),
                resume,
                retry_budget: fault_spec.as_ref().map(|_| 16),
            };
            let r = run_live_with(backend, &app, policy, window, &opts)
                .expect("live run failed (fault schedule exceeded the retry budget?)");
            let base_wall = *base.get_or_insert(r.wall_s);
            println!(
                "| {window:>6} | {:>7.3} | {:>4.2} | {:>4} | {:>4} | {:>11} |",
                r.wall_s,
                base_wall / r.wall_s,
                r.peak,
                r.losses,
                if r.checksum == reference { "yes" } else { "NO" }
            );
            assert_eq!(
                r.checksum, reference,
                "concurrency changed the bits of the solution"
            );
        }
        println!();
        println!("checksums are verified against the sequential run: same bits at every window.");
        return;
    }

    let model = CostModel::paper_calibrated();
    let wl = model.workload(2, level, tol, true);
    let full = paper_cluster(model.ref_flops_per_sec);
    let st = DistributedSim::new(full.clone()).sequential_time(&wl, &mut Perturbation::none());

    println!(
        "strong scaling at level {level}, tol {tol:.0e} \
         (w = 2·{level}+1 = {} workers; st = {st:.2} s)",
        2 * level + 1
    );
    println!();
    println!("machines      ct       su    peak   serial fraction");
    for n in [2usize, 4, 8, 16, 24, 32] {
        let mut cluster = full.clone();
        cluster.hosts.truncate(n);
        let cluster = ClusterSpec::new(cluster.hosts, model.ref_flops_per_sec);
        let sim = DistributedSim::new(cluster);
        let report = sim.run(&wl, &mut Perturbation::none());
        let su = st / report.elapsed;
        let w = n as f64;
        let serial = if n > 1 {
            (w / su - 1.0) / (w - 1.0)
        } else {
            1.0
        };
        println!(
            "{n:>8} {:>8.2} {:>7.2} {:>7} {:>14.3}",
            report.elapsed, su, report.peak_machines, serial
        );
    }
    println!();
    println!(
        "the speedup saturates well below the cluster size: the master's \
         serial feeding + coordination overheads are the Amdahl bottleneck \
         the paper's Table 1 exhibits."
    );
}
