//! Scaling analysis beyond the paper's single 32-machine data point: how
//! does the renovated application's speedup respond to cluster size — and
//! where does the *flat* single-master dispatch spine stop scaling?
//!
//! Three experiments:
//!
//! 1. **Paper curve** (strong scaling): sweep the number of machines for a
//!    fixed workload on the paper's calibrated cluster and report speedup,
//!    peak machines, and the serial-fraction estimate
//!    `f = (w/su − 1)/(w − 1)` (Amdahl, w = machines offered). This
//!    reproduces the paper's observation that "the average speedup in a
//!    run always lags behind the average number of machines it uses", and
//!    its 32-host data point.
//! 2. **Flat-master saturation + sharded fleets** (throughput scaling):
//!    sweep a synthetic heterogeneous fleet from 32 to 10,000 hosts with a
//!    workload proportional to the fleet, and run the sharded
//!    discrete-event simulation ([`cluster::ShardedSim`]) once flat
//!    (1 shard — the paper's master) and once sharded (hierarchical shard
//!    masters with work stealing). The flat master's serial feed saturates
//!    aggregate throughput; sharding restores it.
//! 3. **Determinism witness**: the sharded run repeats with the same seed
//!    and must produce the bit-identical virtual elapsed time.
//!
//! ```text
//! cargo run -p bench --release --bin scaling \
//!     [-- --level N --tol T] [--backend sim|threads|procs] \
//!     [--shards N] [--steal on|off] [--churn join@N,leave@M] \
//!     [--faults <seed|plan>] [--checkpoint-dir DIR] [--resume] \
//!     [--out BENCH_scaling.json]
//! ```
//!
//! `--backend threads` / `--backend procs` run a *live* strong-scaling
//! sweep instead: the same workload under a bounded-reuse dispatch window
//! of 1, 2, 4, 8 (with that many worker processes for `procs`), measuring
//! wall-clock speedup and verifying the solution checksum never changes
//! with concurrency — now also under `--shards`/`--churn`, whose steal,
//! join, and leave events are counted from the trace. `--out` writes the
//! machine-readable sweep (the committed `BENCH_scaling.json`).

use std::fmt::Write as _;
use std::sync::Arc;

use bench::cli::Cli;
use bench::live::{field_checksum, run_live_with, Backend, LiveOpts};
use cluster::hosts::{paper_cluster, synthetic_cluster, ClusterSpec};
use cluster::noise::Perturbation;
use cluster::sim::DistributedSim;
use cluster::{ShardSimOpts, ShardedSim};
use protocol::PaperFaithful;
use renovation::cost::CostModel;

const USAGE: &str = "[--level N] [--tol T] [--backend sim|threads|procs] \
     [--shards N] [--steal on|off] [--churn join@N,leave@M] \
     [--faults <seed|plan>] [--checkpoint-dir DIR] [--resume] [--out FILE]";

fn main() {
    let cli = Cli::parse("scaling", USAGE);
    let backend = cli.backend(Backend::Sim);
    let level = cli.parsed(
        "--level",
        if backend == Backend::Sim { 13u32 } else { 6u32 },
    );
    let tol = cli.parsed("--tol", 1.0e-3f64);
    let shard_spec = cli.shards();
    let churn = cli.churn();

    if backend != Backend::Sim {
        let fault_spec = cli.fault_spec();
        let checkpoint_dir = cli.checkpoint_dir();
        let resume = cli.flag("--resume");
        let app = solver::sequential::SequentialApp::new(2, level, tol);
        let seq = app.run().expect("sequential reference");
        let reference = field_checksum(&seq.combined);
        println!(
            "live strong scaling, {backend:?} backend — level {level}, tol {tol:.0e} \
             ({} jobs), bounded-reuse window sweep{}{}",
            2 * level + 1,
            if shard_spec.is_flat() {
                String::new()
            } else {
                format!(", {} shards", shard_spec.shards)
            },
            if fault_spec.is_some() {
                ", with injected faults"
            } else {
                ""
            }
        );
        println!();
        println!("| window |  wall s |   su | peak | lost | steal | join | leave | checksum ok |");
        println!("|--------|---------|------|------|------|-------|------|-------|-------------|");
        let mut base = None;
        for window in [1usize, 2, 4, 8] {
            let policy = Arc::new(protocol::BoundedReuse::new(window));
            let faults = fault_spec
                .as_deref()
                .map(|spec| cli.fault_plan(spec, window as u64, (2 * level + 1) as u64));
            let opts = LiveOpts {
                faults,
                checkpoint_dir: checkpoint_dir.clone(),
                resume,
                retry_budget: fault_spec.as_ref().map(|_| 16),
                shards: shard_spec,
                churn: churn.clone(),
            };
            let r = run_live_with(backend, &app, policy, window, &opts)
                .expect("live run failed (fault schedule exceeded the retry budget?)");
            let base_wall = *base.get_or_insert(r.wall_s);
            println!(
                "| {window:>6} | {:>7.3} | {:>4.2} | {:>4} | {:>4} | {:>5} | {:>4} | {:>5} | {:>11} |",
                r.wall_s,
                base_wall / r.wall_s,
                r.peak,
                r.losses,
                r.steals,
                r.joins,
                r.leaves,
                if r.checksum == reference { "yes" } else { "NO" }
            );
            assert_eq!(
                r.checksum, reference,
                "concurrency changed the bits of the solution"
            );
        }
        println!();
        println!("checksums are verified against the sequential run: same bits at every window.");
        return;
    }

    let model = CostModel::paper_calibrated();
    let wl = model.workload(2, level, tol, true);
    let full = paper_cluster(model.ref_flops_per_sec);
    let st = DistributedSim::new(full.clone()).sequential_time(&wl, &mut Perturbation::none());

    println!(
        "strong scaling at level {level}, tol {tol:.0e} \
         (w = 2·{level}+1 = {} workers; st = {st:.2} s)",
        2 * level + 1
    );
    println!();
    println!("machines      ct       su    peak   serial fraction");
    let mut paper_rows: Vec<(usize, f64, f64, i64, f64)> = Vec::new();
    for n in [2usize, 4, 8, 16, 24, 32] {
        let mut cluster = full.clone();
        cluster.hosts.truncate(n);
        let cluster = ClusterSpec::new(cluster.hosts, model.ref_flops_per_sec);
        let sim = DistributedSim::new(cluster);
        let report = sim.run(&wl, &mut Perturbation::none());
        let su = st / report.elapsed;
        let w = n as f64;
        let serial = if n > 1 {
            (w / su - 1.0) / (w - 1.0)
        } else {
            1.0
        };
        println!(
            "{n:>8} {:>8.2} {:>7.2} {:>7} {:>14.3}",
            report.elapsed, su, report.peak_machines, serial
        );
        paper_rows.push((n, report.elapsed, su, report.peak_machines, serial));
    }
    println!();
    println!(
        "the speedup saturates well below the cluster size: the master's \
         serial feeding + coordination overheads are the Amdahl bottleneck \
         the paper's Table 1 exhibits."
    );

    // ---- Flat-master saturation vs sharded fleets (the 10k-host sweep) --
    //
    // Fleet-proportional workload: each host gets ~2 jobs' worth of work,
    // so a fleet that scales perfectly holds throughput per host constant.
    // The flat master's serial feed caps aggregate throughput instead;
    // shard masters (each feeding its own pool, stealing across pools)
    // lift the cap.
    let seed = 411u64;
    let base = model.workload(2, 8, tol, true);
    println!();
    println!("flat-master saturation vs sharded fleets (heterogeneous synthetic hosts, quiet)");
    println!();
    println!(
        "|  hosts |  jobs | shards | flat jobs/s | sharded jobs/s | ratio | steals | spread s |"
    );
    println!(
        "|--------|-------|--------|-------------|----------------|-------|--------|----------|"
    );
    struct SweepRow {
        hosts: usize,
        jobs: usize,
        shards: usize,
        flat_elapsed: f64,
        flat_tp: f64,
        sharded_elapsed: f64,
        sharded_tp: f64,
        steals: usize,
        spread: f64,
        deterministic: bool,
    }
    let mut sweep: Vec<SweepRow> = Vec::new();
    for hosts in [32usize, 100, 320, 1000, 3200, 10000] {
        let copies = (2 * hosts).div_ceil(base.job_count()).max(1);
        let wl = base.replicate(copies);
        let cluster = synthetic_cluster(hosts, seed, model.ref_flops_per_sec);
        let sim = ShardedSim::new(cluster);
        // One shard master per ~64 hosts, within the fleet's clamp; an
        // explicit --shards overrides.
        let shards = if shard_spec.is_flat() {
            (hosts / 64).clamp(2, 64)
        } else {
            shard_spec.shards
        };
        let flat = sim.run(&wl, &PaperFaithful, &ShardSimOpts::new(1).quiet());
        let mut opts = ShardSimOpts::new(shards).quiet();
        opts.spec.steal = shard_spec.steal;
        opts.churn = churn.clone();
        let sharded = sim.run(&wl, &PaperFaithful, &opts);
        let again = sim.run(&wl, &PaperFaithful, &opts);
        let deterministic = sharded.elapsed.to_bits() == again.elapsed.to_bits();
        assert!(
            deterministic,
            "sharded DES must be bit-deterministic at a fixed shard count and seed"
        );
        println!(
            "| {hosts:>6} | {:>5} | {:>6} | {:>11.2} | {:>14.2} | {:>5.2} | {:>6} | {:>8.1} |",
            wl.job_count(),
            sharded.shards,
            flat.throughput,
            sharded.throughput,
            sharded.throughput / flat.throughput,
            sharded.steals,
            sharded.finish_spread(),
        );
        sweep.push(SweepRow {
            hosts,
            jobs: wl.job_count(),
            shards: sharded.shards,
            flat_elapsed: flat.elapsed,
            flat_tp: flat.throughput,
            sharded_elapsed: sharded.elapsed,
            sharded_tp: sharded.throughput,
            steals: sharded.steals,
            spread: sharded.finish_spread(),
            deterministic,
        });
    }
    println!();
    let sat = sweep
        .windows(2)
        .find(|w| w[1].flat_tp < w[0].flat_tp * 1.10)
        .map(|w| w[0].hosts);
    match sat {
        Some(h) => println!(
            "flat-master throughput saturates near {h} hosts (<10% gain from the next \
             fleet size); sharded masters keep scaling."
        ),
        None => println!("flat-master throughput did not saturate within the sweep."),
    }

    // ---- Machine-readable block (the committed BENCH_scaling.json). ----
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"level\": {level},");
    let _ = writeln!(json, "  \"tol\": {tol:e},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"sequential_time_s\": {st:.3},");
    let _ = writeln!(json, "  \"paper_curve\": [");
    for (i, (n, ct, su, peak, serial)) in paper_rows.iter().enumerate() {
        let comma = if i + 1 < paper_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"machines\": {n}, \"ct_s\": {ct:.3}, \"speedup\": {su:.3}, \
             \"peak_machines\": {peak}, \"serial_fraction\": {serial:.4}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"flat_saturation_hosts\": {},",
        sat.map(|h| h.to_string()).unwrap_or_else(|| "null".into())
    );
    let _ = writeln!(json, "  \"shard_sweep\": [");
    for (i, r) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"hosts\": {}, \"jobs\": {}, \"shards\": {}, \
             \"flat_elapsed_s\": {:.3}, \"flat_jobs_per_s\": {:.4}, \
             \"sharded_elapsed_s\": {:.3}, \"sharded_jobs_per_s\": {:.4}, \
             \"throughput_ratio\": {:.3}, \"steals\": {}, \
             \"finish_spread_s\": {:.3}, \"deterministic\": {}}}{comma}",
            r.hosts,
            r.jobs,
            r.shards,
            r.flat_elapsed,
            r.flat_tp,
            r.sharded_elapsed,
            r.sharded_tp,
            r.sharded_tp / r.flat_tp,
            r.steals,
            r.spread,
            r.deterministic,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    match cli.value("--out") {
        Some(path) => {
            std::fs::write(path, &json).expect("write --out file");
            println!();
            println!("wrote {path}");
        }
        None => {
            println!();
            print!("{json}");
        }
    }
}
