//! Reproduce the §6 chronological output: the `Welcome`/`Bye` trace of a
//! small distributed run, in the exact label format of the paper
//! (machine, task-instance id, process id, seconds+microseconds since the
//! epoch, task name, manifold name, source file, line, message).
//!
//! Two variants:
//! * default — a *live* run of the renovated application (real threads,
//!   bundled per the paper's `mainprog.mlink` + host list, real clock);
//! * `--virtual` — the simulated cluster run (virtual timestamps), which
//!   also prints the machine ebb & flow summary.
//!
//! Usage:
//! ```text
//! cargo run -p bench --release --bin chronology [-- --level N] [--virtual]
//! ```

use renovation::app::{run_concurrent, RunMode};
use renovation::virtualrun::figure1_run;
use solver::SequentialApp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let level: u32 = args
        .iter()
        .position(|a| a == "--level")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let virtual_run = args.iter().any(|a| a == "--virtual");

    if virtual_run {
        let report = figure1_run(level, 1.0e-3, 7);
        for rec in &report.records {
            println!("{rec}");
        }
        println!();
        println!(
            "elapsed {:.1} s, peak {} machines, weighted average {:.1}",
            report.elapsed, report.peak_machines, report.weighted_avg_machines
        );
    } else {
        let app = SequentialApp::new(2, level, 1.0e-3);
        let mode = RunMode::Distributed {
            hosts: RunMode::paper_hosts(),
        };
        let conc = run_concurrent(&app, &mode, true).expect("run failed");
        for rec in conc
            .records
            .iter()
            .filter(|r| r.message == "Welcome" || r.message == "Bye")
        {
            println!("{rec}");
        }
        println!();
        println!(
            "distributed run over {} machines; l2 error {:.3e}; pools: {:?}",
            conc.machines_used,
            conc.result.l2_error,
            conc.outcome
                .pools()
                .iter()
                .map(|p| p.workers_created)
                .collect::<Vec<_>>()
        );
    }
}
