//! Regenerate Figure 1: "The ebb & flow during a run of our restructured
//! application for level 15" — elapsed time on the x-axis, number of
//! machines in use on the y-axis.
//!
//! Usage:
//! ```text
//! cargo run -p bench --release --bin figure1 [-- --level N] [--tol T] [--seed S]
//! ```

use renovation::virtualrun::figure1_run;

fn arg<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let level: u32 = arg(&args, "--level", 15);
    let tol: f64 = arg(&args, "--tol", 1.0e-4);
    let seed: u64 = arg(&args, "--seed", 1);

    let report = figure1_run(level, tol, seed);
    println!(
        "Figure 1 reproduction — level {level}, tol {tol:.0e}: run of {:.0} s, \
         peak {} machines, weighted average {:.1}",
        report.elapsed, report.peak_machines, report.weighted_avg_machines
    );
    println!("(paper: a level-15 run of 634 s, sometimes 32 machines, weighted average 11)");
    println!();

    let samples = report.busy.sample(0.0, report.elapsed, 64);
    let series: Vec<(f64, f64)> = samples.iter().map(|&(t, v)| (t, v as f64)).collect();
    print!(
        "{}",
        bench::ascii_plot(
            "machines in use vs elapsed seconds",
            &[("machines", series)],
            false
        )
    );
    println!();
    println!("step trace (time s -> machines):");
    for (t, v) in report.busy.steps() {
        println!("{t:10.2} {v:3}");
    }
}
