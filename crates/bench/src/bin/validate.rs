//! Validate the cost model's *shape* against the real solver.
//!
//! The Table 1 reproduction rests on `CostModel::paper_calibrated()`. Its
//! absolute scale is anchored to one paper cell, but its shape constants —
//! geometric work growth per level, the tolerance exponent, the anisotropy
//! spread — are claims about the solver. This binary measures them on the
//! *actual* solver (real subsolves, real work counters) at feasible levels
//! and prints model-vs-measured side by side.
//!
//! ```text
//! cargo run -p bench --release --bin validate [-- --max-level N]
//! ```

use renovation::cost::{measure_shape, CostModel, REF_TOL};
use solver::problem::Problem;

fn main() {
    let max_level: u32 = std::env::args()
        .skip(1)
        .position(|a| a == "--max-level")
        .and_then(|i| std::env::args().nth(i + 2))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let model = CostModel::paper_calibrated();
    println!("cost-model shape validation against the real solver");
    println!("(root 2, levels 0..={max_level}, transport benchmark, tol {REF_TOL:.0e})");
    println!();

    let shape = measure_shape(2, max_level, REF_TOL, Problem::transport_benchmark());

    println!("per-level work growth (measured flops vs model seconds):");
    println!("level   measured Mflop   growth   per-grid growth   model growth");
    let mut prev_model = model.sequential_seconds(2, 0, REF_TOL);
    let mut prev_flops: Option<f64> = None;
    for (level, flops) in &shape.level_flops {
        let model_st = model.sequential_seconds(2, *level, REF_TOL);
        let g_meas = prev_flops.map(|p| flops / p);
        let g_model = if *level > 0 {
            model_st / prev_model
        } else {
            f64::NAN
        };
        match g_meas {
            Some(g) => {
                // Divide out the growth of the grid *count* (2l+1 vs 2l-1)
                // to isolate the per-grid cost growth the model's
                // `level_growth` constant describes.
                let count_ratio = (2 * level + 1) as f64 / (2 * level - 1).max(1) as f64;
                println!(
                    "{level:>5} {:>16.2} {:>8.2} {:>17.2} {:>14.2}",
                    flops / 1e6,
                    g,
                    g / count_ratio,
                    g_model
                );
            }
            None => println!(
                "{level:>5} {:>16.2} {:>8} {:>17} {:>14}",
                flops / 1e6,
                "-",
                "-",
                "-"
            ),
        }
        if *level > 0 {
            prev_model = model_st;
        }
        prev_flops = Some(*flops);
    }
    println!();
    println!(
        "anisotropy spread at level {max_level}: measured {:.2}x (model band up to {:.2}x)",
        shape.anisotropy_spread,
        1.0 + model.anisotropy * (max_level as f64 / (max_level + 1) as f64).powi(2)
    );
    println!(
        "tolerance ratio tol/10 vs tol:   measured {:.2}x (model {:.2}x)",
        shape.tol_ratio,
        10f64.powf(model.tol_exponent)
    );
    println!();
    println!(
        "note: the raw measured growth converges to the paper's ~2.4x from \
         above because early levels also add grids (1 -> 3 -> 5 -> ...); \
         the per-grid column isolates the ~2.3-2.7x cost growth per level \
         that the model's level_growth constant describes. The model's own \
         low-level ratios are flattened by its fixed initialization costs, \
         mirroring the overhead-dominated low levels of the paper's table."
    );
}
