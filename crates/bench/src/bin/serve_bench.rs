//! Closed-loop load generator for the `serve` layer: N tenants × M
//! pipelined jobs over one `mf-served` daemon (embedded or external).
//!
//! ```text
//! cargo run -p bench --release --bin serve_bench -- \
//!     [--tenants N] [--inflight N] [--jobs N] [--root N] [--level N]
//!     [--backend sim|threads] [--heavy-weight W] [--connect ADDR]
//!     [--journal DIR] [--kill-daemon N] [--seed N]
//!     [--drain] [--assert-zero-rejections] [--assert-min-peak N]
//!     [--assert-lossless] [--json PATH]
//! ```
//!
//! Each tenant owns one connection and keeps `--inflight` submits open:
//! every `Done` immediately funds the next `Submit`, so the offered load
//! tracks the daemon's service rate instead of overrunning it — except at
//! start-up, where all tenants burst their full windows at once and the
//! admission layer's queues (and its `peak_in_system` high-water mark)
//! absorb tenants × inflight concurrent jobs.
//!
//! Every reply is checked against the sequential oracle of the same
//! (root, level, tol): the served `combined` field must be
//! **bit-identical** (FNV-1a over the f64 bit patterns, plus the exact
//! `l2_error`). Any drift fails the run. `Reject` replies are counted,
//! backed off under jittered exponential backoff floored at the daemon's
//! retry-after hint, and resubmitted — the rejection *rate* is part of
//! the report, not an error.
//!
//! **Chaos mode** (`--kill-daemon N`): the bench becomes a supervisor.
//! It spawns a real `mf-served` process with `--journal`, arms it with a
//! `daemonkill@K` fault (SIGKILL after the K-th journaled outcome, K
//! seeded by `--seed`), and restarts it on the same journal every time it
//! dies — N induced crashes, then a clean final incarnation. Tenants ride
//! through with resume tokens. `--assert-lossless` then requires every
//! job resolved exactly once: zero lost, zero application-level
//! duplicates, zero drift — the crash-durability acceptance gate.
//!
//! Without `--connect` the bench embeds a daemon on a loopback socket and
//! reports its admission-layer statistics (peak in-system concurrency,
//! per-tenant fair-share rows) alongside the client-side latency
//! histograms; `--journal DIR` turns on the embedded daemon's write-ahead
//! journal (for measuring its overhead); `--json` writes the whole thing
//! as `BENCH_serve.json`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::cli::Cli;
use protocol::PaperFaithful;
use renovation::{Engine, EngineOpts, RunMode};
use serve::daemon::{Daemon, DaemonConfig, EngineBuilder};
use serve::proto::field_checksum;
use serve::{AdmissionConfig, Backoff, JournalConfig, ServeMsg, TenantClient};
use solver::sequential::SequentialApp;
use transport::Addr;

const USAGE: &str = "[--tenants N] [--inflight N] [--jobs N] [--root N] [--level N] \
     [--backend sim|threads] [--heavy-weight W] [--connect ADDR] [--journal DIR] \
     [--kill-daemon N] [--seed N] [--drain] [--assert-zero-rejections] \
     [--assert-min-peak N] [--assert-lossless] [--json PATH]";

/// One tenant thread's view of its own run.
struct TenantOutcome {
    name: String,
    weight: u32,
    served: u64,
    rejected: u64,
    failed: u64,
    drifted: u64,
    /// Replayed replies the client's exactly-once filter swallowed.
    duplicates_suppressed: u64,
    /// Replies that resolved a seq this tenant had already resolved —
    /// must be zero, or exactly-once is broken end to end.
    app_duplicates: u64,
    /// Times this tenant resumed its session after a dead connection.
    resumes: u64,
    latencies_ms: Vec<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Drive one tenant's closed loop: keep `inflight` submits open until
/// `jobs` of them have resolved (served or finally failed). When
/// `resumable` (chaos mode), a dead connection is resumed under backoff
/// instead of failing the tenant.
#[allow(clippy::too_many_arguments)]
fn run_tenant(
    addr: &Addr,
    name: String,
    weight: u32,
    jobs: u64,
    inflight: usize,
    root: u32,
    level: u32,
    tol: f64,
    oracle_checksum: u64,
    oracle_l2: f64,
    resumable: bool,
    seed: u64,
) -> std::io::Result<TenantOutcome> {
    let mut reconnect = Backoff::with(
        Duration::from_millis(5),
        Duration::from_millis(200),
        seed ^ 0xA5A5,
    );
    let mut c = if resumable {
        // The daemon may still be binding (or rebinding, mid-crash).
        loop {
            match TenantClient::connect(addr, &name, weight) {
                Ok(c) => break c,
                Err(_) => std::thread::sleep(reconnect.next(None)),
            }
        }
    } else {
        TenantClient::connect(addr, &name, weight)?
    };
    reconnect.reset();
    c.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut out = TenantOutcome {
        name,
        weight,
        served: 0,
        rejected: 0,
        failed: 0,
        drifted: 0,
        duplicates_suppressed: 0,
        app_duplicates: 0,
        resumes: 0,
        latencies_ms: Vec::with_capacity(jobs as usize),
    };
    let mut reject_backoff = Backoff::new(seed ^ 0x5A5A);
    let mut open: HashMap<u64, Instant> = HashMap::new();
    let mut next_seq = 0u64;
    let mut submitted = 0u64;
    while out.served + out.failed < jobs {
        let step: std::io::Result<bool> = (|| {
            while open.len() < inflight && submitted < jobs {
                next_seq += 1;
                submitted += 1;
                c.submit(next_seq, root, level, tol)?;
                open.insert(next_seq, Instant::now());
            }
            match c.recv()? {
                ServeMsg::Done {
                    seq,
                    l2_error,
                    combined,
                    ..
                } => {
                    match open.remove(&seq) {
                        Some(t0) => out.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3),
                        // Resolved once already: exactly-once violated.
                        None => out.app_duplicates += 1,
                    }
                    out.served += 1;
                    if field_checksum(&combined) != oracle_checksum || l2_error != oracle_l2 {
                        out.drifted += 1;
                    }
                    reject_backoff.reset();
                }
                ServeMsg::Reject {
                    seq,
                    retry_after_ms,
                    ..
                } => {
                    out.rejected += 1;
                    open.remove(&seq);
                    // Back off under jitter, floored at the daemon's
                    // hint, then re-fund the slot with a fresh seq.
                    submitted -= 1;
                    std::thread::sleep(
                        reject_backoff.next(Some(Duration::from_millis(retry_after_ms))),
                    );
                }
                ServeMsg::Fail { seq, .. } => {
                    if open.remove(&seq).is_none() {
                        out.app_duplicates += 1;
                    }
                    out.failed += 1;
                }
                // The daemon is going down mid-run; stop cleanly.
                ServeMsg::Drained { .. } => return Ok(false),
                _ => {}
            }
            Ok(true)
        })();
        match step {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                if !resumable {
                    return Err(e);
                }
                // Chaos mode: the daemon died under us. Resume the
                // session (token + consumed-reply watermark + automatic
                // resubmission of open seqs) against its successor.
                c.resume_with_backoff(&mut reconnect, 3_000)?;
                c.set_read_timeout(Some(Duration::from_secs(60)))?;
                reconnect.reset();
                out.resumes += 1;
            }
        }
    }
    out.duplicates_suppressed = c.duplicates_suppressed();
    let _ = c.ack();
    c.bye()?;
    Ok(out)
}

/// Durability-mode accounting for the report.
struct ChaosReport {
    kills: u32,
    final_exit_clean: bool,
}

/// Where the `mf-served` binary lives: next to this bench binary unless
/// `MF_SERVED_BIN` says otherwise.
fn mf_served_path() -> PathBuf {
    if let Some(p) = std::env::var_os("MF_SERVED_BIN") {
        return p.into();
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.push("mf-served");
    p
}

#[allow(clippy::too_many_arguments)]
fn spawn_served(
    sock: &Path,
    journal: &Path,
    backend: &str,
    level: u32,
    queue_cap: usize,
    faults: Option<&str>,
) -> Child {
    let mut cmd = Command::new(mf_served_path());
    cmd.arg("--listen")
        .arg(format!("unix:{}", sock.display()))
        .arg("--backend")
        .arg(backend)
        .arg("--journal")
        .arg(journal)
        .arg("--capacity-level")
        .arg(level.to_string())
        .arg("--queue-cap")
        .arg(queue_cap.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if let Some(f) = faults {
        cmd.arg("--faults").arg(f);
    }
    cmd.spawn()
        .expect("spawn mf-served (is it built? cargo build -p serve --bin mf-served)")
}

fn main() {
    let cli = Cli::parse("serve_bench", USAGE);
    let tenants = cli.tenants(16);
    let inflight = cli.inflight(80);
    let jobs = cli.parsed("--jobs", 128u64).max(1);
    let root = cli.parsed("--root", 1u32);
    let level = cli.parsed("--level", 2u32);
    let tol = cli.parsed("--tol", 1e-3f64);
    let heavy_weight = cli.parsed("--heavy-weight", 4u32);
    let backend = cli.value("--backend").unwrap_or("sim").to_string();
    let want_drain = cli.flag("--drain");
    let kill_daemon: u32 = cli.parsed("--kill-daemon", 0u32);
    let seed: u64 = cli.parsed("--seed", 42u64);

    let oracle = SequentialApp::new(root, level, tol)
        .run()
        .expect("sequential oracle");
    let oracle_checksum = field_checksum(&oracle.combined);
    let oracle_l2 = oracle.l2_error;

    // Three ways to get a daemon: connect to an external one, supervise
    // our own external one through induced crashes, or embed one.
    let mut supervisor: Option<std::thread::JoinHandle<ChaosReport>> = None;
    let done = Arc::new(AtomicBool::new(false));
    let mut scratch: Option<PathBuf> = None;
    let (daemon, addr, backend_label) = if kill_daemon > 0 {
        if cli.value("--connect").is_some() {
            cli.usage_exit("--kill-daemon supervises its own daemon; drop --connect");
        }
        let base = std::env::temp_dir().join(format!("serve-bench-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).expect("scratch dir");
        let sock = base.join("sock");
        let journal = match cli.value("--journal") {
            Some(dir) => PathBuf::from(dir),
            None => base.join("journal"),
        };
        scratch = Some(base);
        let queue_cap = tenants * inflight * 2;

        // Seeded kill points: SIGKILL after the K-th journaled outcome,
        // a different K per incarnation, never past a quarter of the
        // total so every kill actually fires mid-run.
        let total = tenants as u64 * jobs;
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let kill_points: Vec<u64> = (0..kill_daemon)
            .map(|_| 1 + rng() % (total / 4).max(1))
            .collect();
        println!(
            "serve_bench — chaos supervisor: {kill_daemon} induced crashes at journaled \
             outcomes {kill_points:?}"
        );

        let first_fault = format!("daemonkill@{}", kill_points[0]);
        let child = spawn_served(
            &sock,
            &journal,
            &backend,
            level,
            queue_cap,
            Some(&first_fault),
        );
        let addr = Addr::Unix(sock.clone());
        let done2 = Arc::clone(&done);
        let backend2 = backend.clone();
        supervisor = Some(std::thread::spawn(move || {
            let mut child = child;
            let mut kills = 0u32;
            loop {
                let status = child.wait().expect("wait mf-served");
                if done2.load(Ordering::Acquire) {
                    return ChaosReport {
                        kills,
                        final_exit_clean: status.success(),
                    };
                }
                if status.success() {
                    eprintln!("serve_bench: daemon exited cleanly before the drain?");
                    return ChaosReport {
                        kills,
                        final_exit_clean: false,
                    };
                }
                kills += 1;
                let faults = kill_points
                    .get(kills as usize)
                    .map(|k| format!("daemonkill@{k}"));
                child = spawn_served(
                    &sock,
                    &journal,
                    &backend2,
                    level,
                    queue_cap,
                    faults.as_deref(),
                );
            }
        }));
        (None, addr, format!("{backend}+chaos"))
    } else {
        match cli.value("--connect") {
            Some(spec) => {
                let addr = Addr::parse(spec)
                    .unwrap_or_else(|e| cli.usage_exit(&format!("--connect: {e}")));
                (None, addr, "external".to_string())
            }
            None => {
                let opts = EngineOpts {
                    capacity_level: level,
                    ..EngineOpts::default()
                };
                let build: EngineBuilder = match backend.as_str() {
                    "sim" => Box::new(move || Engine::sim(None, Arc::new(PaperFaithful), opts)),
                    "threads" => Box::new(move || {
                        Engine::threads(RunMode::Parallel, Arc::new(PaperFaithful), opts)
                    }),
                    other => cli.usage_exit(&format!(
                        "--backend: unknown backend {other:?} (expected sim or threads)"
                    )),
                };
                let journal = cli
                    .value("--journal")
                    .map(|dir| JournalConfig::new(PathBuf::from(dir)));
                let journaled = journal.is_some();
                let cfg = DaemonConfig {
                    addr: Addr::Tcp("127.0.0.1:0".into()),
                    admission: AdmissionConfig {
                        // Room for every tenant's full window plus retries, so
                        // the steady-state closed loop is rejection-free.
                        queue_cap: inflight * 2,
                        max_weight: 16,
                        capacity_level: level,
                        ..AdmissionConfig::default()
                    },
                    journal,
                    ..DaemonConfig::default()
                };
                let daemon = Daemon::start(cfg, build).expect("embedded daemon");
                let addr = daemon.local_addr().clone();
                let label = if journaled {
                    format!("{backend}+journal")
                } else {
                    backend
                };
                (Some(daemon), addr, label)
            }
        }
    };

    println!(
        "serve_bench — {tenants} tenants × {inflight} inflight × {jobs} jobs \
         (root {root}, level {level}) against {addr} [{backend_label}]"
    );

    let resumable = kill_daemon > 0;
    let t0 = Instant::now();
    let mut joins = Vec::new();
    for t in 0..tenants {
        let addr = addr.clone();
        // Tenant 0 asks for extra fair-share weight: the BENCH table shows
        // weighted interleave, and the fairness tests pin the semantics.
        let weight = if t == 0 { heavy_weight } else { 1 };
        let name = format!("tenant-{t:02}");
        joins.push(std::thread::spawn(move || {
            run_tenant(
                &addr,
                name,
                weight,
                jobs,
                inflight,
                root,
                level,
                tol,
                oracle_checksum,
                oracle_l2,
                resumable,
                seed ^ (t as u64).wrapping_mul(0x9E37_79B9),
            )
        }));
    }
    let mut rows: Vec<TenantOutcome> = Vec::new();
    let mut io_errors = 0usize;
    for j in joins {
        match j.join().expect("tenant thread") {
            Ok(o) => rows.push(o),
            Err(e) => {
                eprintln!("serve_bench: tenant failed: {e}");
                io_errors += 1;
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // Chaos mode: every reply is home — drain the final incarnation and
    // let the supervisor observe its voluntary, clean exit.
    let chaos = supervisor.map(|sup| {
        done.store(true, Ordering::Release);
        let mut backoff = Backoff::with(
            Duration::from_millis(5),
            Duration::from_millis(200),
            seed ^ 0xD12A,
        );
        let mut ctl = loop {
            match TenantClient::connect(&addr, "drain-ctl", 0) {
                Ok(c) => break c,
                Err(_) => std::thread::sleep(backoff.next(None)),
            }
        };
        let _ = ctl.send(&ServeMsg::Drain);
        let _ = ctl.set_read_timeout(Some(Duration::from_secs(60)));
        while let Ok(msg) = ctl.recv() {
            if matches!(msg, ServeMsg::Drained { .. }) {
                break;
            }
        }
        sup.join().expect("supervisor thread")
    });
    if let Some(base) = scratch {
        let _ = std::fs::remove_dir_all(base);
    }

    // External daemons are drained on request (the CI smoke relies on it);
    // the embedded one always drains so its report can be harvested.
    if want_drain && daemon.is_none() && chaos.is_none() {
        match TenantClient::connect(&addr, "drain-ctl", 0) {
            Ok(mut ctl) => {
                let _ = ctl.send(&ServeMsg::Drain);
                let _ = ctl.set_read_timeout(Some(Duration::from_secs(30)));
                while let Ok(msg) = ctl.recv() {
                    if matches!(msg, ServeMsg::Drained { .. }) {
                        break;
                    }
                }
            }
            Err(e) => eprintln!("serve_bench: drain control connection failed: {e}"),
        }
    }
    let peak_in_system = daemon.map(|d| {
        let trig = d.drain_trigger();
        trig.drain();
        let report = d.wait();
        if !report.clean {
            eprintln!("serve_bench: embedded daemon did not drain cleanly");
        }
        report.peak_in_system
    });

    let served: u64 = rows.iter().map(|r| r.served).sum();
    let rejected: u64 = rows.iter().map(|r| r.rejected).sum();
    let drifted: u64 = rows.iter().map(|r| r.drifted).sum();
    let failed: u64 = rows.iter().map(|r| r.failed).sum();
    let duplicates_suppressed: u64 = rows.iter().map(|r| r.duplicates_suppressed).sum();
    let app_duplicates: u64 = rows.iter().map(|r| r.app_duplicates).sum();
    let resumes: u64 = rows.iter().map(|r| r.resumes).sum();
    let expected = tenants as u64 * jobs;
    let lost = expected.saturating_sub(served + failed);
    let mut overall: Vec<f64> = rows.iter().flat_map(|r| r.latencies_ms.clone()).collect();
    overall.sort_by(f64::total_cmp);

    println!();
    println!("| tenant    | weight | served | rejected | failed | p50 ms | p99 ms |");
    println!("|-----------|--------|--------|----------|--------|--------|--------|");
    for r in &rows {
        let mut sorted = r.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        println!(
            "| {:<9} | {:>6} | {:>6} | {:>8} | {:>6} | {:>6.1} | {:>6.1} |",
            r.name,
            r.weight,
            r.served,
            r.rejected,
            r.failed,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99)
        );
    }
    println!();
    println!(
        "{served} served ({:.1} jobs/s), {rejected} rejected, {failed} failed, \
         p50 {:.1} ms, p99 {:.1} ms{}",
        served as f64 / wall_s,
        percentile(&overall, 0.50),
        percentile(&overall, 0.99),
        match peak_in_system {
            Some(p) => format!(", peak {p} jobs in system"),
            None => String::new(),
        }
    );
    if let Some(cr) = &chaos {
        println!(
            "chaos: {} daemon kills survived, {resumes} session resumes, \
             {duplicates_suppressed} replayed replies suppressed, {lost} lost, \
             {app_duplicates} duplicated, final drain clean={}",
            cr.kills, cr.final_exit_clean
        );
    }

    let json = render_json(&JsonInputs {
        backend: &backend_label,
        tenants,
        inflight,
        jobs,
        root,
        level,
        tol,
        wall_s,
        served,
        rejected,
        peak_in_system,
        bit_identical: drifted == 0,
        overall: &overall,
        rows: &rows,
        chaos: chaos.as_ref(),
        lost,
        app_duplicates,
        duplicates_suppressed,
        resumes,
    });
    match cli.value("--json") {
        Some(path) => {
            std::fs::write(path, &json).expect("write --json file");
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }

    let mut bad = false;
    if drifted > 0 {
        eprintln!("serve_bench: {drifted} replies drifted from the sequential oracle");
        bad = true;
    }
    if io_errors > 0 {
        eprintln!("serve_bench: {io_errors} tenant connections failed");
        bad = true;
    }
    if cli.flag("--assert-zero-rejections") && rejected > 0 {
        eprintln!("serve_bench: --assert-zero-rejections violated ({rejected} rejections)");
        bad = true;
    }
    if let Some(min_peak) = cli.parsed_opt::<usize>("--assert-min-peak") {
        let peak = peak_in_system.unwrap_or(0);
        if peak < min_peak {
            eprintln!(
                "serve_bench: --assert-min-peak {min_peak} violated (peak {peak} — the \
                 daemon never held that many jobs at once)"
            );
            bad = true;
        }
    }
    if cli.flag("--assert-lossless") {
        if lost > 0 {
            eprintln!("serve_bench: --assert-lossless violated ({lost} jobs never resolved)");
            bad = true;
        }
        if app_duplicates > 0 {
            eprintln!(
                "serve_bench: --assert-lossless violated ({app_duplicates} duplicate \
                 resolutions — exactly-once broken)"
            );
            bad = true;
        }
        if drifted > 0 || failed > 0 {
            eprintln!(
                "serve_bench: --assert-lossless violated ({drifted} drifted, {failed} failed)"
            );
            bad = true;
        }
    }
    if let Some(cr) = &chaos {
        if cr.kills != kill_daemon {
            eprintln!(
                "serve_bench: expected {kill_daemon} induced crashes, observed {}",
                cr.kills
            );
            bad = true;
        }
        if !cr.final_exit_clean {
            eprintln!("serve_bench: final daemon incarnation did not drain cleanly");
            bad = true;
        }
    }
    if served + failed != expected && io_errors == 0 && chaos.is_none() {
        eprintln!(
            "serve_bench: accounting hole — {} resolved of {expected} expected",
            served + failed
        );
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
}

struct JsonInputs<'a> {
    backend: &'a str,
    tenants: usize,
    inflight: usize,
    jobs: u64,
    root: u32,
    level: u32,
    tol: f64,
    wall_s: f64,
    served: u64,
    rejected: u64,
    peak_in_system: Option<usize>,
    bit_identical: bool,
    overall: &'a [f64],
    rows: &'a [TenantOutcome],
    chaos: Option<&'a ChaosReport>,
    lost: u64,
    app_duplicates: u64,
    duplicates_suppressed: u64,
    resumes: u64,
}

fn render_json(ji: &JsonInputs) -> String {
    let offered = ji.served + ji.rejected;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve_bench\",\n");
    out.push_str(&format!("  \"backend\": \"{}\",\n", ji.backend));
    out.push_str(&format!("  \"tenants\": {},\n", ji.tenants));
    out.push_str(&format!("  \"inflight_per_tenant\": {},\n", ji.inflight));
    out.push_str(&format!("  \"jobs_per_tenant\": {},\n", ji.jobs));
    out.push_str(&format!(
        "  \"problem\": {{ \"root\": {}, \"level\": {}, \"tol\": {:e} }},\n",
        ji.root, ji.level, ji.tol
    ));
    out.push_str(&format!("  \"wall_s\": {:.3},\n", ji.wall_s));
    out.push_str(&format!(
        "  \"throughput_jobs_per_s\": {:.1},\n",
        ji.served as f64 / ji.wall_s
    ));
    out.push_str(&format!("  \"served\": {},\n", ji.served));
    out.push_str(&format!("  \"rejected\": {},\n", ji.rejected));
    out.push_str(&format!(
        "  \"rejection_rate\": {:.4},\n",
        if offered == 0 {
            0.0
        } else {
            ji.rejected as f64 / offered as f64
        }
    ));
    match ji.peak_in_system {
        Some(p) => out.push_str(&format!("  \"peak_in_system\": {p},\n")),
        None => out.push_str("  \"peak_in_system\": null,\n"),
    }
    out.push_str(&format!("  \"bit_identical\": {},\n", ji.bit_identical));
    if let Some(cr) = ji.chaos {
        out.push_str("  \"durability\": {\n");
        out.push_str(&format!("    \"daemon_kills\": {},\n", cr.kills));
        out.push_str(&format!("    \"session_resumes\": {},\n", ji.resumes));
        out.push_str(&format!("    \"lost\": {},\n", ji.lost));
        out.push_str(&format!("    \"app_duplicates\": {},\n", ji.app_duplicates));
        out.push_str(&format!(
            "    \"replayed_suppressed\": {},\n",
            ji.duplicates_suppressed
        ));
        out.push_str(&format!(
            "    \"final_drain_clean\": {}\n",
            cr.final_exit_clean
        ));
        out.push_str("  },\n");
    }
    out.push_str(&format!(
        "  \"latency_ms\": {{ \"p50\": {:.2}, \"p99\": {:.2} }},\n",
        percentile(ji.overall, 0.50),
        percentile(ji.overall, 0.99)
    ));
    out.push_str("  \"per_tenant\": [\n");
    for (i, r) in ji.rows.iter().enumerate() {
        let mut sorted = r.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        out.push_str(&format!(
            "    {{ \"tenant\": \"{}\", \"weight\": {}, \"served\": {}, \"rejected\": {}, \
             \"failed\": {}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2} }}{}\n",
            r.name,
            r.weight,
            r.served,
            r.rejected,
            r.failed,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
            if i + 1 < ji.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
