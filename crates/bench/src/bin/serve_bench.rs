//! Closed-loop load generator for the `serve` layer: N tenants × M
//! pipelined jobs over one `mf-served` daemon (embedded or external).
//!
//! ```text
//! cargo run -p bench --release --bin serve_bench -- \
//!     [--tenants N] [--inflight N] [--jobs N] [--root N] [--level N]
//!     [--backend sim|threads] [--heavy-weight W] [--connect ADDR]
//!     [--drain] [--assert-zero-rejections] [--assert-min-peak N]
//!     [--json PATH]
//! ```
//!
//! Each tenant owns one connection and keeps `--inflight` submits open:
//! every `Done` immediately funds the next `Submit`, so the offered load
//! tracks the daemon's service rate instead of overrunning it — except at
//! start-up, where all tenants burst their full windows at once and the
//! admission layer's queues (and its `peak_in_system` high-water mark)
//! absorb tenants × inflight concurrent jobs.
//!
//! Every reply is checked against the sequential oracle of the same
//! (root, level, tol): the served `combined` field must be
//! **bit-identical** (FNV-1a over the f64 bit patterns, plus the exact
//! `l2_error`). Any drift fails the run. `Reject` replies are counted,
//! backed off by the daemon's retry-after hint, and resubmitted — the
//! rejection *rate* is part of the report, not an error.
//!
//! Without `--connect` the bench embeds a daemon on a loopback socket and
//! reports its admission-layer statistics (peak in-system concurrency,
//! per-tenant fair-share rows) alongside the client-side latency
//! histograms; `--json` writes the whole thing as `BENCH_serve.json`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::cli::Cli;
use protocol::PaperFaithful;
use renovation::{Engine, EngineOpts, RunMode};
use serve::daemon::{Daemon, DaemonConfig, EngineBuilder};
use serve::proto::field_checksum;
use serve::{AdmissionConfig, ServeMsg, TenantClient};
use solver::sequential::SequentialApp;
use transport::Addr;

const USAGE: &str = "[--tenants N] [--inflight N] [--jobs N] [--root N] [--level N] \
     [--backend sim|threads] [--heavy-weight W] [--connect ADDR] [--drain] \
     [--assert-zero-rejections] [--assert-min-peak N] [--json PATH]";

/// One tenant thread's view of its own run.
struct TenantOutcome {
    name: String,
    weight: u32,
    served: u64,
    rejected: u64,
    failed: u64,
    drifted: u64,
    latencies_ms: Vec<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Drive one tenant's closed loop: keep `inflight` submits open until
/// `jobs` of them have resolved (served or finally failed).
#[allow(clippy::too_many_arguments)]
fn run_tenant(
    addr: &Addr,
    name: String,
    weight: u32,
    jobs: u64,
    inflight: usize,
    root: u32,
    level: u32,
    tol: f64,
    oracle_checksum: u64,
    oracle_l2: f64,
) -> std::io::Result<TenantOutcome> {
    let mut c = TenantClient::connect(addr, &name, weight)?;
    c.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut out = TenantOutcome {
        name,
        weight,
        served: 0,
        rejected: 0,
        failed: 0,
        drifted: 0,
        latencies_ms: Vec::with_capacity(jobs as usize),
    };
    let mut open: HashMap<u64, Instant> = HashMap::new();
    let mut next_seq = 0u64;
    let mut submitted = 0u64;
    while out.served + out.failed < jobs {
        while open.len() < inflight && submitted < jobs {
            next_seq += 1;
            submitted += 1;
            c.submit(next_seq, root, level, tol)?;
            open.insert(next_seq, Instant::now());
        }
        match c.recv()? {
            ServeMsg::Done {
                seq,
                l2_error,
                combined,
                ..
            } => {
                if let Some(t0) = open.remove(&seq) {
                    out.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                out.served += 1;
                if field_checksum(&combined) != oracle_checksum || l2_error != oracle_l2 {
                    out.drifted += 1;
                }
            }
            ServeMsg::Reject {
                seq,
                retry_after_ms,
                ..
            } => {
                out.rejected += 1;
                open.remove(&seq);
                // Honour the backpressure hint, then re-fund the slot.
                submitted -= 1;
                std::thread::sleep(Duration::from_millis(retry_after_ms.min(100)));
            }
            ServeMsg::Fail { seq, .. } => {
                open.remove(&seq);
                out.failed += 1;
            }
            // The daemon is going down mid-run; stop cleanly.
            ServeMsg::Drained { .. } => break,
            _ => {}
        }
    }
    c.bye()?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    backend: &str,
    tenants: usize,
    inflight: usize,
    jobs: u64,
    root: u32,
    level: u32,
    tol: f64,
    wall_s: f64,
    served: u64,
    rejected: u64,
    peak_in_system: Option<usize>,
    bit_identical: bool,
    overall: &[f64],
    rows: &[TenantOutcome],
) -> String {
    let offered = served + rejected;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve_bench\",\n");
    out.push_str(&format!("  \"backend\": \"{backend}\",\n"));
    out.push_str(&format!("  \"tenants\": {tenants},\n"));
    out.push_str(&format!("  \"inflight_per_tenant\": {inflight},\n"));
    out.push_str(&format!("  \"jobs_per_tenant\": {jobs},\n"));
    out.push_str(&format!(
        "  \"problem\": {{ \"root\": {root}, \"level\": {level}, \"tol\": {tol:e} }},\n"
    ));
    out.push_str(&format!("  \"wall_s\": {wall_s:.3},\n"));
    out.push_str(&format!(
        "  \"throughput_jobs_per_s\": {:.1},\n",
        served as f64 / wall_s
    ));
    out.push_str(&format!("  \"served\": {served},\n"));
    out.push_str(&format!("  \"rejected\": {rejected},\n"));
    out.push_str(&format!(
        "  \"rejection_rate\": {:.4},\n",
        if offered == 0 {
            0.0
        } else {
            rejected as f64 / offered as f64
        }
    ));
    match peak_in_system {
        Some(p) => out.push_str(&format!("  \"peak_in_system\": {p},\n")),
        None => out.push_str("  \"peak_in_system\": null,\n"),
    }
    out.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    out.push_str(&format!(
        "  \"latency_ms\": {{ \"p50\": {:.2}, \"p99\": {:.2} }},\n",
        percentile(overall, 0.50),
        percentile(overall, 0.99)
    ));
    out.push_str("  \"per_tenant\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let mut sorted = r.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        out.push_str(&format!(
            "    {{ \"tenant\": \"{}\", \"weight\": {}, \"served\": {}, \"rejected\": {}, \
             \"failed\": {}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2} }}{}\n",
            r.name,
            r.weight,
            r.served,
            r.rejected,
            r.failed,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let cli = Cli::parse("serve_bench", USAGE);
    let tenants = cli.tenants(16);
    let inflight = cli.inflight(80);
    let jobs = cli.parsed("--jobs", 128u64).max(1);
    let root = cli.parsed("--root", 1u32);
    let level = cli.parsed("--level", 2u32);
    let tol = cli.parsed("--tol", 1e-3f64);
    let heavy_weight = cli.parsed("--heavy-weight", 4u32);
    let backend = cli.value("--backend").unwrap_or("sim").to_string();
    let want_drain = cli.flag("--drain");

    let oracle = SequentialApp::new(root, level, tol)
        .run()
        .expect("sequential oracle");
    let oracle_checksum = field_checksum(&oracle.combined);
    let oracle_l2 = oracle.l2_error;

    // Embedded daemon unless --connect points at an external one.
    let (daemon, addr, backend_label) = match cli.value("--connect") {
        Some(spec) => {
            let addr =
                Addr::parse(spec).unwrap_or_else(|e| cli.usage_exit(&format!("--connect: {e}")));
            (None, addr, "external".to_string())
        }
        None => {
            let opts = EngineOpts {
                capacity_level: level,
                ..EngineOpts::default()
            };
            let build: EngineBuilder = match backend.as_str() {
                "sim" => Box::new(move || Engine::sim(None, Arc::new(PaperFaithful), opts)),
                "threads" => Box::new(move || {
                    Engine::threads(RunMode::Parallel, Arc::new(PaperFaithful), opts)
                }),
                other => cli.usage_exit(&format!(
                    "--backend: unknown backend {other:?} (expected sim or threads)"
                )),
            };
            let cfg = DaemonConfig {
                addr: Addr::Tcp("127.0.0.1:0".into()),
                admission: AdmissionConfig {
                    // Room for every tenant's full window plus retries, so
                    // the steady-state closed loop is rejection-free.
                    queue_cap: inflight * 2,
                    max_weight: 16,
                    capacity_level: level,
                    ..AdmissionConfig::default()
                },
                ..DaemonConfig::default()
            };
            let daemon = Daemon::start(cfg, build).expect("embedded daemon");
            let addr = daemon.local_addr().clone();
            (Some(daemon), addr, backend)
        }
    };

    println!(
        "serve_bench — {tenants} tenants × {inflight} inflight × {jobs} jobs \
         (root {root}, level {level}) against {addr} [{backend_label}]"
    );

    let t0 = Instant::now();
    let mut joins = Vec::new();
    for t in 0..tenants {
        let addr = addr.clone();
        // Tenant 0 asks for extra fair-share weight: the BENCH table shows
        // weighted interleave, and the fairness tests pin the semantics.
        let weight = if t == 0 { heavy_weight } else { 1 };
        let name = format!("tenant-{t:02}");
        joins.push(std::thread::spawn(move || {
            run_tenant(
                &addr,
                name,
                weight,
                jobs,
                inflight,
                root,
                level,
                tol,
                oracle_checksum,
                oracle_l2,
            )
        }));
    }
    let mut rows: Vec<TenantOutcome> = Vec::new();
    let mut io_errors = 0usize;
    for j in joins {
        match j.join().expect("tenant thread") {
            Ok(o) => rows.push(o),
            Err(e) => {
                eprintln!("serve_bench: tenant failed: {e}");
                io_errors += 1;
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // External daemons are drained on request (the CI smoke relies on it);
    // the embedded one always drains so its report can be harvested.
    if want_drain && daemon.is_none() {
        match TenantClient::connect(&addr, "drain-ctl", 0) {
            Ok(mut ctl) => {
                let _ = ctl.send(&ServeMsg::Drain);
                let _ = ctl.set_read_timeout(Some(Duration::from_secs(30)));
                while let Ok(msg) = ctl.recv() {
                    if matches!(msg, ServeMsg::Drained { .. }) {
                        break;
                    }
                }
            }
            Err(e) => eprintln!("serve_bench: drain control connection failed: {e}"),
        }
    }
    let peak_in_system = daemon.map(|d| {
        let trig = d.drain_trigger();
        trig.drain();
        let report = d.wait();
        if !report.clean {
            eprintln!("serve_bench: embedded daemon did not drain cleanly");
        }
        report.peak_in_system
    });

    let served: u64 = rows.iter().map(|r| r.served).sum();
    let rejected: u64 = rows.iter().map(|r| r.rejected).sum();
    let drifted: u64 = rows.iter().map(|r| r.drifted).sum();
    let failed: u64 = rows.iter().map(|r| r.failed).sum();
    let mut overall: Vec<f64> = rows.iter().flat_map(|r| r.latencies_ms.clone()).collect();
    overall.sort_by(f64::total_cmp);

    println!();
    println!("| tenant    | weight | served | rejected | failed | p50 ms | p99 ms |");
    println!("|-----------|--------|--------|----------|--------|--------|--------|");
    for r in &rows {
        let mut sorted = r.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        println!(
            "| {:<9} | {:>6} | {:>6} | {:>8} | {:>6} | {:>6.1} | {:>6.1} |",
            r.name,
            r.weight,
            r.served,
            r.rejected,
            r.failed,
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99)
        );
    }
    println!();
    println!(
        "{served} served ({:.1} jobs/s), {rejected} rejected, {failed} failed, \
         p50 {:.1} ms, p99 {:.1} ms{}",
        served as f64 / wall_s,
        percentile(&overall, 0.50),
        percentile(&overall, 0.99),
        match peak_in_system {
            Some(p) => format!(", peak {p} jobs in system"),
            None => String::new(),
        }
    );

    let json = render_json(
        &backend_label,
        tenants,
        inflight,
        jobs,
        root,
        level,
        tol,
        wall_s,
        served,
        rejected,
        peak_in_system,
        drifted == 0,
        &overall,
        &rows,
    );
    match cli.value("--json") {
        Some(path) => {
            std::fs::write(path, &json).expect("write --json file");
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }

    let mut bad = false;
    if drifted > 0 {
        eprintln!("serve_bench: {drifted} replies drifted from the sequential oracle");
        bad = true;
    }
    if io_errors > 0 {
        eprintln!("serve_bench: {io_errors} tenant connections failed");
        bad = true;
    }
    if cli.flag("--assert-zero-rejections") && rejected > 0 {
        eprintln!("serve_bench: --assert-zero-rejections violated ({rejected} rejections)");
        bad = true;
    }
    if let Some(min_peak) = cli.parsed_opt::<usize>("--assert-min-peak") {
        let peak = peak_in_system.unwrap_or(0);
        if peak < min_peak {
            eprintln!(
                "serve_bench: --assert-min-peak {min_peak} violated (peak {peak} — the \
                 daemon never held that many jobs at once)"
            );
            bad = true;
        }
    }
    if served + failed != tenants as u64 * jobs && io_errors == 0 {
        eprintln!(
            "serve_bench: accounting hole — {} resolved of {} expected",
            served + failed,
            tenants as u64 * jobs
        );
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
}
