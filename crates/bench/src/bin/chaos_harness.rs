//! The chaos harness: many seeded fault schedules against the live
//! backends, the supervisor, and the simulator — each under a hard
//! deadlock watchdog.
//!
//! The invariant it asserts is the renovation's robustness claim in one
//! sentence: **when the budgets suffice, a faulted run is bit-identical to
//! an undisturbed one; when they do not, it fails with a diagnosis in
//! bounded time; it never hangs.**
//!
//! Usage:
//! ```text
//! cargo run -p bench --release --bin chaos_harness \
//!     [-- --seeds N] [--level L] [--instances W] [--json]
//! ```
//!
//! Scenarios, per seed `1..=N`:
//! * `threads:worker-faults` — a generated schedule (crashes, stalls)
//!   against the in-process backend;
//! * `procs:worker-faults` — the same schedule class against real worker
//!   OS processes over the transport (kills, connection drops, corrupted
//!   frames, stalls);
//! * `threads:master-kill` — a master death mid-run, recovered by the
//!   supervisor from the last checkpoint;
//! * `sim:worker-faults` — the schedule composed with the multi-user
//!   noise model in the virtual-time simulator, run twice to witness
//!   per-seed determinism.
//!
//! Plus two budget-exhaustion scenarios (procs and sim) that must end in a
//! clean diagnosed error. Every scenario runs under a [`chaos::Watchdog`]:
//! a hang aborts the whole process, so a finished harness *is* the proof
//! of `watchdog_timeouts: 0`. `--json` prints only the machine-readable
//! block (the committed `BENCH_chaos.json` is this output).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::live::{field_checksum, run_live_with, Backend, LiveOpts};
use chaos::{FaultKind, FaultPlan, Watchdog};
use cluster::hosts::paper_cluster;
use cluster::noise::Perturbation;
use cluster::sim::DistributedSim;
use protocol::PaperFaithful;
use renovation::cost::CostModel;
use renovation::{run_concurrent_opts, supervise, RunMode, RunOpts};
use solver::sequential::SequentialApp;

/// One scenario's verdict, serialized into `BENCH_chaos.json`.
struct Verdict {
    name: &'static str,
    seed: u64,
    /// `bit-identical`, `diagnosed-failure`, or a failure description.
    outcome: String,
    ok: bool,
    losses: usize,
    redispatches: usize,
    relaunches: usize,
    wall_s: f64,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mf-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const SCENARIO_TIMEOUT: Duration = Duration::from_secs(120);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let seeds: u64 = arg("--seeds").and_then(|v| v.parse().ok()).unwrap_or(3);
    let level: u32 = arg("--level").and_then(|v| v.parse().ok()).unwrap_or(2);
    let instances: usize = arg("--instances").and_then(|v| v.parse().ok()).unwrap_or(2);
    let json_only = args.iter().any(|a| a == "--json");

    let app = SequentialApp::new(2, level, 1.0e-3);
    let jobs = (2 * level + 1) as u64;
    let seq = app.run().expect("sequential reference");
    let reference = field_checksum(&seq.combined);
    let mut verdicts: Vec<Verdict> = Vec::new();

    // --- Per-seed sufficiency scenarios: faulted == undisturbed, bit for
    // bit. ---
    for seed in 1..=seeds {
        let plan = FaultPlan::from_seed(seed, instances as u64, jobs);

        for (name, backend) in [
            ("threads:worker-faults", Backend::Threads),
            ("procs:worker-faults", Backend::Procs),
        ] {
            let dog = Watchdog::arm(&format!("{name} seed {seed}"), SCENARIO_TIMEOUT);
            let t0 = Instant::now();
            let opts = LiveOpts {
                faults: Some(plan.clone()),
                retry_budget: Some(16),
                ..LiveOpts::default()
            };
            let v = match run_live_with(backend, &app, Arc::new(PaperFaithful), instances, &opts) {
                Ok(r) if r.checksum == reference => Verdict {
                    name,
                    seed,
                    outcome: "bit-identical".into(),
                    ok: true,
                    losses: r.losses,
                    redispatches: 0,
                    relaunches: 0,
                    wall_s: t0.elapsed().as_secs_f64(),
                },
                Ok(r) => Verdict {
                    name,
                    seed,
                    outcome: format!("CHECKSUM MISMATCH: {:016x} != {reference:016x}", r.checksum),
                    ok: false,
                    losses: r.losses,
                    redispatches: 0,
                    relaunches: 0,
                    wall_s: t0.elapsed().as_secs_f64(),
                },
                Err(e) => Verdict {
                    name,
                    seed,
                    outcome: format!("UNEXPECTED FAILURE: {e}"),
                    ok: false,
                    losses: 0,
                    redispatches: 0,
                    relaunches: 0,
                    wall_s: t0.elapsed().as_secs_f64(),
                },
            };
            dog.disarm();
            verdicts.push(v);
        }

        // Master death mid-run, recovered by the supervisor from the last
        // checkpoint.
        {
            let dog = Watchdog::arm(
                &format!("threads:master-kill seed {seed}"),
                SCENARIO_TIMEOUT,
            );
            let t0 = Instant::now();
            let dir = tmp_dir(&format!("kill-{seed}"));
            // Kill after a seed-dependent number of collected results (at
            // least one, so the checkpoint is non-trivial).
            let kill_at = 1 + seed % jobs.max(2);
            let plan = FaultPlan::new(seed).push(FaultKind::MasterKill { at_result: kill_at });
            let opts = RunOpts {
                faults: Some(plan),
                checkpoint_dir: Some(dir.clone()),
                ..RunOpts::default()
            };
            let launch_app = app;
            let sup = supervise(2, move |resume| {
                let mut opts = opts.clone();
                opts.resume = resume;
                run_concurrent_opts(
                    &launch_app,
                    &RunMode::Parallel,
                    true,
                    Arc::new(PaperFaithful),
                    &opts,
                )
            });
            let v = match sup {
                Ok(s) if field_checksum(&s.result.result.combined) == reference => Verdict {
                    name: "threads:master-kill",
                    seed,
                    outcome: "bit-identical".into(),
                    ok: s.relaunches == 1,
                    losses: 0,
                    redispatches: 0,
                    relaunches: s.relaunches,
                    wall_s: t0.elapsed().as_secs_f64(),
                },
                Ok(s) => Verdict {
                    name: "threads:master-kill",
                    seed,
                    outcome: "CHECKSUM MISMATCH after relaunch".into(),
                    ok: false,
                    losses: 0,
                    redispatches: 0,
                    relaunches: s.relaunches,
                    wall_s: t0.elapsed().as_secs_f64(),
                },
                Err(e) => Verdict {
                    name: "threads:master-kill",
                    seed,
                    outcome: format!("UNEXPECTED FAILURE: {e}"),
                    ok: false,
                    losses: 0,
                    redispatches: 0,
                    relaunches: 0,
                    wall_s: t0.elapsed().as_secs_f64(),
                },
            };
            let _ = std::fs::remove_dir_all(&dir);
            dog.disarm();
            verdicts.push(v);
        }

        // The same schedule class composed with multi-user noise in the
        // virtual-time simulator — run twice: per-seed determinism.
        {
            let dog = Watchdog::arm(&format!("sim:worker-faults seed {seed}"), SCENARIO_TIMEOUT);
            let t0 = Instant::now();
            let model = CostModel::paper_calibrated();
            let wl = model.workload(2, 13, 1.0e-3, true);
            let sim = DistributedSim::new(paper_cluster(model.ref_flops_per_sec));
            let plan = FaultPlan::from_seed(seed, 4, 27);
            let run = |s: u64| {
                sim.run_with_faults(
                    &wl,
                    &mut Perturbation::overnight(s),
                    &PaperFaithful,
                    &plan,
                    16,
                )
            };
            let (a, b) = (run(seed), run(seed));
            let v = match (a, b) {
                (Ok(a), Ok(b)) if a.elapsed == b.elapsed && a.redispatches == b.redispatches => {
                    Verdict {
                        name: "sim:worker-faults",
                        seed,
                        outcome: "deterministic".into(),
                        ok: true,
                        losses: 0,
                        redispatches: a.redispatches,
                        relaunches: 0,
                        wall_s: t0.elapsed().as_secs_f64(),
                    }
                }
                (a, b) => Verdict {
                    name: "sim:worker-faults",
                    seed,
                    outcome: format!(
                        "NONDETERMINISTIC: {:?} vs {:?}",
                        a.map(|r| r.elapsed),
                        b.map(|r| r.elapsed)
                    ),
                    ok: false,
                    losses: 0,
                    redispatches: 0,
                    relaunches: 0,
                    wall_s: t0.elapsed().as_secs_f64(),
                },
            };
            dog.disarm();
            verdicts.push(v);
        }
    }

    // --- Insufficiency scenarios: budgets too small must end in a clean
    // diagnosed error, in bounded time. ---
    {
        let dog = Watchdog::arm("procs:budget-exhausted", SCENARIO_TIMEOUT);
        let t0 = Instant::now();
        // The only instance dies on its first job, every incarnation: no
        // progress is possible.
        let plan = FaultPlan::new(1).push(FaultKind::WorkerCrash {
            instance: 0,
            on_job: 1,
        });
        let opts = LiveOpts {
            faults: Some(plan),
            retry_budget: Some(2),
            ..LiveOpts::default()
        };
        let v = match run_live_with(Backend::Procs, &app, Arc::new(PaperFaithful), 1, &opts) {
            Err(e) => Verdict {
                name: "procs:budget-exhausted",
                seed: 0,
                outcome: format!("diagnosed-failure: {e}"),
                ok: true,
                losses: 0,
                redispatches: 0,
                relaunches: 0,
                wall_s: t0.elapsed().as_secs_f64(),
            },
            Ok(_) => Verdict {
                name: "procs:budget-exhausted",
                seed: 0,
                outcome: "UNEXPECTED SUCCESS with an impossible budget".into(),
                ok: false,
                losses: 0,
                redispatches: 0,
                relaunches: 0,
                wall_s: t0.elapsed().as_secs_f64(),
            },
        };
        dog.disarm();
        verdicts.push(v);
    }
    {
        let dog = Watchdog::arm("sim:budget-exhausted", SCENARIO_TIMEOUT);
        let t0 = Instant::now();
        let model = CostModel::paper_calibrated();
        let wl = model.workload(2, 13, 1.0e-3, true);
        let sim = DistributedSim::new(paper_cluster(model.ref_flops_per_sec));
        let plan = FaultPlan::new(2)
            .push(FaultKind::WorkerCrash {
                instance: 0,
                on_job: 2,
            })
            .push(FaultKind::ConnDrop {
                instance: 1,
                on_job: 3,
            });
        let v = match sim.run_with_faults(&wl, &mut Perturbation::none(), &PaperFaithful, &plan, 1)
        {
            Err(e) => Verdict {
                name: "sim:budget-exhausted",
                seed: 0,
                outcome: format!("diagnosed-failure: {e}"),
                ok: true,
                losses: 0,
                redispatches: 0,
                relaunches: 0,
                wall_s: t0.elapsed().as_secs_f64(),
            },
            Ok(_) => Verdict {
                name: "sim:budget-exhausted",
                seed: 0,
                outcome: "UNEXPECTED SUCCESS with an impossible budget".into(),
                ok: false,
                losses: 0,
                redispatches: 0,
                relaunches: 0,
                wall_s: t0.elapsed().as_secs_f64(),
            },
        };
        dog.disarm();
        verdicts.push(v);
    }

    let all_ok = verdicts.iter().all(|v| v.ok);

    if !json_only {
        println!(
            "chaos harness — level {level}, {instances} instances, seeds 1..={seeds} \
             (reference checksum {reference:016x})"
        );
        println!();
        println!("| scenario                | seed | ok  | lost | redisp | relaunch |  wall s | outcome |");
        println!("|-------------------------|------|-----|------|--------|----------|---------|---------|");
        for v in &verdicts {
            println!(
                "| {:<23} | {:>4} | {:<3} | {:>4} | {:>6} | {:>8} | {:>7.3} | {} |",
                v.name,
                v.seed,
                if v.ok { "yes" } else { "NO" },
                v.losses,
                v.redispatches,
                v.relaunches,
                v.wall_s,
                v.outcome
            );
        }
        println!();
    }

    // The machine-readable block (BENCH_chaos.json).
    println!("{{");
    println!("  \"schema\": \"chaos-harness/v1\",");
    println!("  \"level\": {level},");
    println!("  \"instances\": {instances},");
    println!("  \"seeds\": {seeds},");
    println!("  \"reference_checksum\": \"{reference:016x}\",");
    println!("  \"watchdog_timeouts\": 0,");
    println!("  \"all_ok\": {all_ok},");
    println!("  \"scenarios\": [");
    for (i, v) in verdicts.iter().enumerate() {
        println!(
            "    {{\"name\": \"{}\", \"seed\": {}, \"ok\": {}, \"losses\": {}, \
             \"redispatches\": {}, \"relaunches\": {}, \"wall_s\": {:.3}, \
             \"outcome\": \"{}\"}}{}",
            v.name,
            v.seed,
            v.ok,
            v.losses,
            v.redispatches,
            v.relaunches,
            v.wall_s,
            json_escape(&v.outcome),
            if i + 1 < verdicts.len() { "," } else { "" }
        );
    }
    println!("  ]");
    println!("}}");

    if !all_ok {
        std::process::exit(1);
    }
}
