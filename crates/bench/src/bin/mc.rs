//! `mc` — the MANIFOLD compiler front-end as a CLI (the paper's `Mc`).
//!
//! Parses a `.m` source file, runs the structural checks, and prints a
//! summary plus (optionally) the pretty-printed normal form. With no file
//! argument it processes the built-in fixtures: the paper's `protocolMW.m`
//! and `mainprog.m`.
//!
//! ```text
//! cargo run -p bench --release --bin mc [-- <file.m>] [--print]
//! ```

use manifold::lang::{check_program, parse_program, print_program};

fn process(name: &str, source: &str, print: bool) {
    println!("== {name}");
    let program = match parse_program(source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("   parse error: {e}");
            std::process::exit(1);
        }
    };
    match check_program(&program) {
        Ok(summary) => {
            println!("   manners:   {:?}", summary.manners);
            println!("   manifolds: {:?}", summary.manifolds);
            println!(
                "   events:    {:?}",
                summary.events.iter().collect::<Vec<_>>()
            );
            println!(
                "   streams:   {:?}   states: {}",
                summary.stream_types.iter().collect::<Vec<_>>(),
                summary.state_count
            );
            if !program.includes.is_empty() {
                println!("   includes:  {:?}", program.includes);
            }
        }
        Err(e) => {
            eprintln!("   check error: {e}");
            std::process::exit(1);
        }
    }
    if print {
        println!("---- normal form ----");
        println!("{}", print_program(&program));
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let print = args.iter().any(|a| a == "--print");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        process(
            "protocolMW.m (paper §4.2)",
            manifold::lang::PROTOCOL_MW_SOURCE,
            print,
        );
        process(
            "mainprog.m (paper §5)",
            manifold::lang::MAINPROG_SOURCE,
            print,
        );
    } else {
        for f in files {
            let source =
                std::fs::read_to_string(f).unwrap_or_else(|e| panic!("cannot read {f}: {e}"));
            process(f, &source, print);
        }
    }
}
