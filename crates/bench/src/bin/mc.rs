//! `mc` — the MANIFOLD compiler front-end as a CLI (the paper's `Mc`).
//!
//! Parses a `.m` source file, runs the structural checks, and prints a
//! summary plus (optionally) the pretty-printed normal form and/or the
//! compiled state-machine IR. With no file argument it processes the
//! built-in fixtures: the paper's `protocolMW.m` and `mainprog.m`.
//!
//! ```text
//! cargo run -p bench --release --bin mc [-- <file.m>] [--print] [--ir]
//! ```

use manifold::lang::{check_program, compile, parse_program, print_program};

fn process(name: &str, source: &str, print: bool, ir: bool) {
    println!("== {name}");
    let program = match parse_program(source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("   parse error: {e}");
            std::process::exit(1);
        }
    };
    match check_program(&program) {
        Ok(summary) => {
            println!("   manners:   {:?}", summary.manners);
            println!("   manifolds: {:?}", summary.manifolds);
            println!(
                "   events:    {:?}",
                summary.events.iter().collect::<Vec<_>>()
            );
            println!(
                "   streams:   {:?}   states: {}",
                summary.stream_types.iter().collect::<Vec<_>>(),
                summary.state_count
            );
            if !program.includes.is_empty() {
                println!("   includes:  {:?}", program.includes);
            }
        }
        Err(e) => {
            eprintln!("   check error: {e}");
            std::process::exit(1);
        }
    }
    if print {
        println!("---- normal form ----");
        println!("{}", print_program(&program));
    }
    if ir {
        match compile(&program) {
            Ok(compiled) => {
                println!("---- compiled IR ----");
                println!("{}", compiled.disassemble());
            }
            Err(e) => {
                eprintln!("   compile error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let print = args.iter().any(|a| a == "--print");
    let ir = args.iter().any(|a| a == "--ir");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        process(
            "protocolMW.m (paper §4.2)",
            manifold::lang::PROTOCOL_MW_SOURCE,
            print,
            ir,
        );
        process(
            "mainprog.m (paper §5)",
            manifold::lang::MAINPROG_SOURCE,
            print,
            ir,
        );
    } else {
        for f in files {
            let source =
                std::fs::read_to_string(f).unwrap_or_else(|e| panic!("cannot read {f}: {e}"));
            process(f, &source, print, ir);
        }
    }
}
