//! Transport microbenchmark: loopback round-trip latency, bulk bandwidth,
//! codec throughput, and an in-process memory-copy baseline — the measured
//! numbers that calibrate the simulator's [`NetworkModel`] for a
//! modern localhost deployment (vs. the paper's hard-coded 100 Mbps
//! switched Ethernet).
//!
//! ```text
//! cargo run -p bench --release --bin transport_bench [-- --json]
//! ```
//!
//! `--json` prints only the machine-readable block (the committed
//! `BENCH_transport.json` is this output).
//!
//! [`NetworkModel`]: cluster::network::NetworkModel

use std::net::TcpListener;
use std::time::{Duration, Instant};

use cluster::network::NetworkModel;
use manifold::unit::Unit;
use transport::{decode_unit, encode_unit_vec, Addr, Conn, Message};

/// Round-trip `payload` through the echo server `iters` times; returns
/// (mean seconds per round trip, framed message bytes on the wire).
fn round_trips(conn: &mut Conn, payload: &Unit, warmup: usize, iters: usize) -> (f64, usize) {
    let bytes = Message::Job {
        seq: 0,
        job: 0,
        payload: payload.clone(),
    }
    .encode()
    .unwrap()
    .len()
        + transport::HEADER_LEN;
    for seq in 0..warmup as u64 {
        conn.send_msg(&Message::Job {
            seq,
            job: 0,
            payload: payload.clone(),
        })
        .unwrap();
        conn.recv_msg().unwrap().expect("echo closed during warmup");
    }
    let t0 = Instant::now();
    for seq in 0..iters as u64 {
        conn.send_msg(&Message::Job {
            seq,
            job: 0,
            payload: payload.clone(),
        })
        .unwrap();
        conn.recv_msg().unwrap().expect("echo closed mid-run");
    }
    (t0.elapsed().as_secs_f64() / iters as f64, bytes)
}

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");

    // Echo server: every Job comes straight back as Done.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = Addr::Tcp(format!(
        "127.0.0.1:{}",
        listener.local_addr().unwrap().port()
    ));
    let server = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        sock.set_nodelay(true).unwrap();
        let mut conn = Conn::Tcp(sock);
        while let Ok(Some(msg)) = conn.recv_msg() {
            match msg {
                Message::Job { seq, job, payload } => {
                    conn.send_msg(&Message::Done { seq, job, payload }).unwrap()
                }
                Message::Shutdown => break,
                _ => {}
            }
        }
    });
    let mut conn = Conn::connect(&addr, Duration::from_secs(5)).unwrap();

    // Small payload: latency-dominated round trip.
    let small = Unit::tuple(vec![Unit::int(3), Unit::int(5), Unit::real(1.0e-3)]);
    let (rtt_small, bytes_small) = round_trips(&mut conn, &small, 200, 2000);

    // Bulk payload: a level-ish result field, bandwidth-dominated.
    let n_reals = 1 << 17; // 1 MiB of f64
    let bulk = Unit::reals((0..n_reals).map(|i| i as f64).collect::<Vec<_>>());
    let (rtt_bulk, bytes_bulk) = round_trips(&mut conn, &bulk, 5, 50);

    conn.send_msg(&Message::Shutdown).unwrap();
    server.join().unwrap();

    // Codec throughput (encode + decode of the bulk unit, no socket).
    let codec_iters = 50;
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..codec_iters {
        let enc = encode_unit_vec(&bulk).unwrap();
        sink += enc.len();
        let dec = decode_unit(&enc).unwrap();
        sink += dec.as_reals().map(|r| r.len()).unwrap_or(0);
    }
    let codec_bytes_per_sec =
        (bytes_bulk * codec_iters) as f64 / t0.elapsed().as_secs_f64().max(1e-12);
    assert!(sink > 0);

    // Memory-copy baseline (the simulator's intra-machine transfer rate).
    // Non-constant data + black_box so the copy cannot be optimized away.
    let src: Vec<u8> = (0..64usize << 20).map(|i| i as u8).collect();
    let copies = 8;
    let t0 = Instant::now();
    for _ in 0..copies {
        let dst = std::hint::black_box(std::hint::black_box(&src).clone());
        drop(dst);
    }
    let mem_bandwidth = (src.len() * copies) as f64 / t0.elapsed().as_secs_f64().max(1e-12);

    let model = NetworkModel::from_loopback_measurement(
        (bytes_small, rtt_small),
        (bytes_bulk, rtt_bulk),
        mem_bandwidth,
    )
    .expect("calibration");

    if !json_only {
        println!("transport microbenchmark (TCP loopback, length-prefixed frames)");
        println!();
        println!(
            "small round trip : {:>10.1} us ({bytes_small} B framed)",
            rtt_small * 1e6
        );
        println!(
            "bulk  round trip : {:>10.1} us ({bytes_bulk} B framed)",
            rtt_bulk * 1e6
        );
        println!(
            "loopback bandwidth (calibrated) : {:>8.1} MB/s",
            model.bandwidth / 1e6
        );
        println!(
            "one-way latency    (calibrated) : {:>8.1} us",
            model.latency * 1e6
        );
        println!(
            "codec throughput   : {:>8.1} MB/s",
            codec_bytes_per_sec / 1e6
        );
        println!("memcpy bandwidth   : {:>8.1} MB/s", mem_bandwidth / 1e6);
        println!();
        println!(
            "paper's model: latency 150.0 us, bandwidth 11.0 MB/s — the modern \
             loopback transport is orders of magnitude faster, so a localhost \
             multi-process run is coordination-bound, not network-bound."
        );
        println!();
    }
    println!("{{");
    println!("  \"small_payload_bytes\": {bytes_small},");
    println!("  \"small_rtt_us\": {:.3},", rtt_small * 1e6);
    println!("  \"bulk_payload_bytes\": {bytes_bulk},");
    println!("  \"bulk_rtt_us\": {:.3},", rtt_bulk * 1e6);
    println!("  \"calibrated_latency_us\": {:.3},", model.latency * 1e6);
    println!(
        "  \"calibrated_bandwidth_mb_s\": {:.3},",
        model.bandwidth / 1e6
    );
    println!(
        "  \"codec_throughput_mb_s\": {:.3},",
        codec_bytes_per_sec / 1e6
    );
    println!("  \"mem_bandwidth_mb_s\": {:.3}", mem_bandwidth / 1e6);
    println!("}}");
}
