//! Solver hot-path benchmark: the zero-allocation `subsolve` inner loop
//! against the retained reference implementation.
//!
//! For every grid of a combination-technique level this runs the same
//! subsolve twice — once through [`solver::reference::subsolve_reference`]
//! (triplet assembly, full stage rebuilds, allocating BiCGSTAB, per-step
//! error vector) and once through [`solver::subsolve_with`] (direct CSR
//! assembly, pattern-cached stage matrix, in-place ILU(0) refactorization,
//! reused Krylov/ROS2 workspaces) — asserts the results are **bitwise
//! identical** with the same step and (re)factorization counts, and
//! reports per-grid wall times.
//!
//! ```text
//! cargo run -p bench --release --bin solver_bench [-- --level 6 --root 2
//!     --tol 1e-4 --reps 3 --json --assert-zero-alloc]
//! ```
//!
//! `--json` prints only the machine-readable block (the committed
//! `BENCH_solver.json` is this output). `--assert-zero-alloc` exits
//! nonzero unless a warm-workspace integration performs **zero** heap
//! allocations — the binary installs a counting global allocator so the
//! claim is measured, not assumed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

use solver::assemble::assemble;
use solver::grid::Grid2;
use solver::problem::Problem;
use solver::reference::subsolve_reference;
use solver::rosenbrock::{integrate_with, Ros2Options, Ros2Workspace};
use solver::subsolve::{subsolve_with, SubsolveRequest};
use solver::WorkCounter;

// ---------------------------------------------------------------------------
// Counting allocator: tallies this thread's heap allocations so the
// "zero allocations per warm step" property is a measurement.
// ---------------------------------------------------------------------------

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers to the system allocator; the counter is a thread-local
// side effect and `try_with` makes it safe during TLS teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOC_COUNT.with(|c| c.get());
    let out = f();
    let after = ALLOC_COUNT.with(|c| c.get());
    (out, after - before)
}

// ---------------------------------------------------------------------------

struct GridReport {
    l: u32,
    m: u32,
    unknowns: usize,
    steps: usize,
    refactorizations: u64,
    flops: u64,
    ref_ms: f64,
    opt_ms: f64,
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_only = args.iter().any(|a| a == "--json");
    let assert_zero_alloc = args.iter().any(|a| a == "--assert-zero-alloc");
    let level: u32 = flag_value(&args, "--level")
        .map(|v| v.parse().expect("--level"))
        .unwrap_or(6);
    let root: u32 = flag_value(&args, "--root")
        .map(|v| v.parse().expect("--root"))
        .unwrap_or(2);
    let tol: f64 = flag_value(&args, "--tol")
        .map(|v| v.parse().expect("--tol"))
        .unwrap_or(1e-4);
    let reps: usize = flag_value(&args, "--reps")
        .map(|v| v.parse().expect("--reps"))
        .unwrap_or(3);

    let problem = Problem::transport_benchmark();
    let indices = Grid2::combination_indices(level);

    // --- Zero-allocation property: warm one workspace, then measure. -----
    // The warm-up integration builds the stage cache, ILU pattern and all
    // scratch buffers; the second, identical integration must not touch
    // the heap at all.
    let zero_alloc_grid = Grid2::new(root, level.min(2), level.saturating_sub(level.min(2)));
    let mut wk = WorkCounter::new();
    let disc = assemble(&zero_alloc_grid, &problem, &mut wk);
    let u0 = disc.exact_interior(problem.t0);
    let opts = Ros2Options::with_tol(tol);
    let mut ws = Ros2Workspace::new();
    let (u_warm, _) = integrate_with(
        &disc,
        u0.clone(),
        problem.t0,
        problem.t_end,
        &opts,
        &mut ws,
        &mut wk,
    )
    .expect("warm-up integration");
    let u1 = u0.clone(); // allocate the state vector *outside* the window
    let ((u_meas, _), warm_allocs) = allocations_during(|| {
        integrate_with(
            &disc,
            u1,
            problem.t0,
            problem.t_end,
            &opts,
            &mut ws,
            &mut wk,
        )
        .expect("measured integration")
    });
    assert_eq!(u_warm, u_meas, "warm rerun diverged");

    // --- Per-grid reference vs. optimized timing. ------------------------
    let mut reports = Vec::new();
    let mut bit_identical = true;
    let mut counts_match = true;
    for idx in &indices {
        let req = SubsolveRequest::for_grid(root, idx.l, idx.m, tol, problem);

        let mut ref_best = f64::INFINITY;
        let mut ref_res = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = subsolve_reference(&req).expect("reference subsolve");
            ref_best = ref_best.min(t0.elapsed().as_secs_f64());
            ref_res = Some(r);
        }
        let ref_res = ref_res.unwrap();

        let mut opt_best = f64::INFINITY;
        let mut opt_res = None;
        let mut ws = Ros2Workspace::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = subsolve_with(&req, &mut ws).expect("optimized subsolve");
            opt_best = opt_best.min(t0.elapsed().as_secs_f64());
            opt_res = Some(r);
        }
        let opt_res = opt_res.unwrap();

        bit_identical &= ref_res.values == opt_res.values;
        counts_match &= ref_res.steps == opt_res.steps
            && ref_res.rejected == opt_res.rejected
            && ref_res.work.flops == opt_res.work.flops
            && ref_res.work.factorizations
                == opt_res.work.factorizations + opt_res.work.refactorizations;

        let g = req.grid();
        reports.push(GridReport {
            l: idx.l,
            m: idx.m,
            unknowns: g.interior_count(),
            steps: opt_res.steps,
            refactorizations: opt_res.work.factorizations + opt_res.work.refactorizations,
            flops: opt_res.work.flops,
            ref_ms: ref_best * 1e3,
            opt_ms: opt_best * 1e3,
        });
    }

    let total_ref: f64 = reports.iter().map(|r| r.ref_ms).sum();
    let total_opt: f64 = reports.iter().map(|r| r.opt_ms).sum();
    let overall = total_ref / total_opt.max(1e-12);

    // Measured flop intensity for the dispatch cost model: the mean of
    // (counted flops) / (unknowns · steps) across the combination grids.
    let (mut fsum, mut fcnt) = (0.0, 0usize);
    for r in &reports {
        if r.unknowns > 0 && r.steps > 0 {
            fsum += r.flops as f64 / (r.unknowns as f64 * r.steps as f64);
            fcnt += 1;
        }
    }
    let flops_per_unknown_step = fsum / fcnt.max(1) as f64;

    if !json_only {
        println!("solver hot-path benchmark: reference vs. zero-allocation subsolve");
        println!("root {root}, level {level}, tol {tol:.1e}, best of {reps} reps");
        println!();
        println!("  grid        n   steps  refac    ref ms    opt ms  speedup");
        for r in &reports {
            println!(
                "  ({},{})  {:>7} {:>7} {:>6} {:>9.2} {:>9.2}  {:>6.2}x",
                r.l,
                r.m,
                r.unknowns,
                r.steps,
                r.refactorizations,
                r.ref_ms,
                r.opt_ms,
                r.ref_ms / r.opt_ms.max(1e-12)
            );
        }
        println!();
        println!("  total: {total_ref:.1} ms -> {total_opt:.1} ms ({overall:.2}x)");
        println!("  bit-identical: {bit_identical}, counts match: {counts_match}");
        println!("  warm-workspace integrate allocations: {warm_allocs}");
        println!("  measured flops/unknown/step: {flops_per_unknown_step:.1}");
        println!();
    }

    println!("{{");
    println!("  \"root\": {root},");
    println!("  \"level\": {level},");
    println!("  \"tol\": {tol:e},");
    println!("  \"reps\": {reps},");
    println!("  \"grids\": [");
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        println!(
            "    {{\"l\": {}, \"m\": {}, \"unknowns\": {}, \"steps\": {}, \
             \"refactorizations\": {}, \"flops\": {}, \"ref_ms\": {:.3}, \
             \"opt_ms\": {:.3}, \"speedup\": {:.3}}}{comma}",
            r.l,
            r.m,
            r.unknowns,
            r.steps,
            r.refactorizations,
            r.flops,
            r.ref_ms,
            r.opt_ms,
            r.ref_ms / r.opt_ms.max(1e-12)
        );
    }
    println!("  ],");
    println!("  \"total_ref_ms\": {total_ref:.3},");
    println!("  \"total_opt_ms\": {total_opt:.3},");
    println!("  \"overall_speedup\": {overall:.3},");
    println!("  \"bit_identical\": {bit_identical},");
    println!("  \"counts_match\": {counts_match},");
    println!("  \"warm_integrate_allocations\": {warm_allocs},");
    println!("  \"flops_per_unknown_step\": {flops_per_unknown_step:.3}");
    println!("}}");

    if !bit_identical || !counts_match {
        eprintln!("FAIL: optimized path diverged from the reference");
        std::process::exit(1);
    }
    if assert_zero_alloc && warm_allocs != 0 {
        eprintln!("FAIL: warm integrate performed {warm_allocs} heap allocations (expected 0)");
        std::process::exit(1);
    }
}
