//! Solver hot-path benchmark: the SIMD + batched `subsolve` inner loop
//! against the retained reference implementation.
//!
//! For every grid of each requested combination-technique level this runs
//! the same subsolve through [`solver::reference::subsolve_reference`]
//! (triplet assembly, full stage rebuilds, allocating BiCGSTAB, per-step
//! error vector) and through the optimized path (direct CSR assembly,
//! pattern-cached stage matrix, in-place ILU(0) refactorization, reused
//! workspaces, SIMD kernels) at each requested tier — asserting the exact
//! tier is **bitwise identical** with the same step and (re)factorization
//! counts — and reports per-grid wall times plus a per-kernel breakdown
//! (assembly, CSR matvec, ILU(0) sweep, dot product) and a multi-RHS
//! batched-vs-sequential comparison on each level's calibration grid.
//!
//! ```text
//! cargo run -p bench --release --bin solver_bench [-- --level 6 |
//!     --level-range 8..=10] [--root 2 --tol 1e-4 --reps 3 --batch 4
//!     --tier exact|fast|both --json --assert-zero-alloc]
//! ```
//!
//! `--json` prints only the machine-readable block (the committed
//! `BENCH_solver.json` is this output). `--assert-zero-alloc` exits
//! nonzero unless a warm-workspace integration — single-RHS *and* batched
//! — performs **zero** heap allocations at every requested tier; the
//! binary installs a counting global allocator so the claim is measured,
//! not assumed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

use bench::cli::Cli;
use solver::assemble::assemble;
use solver::grid::Grid2;
use solver::linsolve::{Ilu0, Preconditioner};
use solver::problem::Problem;
use solver::reference::subsolve_reference;
use solver::rosenbrock::{integrate_with, Ros2Options, Ros2Workspace};
use solver::simd::{dot_exact, dot_fast};
use solver::subsolve::{subsolve_tiered, SubsolveRequest};
use solver::{integrate_batch, BatchWorkspace, Tier, WorkCounter};

const USAGE: &str = "[--level N | --level-range L..=M] [--root N] [--tol T] \
     [--reps N] [--batch K] [--tier exact|fast|both] [--json] \
     [--assert-zero-alloc]";

// ---------------------------------------------------------------------------
// Counting allocator: tallies this thread's heap allocations so the
// "zero allocations per warm step" property is a measurement.
// ---------------------------------------------------------------------------

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers to the system allocator; the counter is a thread-local
// side effect and `try_with` makes it safe during TLS teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOC_COUNT.with(|c| c.get());
    let out = f();
    let after = ALLOC_COUNT.with(|c| c.get());
    (out, after - before)
}

// ---------------------------------------------------------------------------

struct GridReport {
    l: u32,
    m: u32,
    unknowns: usize,
    steps: usize,
    refactorizations: u64,
    flops: u64,
    ref_ms: f64,
    /// Optimized wall time per timed tier, `tier_ms[i]` matching `tiers[i]`.
    tier_ms: Vec<f64>,
}

/// Per-kernel nanoseconds per call on a level's calibration grid.
struct KernelReport {
    unknowns: usize,
    nnz: usize,
    assembly_us: f64,
    matvec_ns: f64,
    sweep_ns: f64,
    dot_exact_ns: f64,
    dot_fast_ns: f64,
}

/// Batched multi-RHS vs sequential on a level's calibration grid.
struct BatchReport {
    width: usize,
    seq_ms: f64,
    batch_ms: f64,
}

struct LevelReport {
    level: u32,
    grids: Vec<GridReport>,
    kernels: KernelReport,
    batch: Option<BatchReport>,
    flops_per_unknown_step: f64,
}

/// The grid used for kernel timing, zero-alloc windows, and the batch
/// comparison: the most anisotropic useful shape of the level, matching
/// the historical calibration grid.
fn calibration_grid(root: u32, level: u32) -> Grid2 {
    Grid2::new(root, level.min(2), level.saturating_sub(level.min(2)))
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn kernel_bench(root: u32, level: u32, problem: &Problem, reps: usize) -> KernelReport {
    let g = calibration_grid(root, level);
    let mut wk = WorkCounter::new();
    let assembly_s = best_of(reps, || {
        let d = assemble(&g, problem, &mut wk);
        std::hint::black_box(&d);
    });
    let disc = assemble(&g, problem, &mut wk);
    let n = disc.a.n();
    let nnz = disc.a.nnz();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut y = vec![0.0; n];
    // Size the inner loop so each timed sample does ~10^6 touched entries.
    let iters = (1_000_000 / nnz.max(1)).clamp(1, 100_000);
    let matvec_s = best_of(reps, || {
        for _ in 0..iters {
            disc.a.matvec_into(std::hint::black_box(&x), &mut y);
        }
    });
    let ilu = Ilu0::new(&disc.a, &mut wk);
    let mut z = vec![0.0; n];
    let mut dummy = WorkCounter::new();
    let sweep_s = best_of(reps, || {
        for _ in 0..iters {
            ilu.apply(std::hint::black_box(&x), &mut z, &mut dummy);
        }
    });
    let dot_iters = (1_000_000 / n.max(1)).clamp(1, 100_000);
    let mut acc = 0.0;
    let de_s = best_of(reps, || {
        for _ in 0..dot_iters {
            acc += dot_exact(std::hint::black_box(&x), &y);
        }
    });
    let df_s = best_of(reps, || {
        for _ in 0..dot_iters {
            acc += dot_fast(std::hint::black_box(&x), &y);
        }
    });
    std::hint::black_box(acc);
    KernelReport {
        unknowns: n,
        nnz,
        assembly_us: assembly_s * 1e6,
        matvec_ns: matvec_s * 1e9 / iters as f64,
        sweep_ns: sweep_s * 1e9 / iters as f64,
        dot_exact_ns: de_s * 1e9 / dot_iters as f64,
        dot_fast_ns: df_s * 1e9 / dot_iters as f64,
    }
}

/// Time `width` independent solves of the calibration grid run
/// sequentially vs through the batched multi-RHS integrator. All members
/// share one tolerance so they step in lockstep — the case batching
/// exists for: one factorization and one SoA sweep schedule amortized
/// across the whole cohort. (Heterogeneous tolerances split the cohort
/// and the batch degenerates to near-sequential work; that split/re-join
/// machinery is exercised by the integration and engine tests, not timed
/// here.)
fn batch_bench(root: u32, level: u32, problem: &Problem, tol: f64, width: usize) -> BatchReport {
    let g = calibration_grid(root, level);
    let mut wk = WorkCounter::new();
    let disc = assemble(&g, problem, &mut wk);
    let u0 = disc.exact_interior(problem.t0);
    let tols: Vec<f64> = vec![tol; width];

    let mut ws = Ros2Workspace::new();
    // Warm both paths so the comparison is steady-state compute, not
    // first-call allocation.
    let seq_run = |ws: &mut Ros2Workspace| {
        for &t in &tols {
            let opts = Ros2Options::with_tol(t);
            let mut w = WorkCounter::new();
            let r = integrate_with(
                &disc,
                u0.clone(),
                problem.t0,
                problem.t_end,
                &opts,
                ws,
                &mut w,
            )
            .expect("sequential member");
            std::hint::black_box(&r);
        }
    };
    seq_run(&mut ws);
    let t0 = Instant::now();
    seq_run(&mut ws);
    let seq_s = t0.elapsed().as_secs_f64();

    let mut bws = BatchWorkspace::new();
    let mut works = vec![WorkCounter::new(); width];
    let mut results = Vec::new();
    let batch_run =
        |bws: &mut BatchWorkspace, works: &mut Vec<WorkCounter>, results: &mut Vec<_>| {
            let mut us: Vec<Vec<f64>> = (0..width).map(|_| u0.clone()).collect();
            integrate_batch(
                &disc,
                &mut us,
                problem.t0,
                problem.t_end,
                &tols,
                Tier::Exact,
                bws,
                works,
                results,
            );
            std::hint::black_box(&us);
        };
    batch_run(&mut bws, &mut works, &mut results);
    let t0 = Instant::now();
    batch_run(&mut bws, &mut works, &mut results);
    let batch_s = t0.elapsed().as_secs_f64();

    BatchReport {
        width,
        seq_ms: seq_s * 1e3,
        batch_ms: batch_s * 1e3,
    }
}

/// Warm-workspace allocation counts for the single-RHS and batched hot
/// loops at one tier: (integrate allocations, batch allocations).
fn zero_alloc_window(
    root: u32,
    level: u32,
    problem: &Problem,
    tol: f64,
    tier: Tier,
    batch: usize,
) -> (u64, u64) {
    let g = calibration_grid(root, level);
    let mut wk = WorkCounter::new();
    let disc = assemble(&g, problem, &mut wk);
    let u0 = disc.exact_interior(problem.t0);
    let opts = Ros2Options::with_tol(tol).with_tier(tier);
    let mut ws = Ros2Workspace::new();
    let (u_warm, _) = integrate_with(
        &disc,
        u0.clone(),
        problem.t0,
        problem.t_end,
        &opts,
        &mut ws,
        &mut wk,
    )
    .expect("warm-up integration");
    let u1 = u0.clone(); // allocate the state vector *outside* the window
    let ((u_meas, _), single_allocs) = allocations_during(|| {
        integrate_with(
            &disc,
            u1,
            problem.t0,
            problem.t_end,
            &opts,
            &mut ws,
            &mut wk,
        )
        .expect("measured integration")
    });
    assert_eq!(u_warm, u_meas, "warm rerun diverged");

    let k = batch.max(2);
    let tols: Vec<f64> = (0..k).map(|j| tol * (1.0 + 0.5 * j as f64)).collect();
    let mut bws = BatchWorkspace::new();
    let mut works = vec![WorkCounter::new(); k];
    let mut results = Vec::with_capacity(k);
    let mut us: Vec<Vec<f64>> = (0..k).map(|_| u0.clone()).collect();
    integrate_batch(
        &disc,
        &mut us,
        problem.t0,
        problem.t_end,
        &tols,
        tier,
        &mut bws,
        &mut works,
        &mut results,
    );
    let warm_us = us.clone();
    for (u, orig) in us.iter_mut().zip(std::iter::repeat(&u0)) {
        u.copy_from_slice(orig);
    }
    let (_, batch_allocs) = allocations_during(|| {
        integrate_batch(
            &disc,
            &mut us,
            problem.t0,
            problem.t_end,
            &tols,
            tier,
            &mut bws,
            &mut works,
            &mut results,
        )
    });
    assert_eq!(warm_us, us, "warm batched rerun diverged");
    (single_allocs, batch_allocs)
}

#[allow(clippy::too_many_arguments)]
fn bench_level(
    root: u32,
    level: u32,
    tol: f64,
    reps: usize,
    batch: usize,
    tiers: &[Tier],
    problem: &Problem,
    bit_identical: &mut bool,
    counts_match: &mut bool,
) -> LevelReport {
    let mut grids = Vec::new();
    for idx in &Grid2::combination_indices(level) {
        let req = SubsolveRequest::for_grid(root, idx.l, idx.m, tol, *problem);

        let mut ref_best = f64::INFINITY;
        let mut ref_res = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = subsolve_reference(&req).expect("reference subsolve");
            ref_best = ref_best.min(t0.elapsed().as_secs_f64());
            ref_res = Some(r);
        }
        let ref_res = ref_res.unwrap();

        let mut tier_ms = Vec::new();
        let mut exact_report = None;
        for &tier in tiers {
            let mut best = f64::INFINITY;
            let mut res = None;
            let mut ws = Ros2Workspace::new();
            for _ in 0..reps {
                let t0 = Instant::now();
                let r = subsolve_tiered(&req, tier, &mut ws).expect("optimized subsolve");
                best = best.min(t0.elapsed().as_secs_f64());
                res = Some(r);
            }
            let res = res.unwrap();
            if tier == Tier::Exact {
                *bit_identical &= ref_res.values == res.values;
                *counts_match &= ref_res.steps == res.steps
                    && ref_res.rejected == res.rejected
                    && ref_res.work.flops == res.work.flops
                    && ref_res.work.factorizations
                        == res.work.factorizations + res.work.refactorizations;
            }
            if exact_report.is_none() || tier == Tier::Exact {
                exact_report = Some(res);
            }
            tier_ms.push(best * 1e3);
        }
        let opt_res = exact_report.unwrap();

        let g = req.grid();
        grids.push(GridReport {
            l: idx.l,
            m: idx.m,
            unknowns: g.interior_count(),
            steps: opt_res.steps,
            refactorizations: opt_res.work.factorizations + opt_res.work.refactorizations,
            flops: opt_res.work.flops,
            ref_ms: ref_best * 1e3,
            tier_ms,
        });
    }

    // Measured flop intensity for the dispatch cost model: the mean of
    // (counted flops) / (unknowns · steps) across the combination grids.
    let (mut fsum, mut fcnt) = (0.0, 0usize);
    for r in &grids {
        if r.unknowns > 0 && r.steps > 0 {
            fsum += r.flops as f64 / (r.unknowns as f64 * r.steps as f64);
            fcnt += 1;
        }
    }

    LevelReport {
        level,
        kernels: kernel_bench(root, level, problem, reps),
        batch: (batch > 1).then(|| batch_bench(root, level, problem, tol, batch)),
        flops_per_unknown_step: fsum / fcnt.max(1) as f64,
        grids,
    }
}

fn main() {
    let cli = Cli::parse("solver_bench", USAGE);
    let json_only = cli.flag("--json");
    let assert_zero_alloc = cli.flag("--assert-zero-alloc");
    let levels = cli.level_range(6);
    let root: u32 = cli.parsed("--root", 2);
    let tol: f64 = cli.parsed("--tol", 1e-4);
    let reps: usize = cli.parsed("--reps", 3);
    let batch: usize = cli.parsed("--batch", 4);
    let tiers = cli.tiers();

    let problem = Problem::transport_benchmark();

    // --- Zero-allocation property at every requested tier. ---------------
    // Warm one workspace (single-RHS and batched), then measure: the
    // second, identical integration must not touch the heap at all.
    let za_level = *levels.start();
    let (mut warm_single, mut warm_batch) = (0u64, 0u64);
    for &tier in &tiers {
        let (s, b) = zero_alloc_window(root, za_level, &problem, tol, tier, batch);
        warm_single = warm_single.max(s);
        warm_batch = warm_batch.max(b);
    }

    // --- Per-grid reference vs. optimized timing, per level. -------------
    let mut bit_identical = true;
    let mut counts_match = true;
    let reports: Vec<LevelReport> = levels
        .clone()
        .map(|level| {
            bench_level(
                root,
                level,
                tol,
                reps,
                batch,
                &tiers,
                &problem,
                &mut bit_identical,
                &mut counts_match,
            )
        })
        .collect();

    if !json_only {
        println!("solver hot-path benchmark: reference vs. SIMD/batched subsolve");
        println!(
            "root {root}, levels {}..={}, tol {tol:.1e}, best of {reps} reps, \
             tiers [{}], batch width {batch}, backend {}",
            levels.start(),
            levels.end(),
            tiers
                .iter()
                .map(|t| t.name())
                .collect::<Vec<_>>()
                .join(", "),
            solver::simd::backend().name(),
        );
        for lr in &reports {
            println!();
            println!("  level {}", lr.level);
            print!("  grid        n   steps  refac    ref ms");
            for t in &tiers {
                print!("  {:>6} ms  spdup", t.name());
            }
            println!();
            for r in &lr.grids {
                print!(
                    "  ({},{})  {:>7} {:>7} {:>6} {:>9.2}",
                    r.l, r.m, r.unknowns, r.steps, r.refactorizations, r.ref_ms
                );
                for ms in &r.tier_ms {
                    print!("  {:>9.2} {:>6.2}", ms, r.ref_ms / ms.max(1e-12));
                }
                println!();
            }
            let total_ref: f64 = lr.grids.iter().map(|r| r.ref_ms).sum();
            for (i, t) in tiers.iter().enumerate() {
                let total: f64 = lr.grids.iter().map(|r| r.tier_ms[i]).sum();
                println!(
                    "  total {}: {total_ref:.1} ms -> {total:.1} ms ({:.2}x)",
                    t.name(),
                    total_ref / total.max(1e-12)
                );
            }
            let k = &lr.kernels;
            println!(
                "  kernels (n {}, nnz {}): assembly {:.1} us, matvec {:.0} ns, \
                 sweep {:.0} ns, dot exact {:.0} ns / fast {:.0} ns",
                k.unknowns,
                k.nnz,
                k.assembly_us,
                k.matvec_ns,
                k.sweep_ns,
                k.dot_exact_ns,
                k.dot_fast_ns
            );
            if let Some(b) = &lr.batch {
                println!(
                    "  batched x{}: sequential {:.1} ms -> batched {:.1} ms ({:.2}x)",
                    b.width,
                    b.seq_ms,
                    b.batch_ms,
                    b.seq_ms / b.batch_ms.max(1e-12)
                );
            }
        }
        println!();
        println!("  bit-identical (exact tier): {bit_identical}, counts match: {counts_match}");
        println!("  warm-workspace integrate allocations: {warm_single} (batched: {warm_batch})");
        println!();
    }

    // --- Machine-readable block (the committed BENCH_solver.json). -------
    println!("{{");
    println!("  \"root\": {root},");
    println!("  \"tol\": {tol:e},");
    println!("  \"reps\": {reps},");
    println!("  \"batch\": {batch},");
    println!(
        "  \"tiers\": [{}],",
        tiers
            .iter()
            .map(|t| format!("\"{}\"", t.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("  \"backend\": \"{}\",", solver::simd::backend().name());
    println!("  \"levels\": [");
    for (li, lr) in reports.iter().enumerate() {
        let lcomma = if li + 1 < reports.len() { "," } else { "" };
        println!("    {{");
        println!("      \"level\": {},", lr.level);
        println!("      \"grids\": [");
        for (i, r) in lr.grids.iter().enumerate() {
            let comma = if i + 1 < lr.grids.len() { "," } else { "" };
            let tier_fields = tiers
                .iter()
                .zip(&r.tier_ms)
                .map(|(t, ms)| {
                    format!(
                        "\"{0}_ms\": {1:.3}, \"speedup_{0}\": {2:.3}",
                        t.name(),
                        ms,
                        r.ref_ms / ms.max(1e-12)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "        {{\"l\": {}, \"m\": {}, \"unknowns\": {}, \"steps\": {}, \
                 \"refactorizations\": {}, \"flops\": {}, \"ref_ms\": {:.3}, {tier_fields}}}{comma}",
                r.l, r.m, r.unknowns, r.steps, r.refactorizations, r.flops, r.ref_ms,
            );
        }
        println!("      ],");
        let total_ref: f64 = lr.grids.iter().map(|r| r.ref_ms).sum();
        println!("      \"total_ref_ms\": {total_ref:.3},");
        for (i, t) in tiers.iter().enumerate() {
            let total: f64 = lr.grids.iter().map(|r| r.tier_ms[i]).sum();
            println!("      \"total_{}_ms\": {total:.3},", t.name());
            println!(
                "      \"overall_speedup_{}\": {:.3},",
                t.name(),
                total_ref / total.max(1e-12)
            );
        }
        let k = &lr.kernels;
        println!(
            "      \"kernels\": {{\"unknowns\": {}, \"nnz\": {}, \"assembly_us\": {:.3}, \
             \"matvec_ns\": {:.1}, \"sweep_ns\": {:.1}, \"dot_exact_ns\": {:.1}, \
             \"dot_fast_ns\": {:.1}}},",
            k.unknowns,
            k.nnz,
            k.assembly_us,
            k.matvec_ns,
            k.sweep_ns,
            k.dot_exact_ns,
            k.dot_fast_ns
        );
        if let Some(b) = &lr.batch {
            println!(
                "      \"batch\": {{\"width\": {}, \"seq_ms\": {:.3}, \"batch_ms\": {:.3}, \
                 \"speedup\": {:.3}}},",
                b.width,
                b.seq_ms,
                b.batch_ms,
                b.seq_ms / b.batch_ms.max(1e-12)
            );
        }
        println!(
            "      \"flops_per_unknown_step\": {:.3}",
            lr.flops_per_unknown_step
        );
        println!("    }}{lcomma}");
    }
    println!("  ],");
    println!("  \"bit_identical\": {bit_identical},");
    println!("  \"counts_match\": {counts_match},");
    println!("  \"warm_integrate_allocations\": {warm_single},");
    println!("  \"warm_batch_integrate_allocations\": {warm_batch}");
    println!("}}");

    if !bit_identical || !counts_match {
        eprintln!("FAIL: optimized exact tier diverged from the reference");
        std::process::exit(1);
    }
    if assert_zero_alloc && (warm_single != 0 || warm_batch != 0) {
        eprintln!(
            "FAIL: warm integrate performed {warm_single} single-RHS and {warm_batch} \
             batched heap allocations (expected 0)"
        );
        std::process::exit(1);
    }
}
