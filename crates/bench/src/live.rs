//! Live-backend selection for the experiment drivers.
//!
//! The simulated cluster regenerates the paper's numbers; the *live*
//! backends actually execute the renovated application — either with every
//! process a thread of the driver (`threads`) or with worker task
//! instances as separate OS processes over the transport (`procs`). The
//! point of exposing both behind one flag is the paper's modernization
//! claim: the application is identical, only the deployment changes, and
//! the numbers must not.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use chaos::FaultPlan;
use manifold::prelude::MfResult;
use protocol::PolicyRef;
use renovation::{run_concurrent_opts, run_concurrent_procs, ProcsConfig, RunMode, RunOpts};
use solver::sequential::SequentialApp;

/// Which engine executes a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The virtual-time cluster simulator (regenerates the paper's tables).
    Sim,
    /// Live run, all processes as threads of this program.
    Threads,
    /// Live run, worker task instances as separate OS processes connected
    /// over the transport (localhost placement).
    Procs,
}

impl Backend {
    /// Parse a `--backend` argument.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "sim" => Some(Backend::Sim),
            "threads" => Some(Backend::Threads),
            "procs" => Some(Backend::Procs),
            _ => None,
        }
    }
}

/// One live run's observables. Everything except `wall_s` must be
/// identical between the `threads` and `procs` backends.
#[derive(Clone, Debug)]
pub struct LiveRun {
    /// Refinement level of the run.
    pub level: u32,
    /// `subsolve` jobs dispatched (2·level + 1).
    pub jobs: usize,
    /// L2 error of the combined solution against the exact solution.
    pub l2_error: f64,
    /// FNV-1a hash over the raw bits of the combined field — a compact
    /// witness of bit-identity across backends.
    pub checksum: u64,
    /// Wall-clock seconds of the run.
    pub wall_s: f64,
    /// Peak simultaneously-computing workers.
    pub peak: usize,
    /// Workers created by the protocol (incl. re-dispatches after loss).
    pub workers_created: usize,
    /// `worker lost` events the master observed (0 without injected
    /// faults or real losses).
    pub losses: usize,
    /// Work-steal events between shard queues (0 when flat).
    pub steals: usize,
    /// Workers that joined mid-run under the churn plan.
    pub joins: usize,
    /// Workers retired mid-run under the churn plan.
    pub leaves: usize,
}

/// Robustness options of a live run: fault injection and
/// checkpoint/restart, uniform across the threads and procs backends.
#[derive(Clone, Debug, Default)]
pub struct LiveOpts {
    /// Fault schedule to inject (see [`chaos::FaultPlan`]).
    pub faults: Option<FaultPlan>,
    /// Checkpoint every collected result into this directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint in `checkpoint_dir` (no-op when none
    /// exists yet).
    pub resume: bool,
    /// Lost-worker re-dispatches tolerated before the run fails
    /// (backend default when `None`).
    pub retry_budget: Option<usize>,
    /// Sharded dispatch spec (`--shards` / `--steal`); one shard is the
    /// flat master.
    pub shards: protocol::ShardSpec,
    /// Membership churn plan (`--churn`); real process joins/retirements
    /// on the procs backend, inert on threads.
    pub churn: protocol::ChurnPlan,
}

/// FNV-1a over the bit patterns of a float field (one shared definition —
/// the serving layer's, so client- and bench-side witnesses agree).
pub use serve::proto::field_checksum;

/// Execute one live run of `app` on the chosen backend.
///
/// `instances` is the number of worker processes for [`Backend::Procs`]
/// (ignored by [`Backend::Threads`], where concurrency is the dispatch
/// policy's business). Panics on [`Backend::Sim`] — the simulator has its
/// own drivers.
pub fn run_live(
    backend: Backend,
    app: &SequentialApp,
    policy: PolicyRef,
    instances: usize,
) -> LiveRun {
    run_live_with(backend, app, policy, instances, &LiveOpts::default())
        .expect("live run without injected faults")
}

/// [`run_live`] with fault injection and checkpoint/restart options. A run
/// whose faults exceed its budgets returns the master's diagnosed error
/// instead of a result.
pub fn run_live_with(
    backend: Backend,
    app: &SequentialApp,
    policy: PolicyRef,
    instances: usize,
    opts: &LiveOpts,
) -> MfResult<LiveRun> {
    let t0 = Instant::now();
    let conc = match backend {
        Backend::Sim => panic!("run_live is for the live backends; sim has its own drivers"),
        Backend::Threads => {
            let run_opts = RunOpts {
                faults: opts.faults.clone(),
                checkpoint_dir: opts.checkpoint_dir.clone(),
                resume: opts.resume,
                retry_budget: opts.retry_budget,
                shards: opts.shards,
                churn: opts.churn.clone(),
            };
            run_concurrent_opts(app, &RunMode::Parallel, true, policy, &run_opts)?
        }
        Backend::Procs => {
            let mut cfg = ProcsConfig::new(instances.max(1));
            cfg.faults = opts.faults.clone();
            cfg.checkpoint_dir = opts.checkpoint_dir.clone();
            cfg.resume = opts.resume;
            if let Some(budget) = opts.retry_budget {
                cfg.retry_budget = budget;
            }
            cfg.shards = opts.shards;
            cfg.churn = opts.churn.clone();
            run_concurrent_procs(app, &cfg, true, policy)?
        }
    };
    let wall_s = t0.elapsed().as_secs_f64();
    let losses = conc
        .records
        .iter()
        .filter(|r| r.message.contains("worker lost"))
        .count();
    let count = |prefix: &str| {
        conc.records
            .iter()
            .filter(|r| r.message.starts_with(prefix))
            .count()
    };
    let (steals, joins, leaves) = (
        count("steal: shard"),
        count("join: instance"),
        count("leave: instance"),
    );
    Ok(LiveRun {
        level: app.level,
        jobs: conc.result.per_grid.len(),
        l2_error: conc.result.l2_error,
        checksum: field_checksum(&conc.result.combined),
        wall_s,
        peak: conc.peak_concurrent_workers,
        workers_created: conc.outcome.pools()[0].workers_created,
        losses,
        steals,
        joins,
        leaves,
    })
}

/// The standard live policies, as (label, policy) pairs: every shipped
/// [`DispatchPolicy`](protocol::DispatchPolicy).
pub fn all_policies() -> Vec<(&'static str, PolicyRef)> {
    vec![
        (
            "paper-faithful",
            Arc::new(protocol::PaperFaithful) as PolicyRef,
        ),
        ("bounded-reuse:4", Arc::new(protocol::BoundedReuse::new(4))),
        ("cost-aware", Arc::new(protocol::CostAware)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parsing() {
        assert_eq!(Backend::parse("sim"), Some(Backend::Sim));
        assert_eq!(Backend::parse("threads"), Some(Backend::Threads));
        assert_eq!(Backend::parse("procs"), Some(Backend::Procs));
        assert_eq!(Backend::parse("cloud"), None);
    }

    #[test]
    fn checksum_is_bit_sensitive() {
        let a = field_checksum(&[1.0, 2.0, 3.0]);
        let b = field_checksum(&[1.0, 2.0, 3.0000000000000004]);
        assert_ne!(a, b);
        assert_ne!(field_checksum(&[0.0]), field_checksum(&[-0.0]));
        assert_eq!(a, field_checksum(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn threads_live_run_reports_consistent_observables() {
        let app = SequentialApp::new(2, 1, 1e-3);
        let run = run_live(Backend::Threads, &app, Arc::new(protocol::PaperFaithful), 1);
        assert_eq!(run.jobs, 3);
        assert_eq!(run.workers_created, 3);
        let seq = app.run().unwrap();
        assert_eq!(run.checksum, field_checksum(&seq.combined));
        assert_eq!(run.l2_error, seq.l2_error);
    }
}
