//! Stream mechanics: the cost of the KK-vs-BK design choice (§4.2, line
//! 32) and of state preemption with varying stream counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manifold::port::Port;
use manifold::stream::{Stream, StreamType};
use manifold::{ProcessId, Unit};
use std::hint::black_box;

fn wire(
    ty: StreamType,
) -> (
    std::sync::Arc<Port>,
    std::sync::Arc<Port>,
    std::sync::Arc<Stream>,
) {
    let out = Port::new(ProcessId(1), "output");
    let inp = Port::new(ProcessId(2), "input");
    let s = Stream::new(ty);
    out.attach_outgoing(&s);
    inp.attach_incoming(&s);
    (out, inp, s)
}

fn bench_push_pop(c: &mut Criterion) {
    let s = Stream::new(StreamType::BK);
    c.bench_function("stream_push_pop", |b| {
        b.iter(|| {
            s.push(black_box(Unit::int(1)));
            s.try_pop().unwrap()
        })
    });
}

/// Setting up and dismantling a connection per type: BK must detach from
/// the source port; KK is free at preemption (but the stream lives on).
fn bench_dismantle(c: &mut Criterion) {
    let mut group = c.benchmark_group("connect_and_dismantle");
    for (name, ty) in [
        ("BK", StreamType::BK),
        ("KK", StreamType::KK),
        ("BB", StreamType::BB),
        ("KB", StreamType::KB),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ty, |b, &ty| {
            b.iter(|| {
                let (_out, _inp, s) = wire(ty);
                s.dismantle();
                black_box(s)
            })
        });
    }
    group.finish();
}

/// A preemption that dismantles `n` streams at once (the create_worker
/// state carries three; bigger states scale linearly).
fn bench_state_preemption(c: &mut Criterion) {
    let mut group = c.benchmark_group("preempt_n_streams");
    for n in [3usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let streams: Vec<_> = (0..n).map(|_| wire(StreamType::BK).2).collect();
                for s in &streams {
                    s.dismantle();
                }
                black_box(streams)
            })
        });
    }
    group.finish();
}

/// Draining a BK stream after source break (the consumer-keeps semantics).
fn bench_drain_after_break(c: &mut Criterion) {
    c.bench_function("bk_drain_after_break_1024", |b| {
        b.iter(|| {
            let (out, inp, s) = wire(StreamType::BK);
            for _ in 0..1024 {
                out.write(Unit::int(7)).unwrap();
            }
            s.dismantle();
            let mut got = 0;
            while inp.try_read().is_some() {
                got += 1;
            }
            assert_eq!(got, 1024);
        })
    });
}

criterion_group!(
    benches,
    bench_push_pop,
    bench_dismantle,
    bench_state_preemption,
    bench_drain_after_break
);
criterion_main!(benches);
