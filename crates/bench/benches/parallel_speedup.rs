//! The live shared-memory variant: sequential program vs the renovated
//! parallel application (all processes as threads of one task instance —
//! the paper's `load 6` deployment) on this machine's cores.
//!
//! Also benchmarks the §4.1 I/O-worker ablation: with the initial data
//! sampled by the workers instead of shipped through the master, the
//! master's serial feeding phase shrinks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use renovation::app::{run_concurrent, RunMode};
use solver::SequentialApp;
use std::hint::black_box;

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("live_run");
    group.sample_size(10);
    for level in [2u32, 3] {
        let app = SequentialApp::new(2, level, 1.0e-3);
        group.bench_with_input(BenchmarkId::new("sequential", level), &app, |b, app| {
            b.iter(|| black_box(app.run().unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("parallel", level), &app, |b, app| {
            b.iter(|| black_box(run_concurrent(app, &RunMode::Parallel, true).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("parallel_io_workers", level),
            &app,
            |b, app| b.iter(|| black_box(run_concurrent(app, &RunMode::Parallel, false).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sequential_vs_parallel);
criterion_main!(benches);
