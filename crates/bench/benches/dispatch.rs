//! Dispatch-policy comparison: the same live parallel run under each of
//! the three scheduler policies.
//!
//! `paper-faithful` feeds every worker before collecting (the paper's
//! verified protocol), `bounded-reuse` caps the in-flight window at a
//! small pool (backpressure: fewer threads computing at once), and
//! `cost-aware` fronts the expensive diagonal grids (LPT order from the
//! a-priori cost model). All three produce bit-identical results; this
//! bench measures what the ordering and windowing cost or buy in wall
//! clock. Also times the pure scheduling decision (order + window) on its
//! own, which must stay negligible next to a run.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protocol::{BoundedReuse, CostAware, PaperFaithful, PolicyRef};
use renovation::app::{run_concurrent_with_policy, RunMode};
use solver::SequentialApp;
use std::hint::black_box;

fn policies() -> Vec<(&'static str, PolicyRef)> {
    vec![
        ("paper-faithful", Arc::new(PaperFaithful)),
        ("bounded-reuse-3", Arc::new(BoundedReuse::new(3))),
        ("cost-aware", Arc::new(CostAware)),
    ]
}

fn bench_policies_live(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_live");
    group.sample_size(10);
    for level in [2u32, 3] {
        let app = SequentialApp::new(2, level, 1.0e-3);
        for (name, policy) in policies() {
            group.bench_with_input(BenchmarkId::new(name, level), &app, |b, app| {
                b.iter(|| {
                    black_box(
                        run_concurrent_with_policy(app, &RunMode::Parallel, true, policy.clone())
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_decision_overhead(c: &mut Criterion) {
    // The scheduling decision itself, isolated: ordering the level-15 job
    // list (31 grids) must cost microseconds, not milliseconds.
    let costs: Vec<f64> = solver::grid::Grid2::combination_indices(15)
        .iter()
        .map(|idx| solver::work::estimate_subsolve_flops(2, idx.l, idx.m, 1.0e-3))
        .collect();
    let mut group = c.benchmark_group("dispatch_decision");
    for (name, policy) in policies() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &costs, |b, costs| {
            b.iter(|| {
                let order = policy.order(black_box(costs));
                let window = policy.window(costs.len());
                black_box((order, window))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies_live, bench_decision_overhead);
criterion_main!(benches);
