//! Solver kernel micro-benchmarks: the cost structure §3 describes —
//! "a linear system of equations (Ax = b) is solved for every time step.
//! Moreover, this A matrix must be built up in the program which takes a
//! lot of time. Also the adaptive time step in the time integrator … is
//! something that must be computed again and again."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use solver::assemble::assemble;
use solver::combine::{combine, prolong_bilinear};
use solver::grid::Grid2;
use solver::linsolve::{bicgstab, Ilu0, Preconditioner};
use solver::problem::Problem;
use solver::rosenbrock::{integrate, Ros2Options};
use solver::subsolve::{subsolve, SubsolveRequest};
use solver::theta::{integrate_theta, ThetaScheme};
use solver::WorkCounter;
use std::hint::black_box;

fn bench_assembly(c: &mut Criterion) {
    let p = Problem::transport_benchmark();
    let mut group = c.benchmark_group("assembly");
    for lvl in [2u32, 3, 4] {
        let g = Grid2::new(2, lvl, lvl);
        group.bench_with_input(BenchmarkId::from_parameter(g.nx * g.ny), &g, |b, g| {
            b.iter(|| {
                let mut w = WorkCounter::new();
                black_box(assemble(g, &p, &mut w))
            })
        });
    }
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let p = Problem::transport_benchmark();
    let g = Grid2::new(2, 4, 4); // 64x64
    let mut w = WorkCounter::new();
    let d = assemble(&g, &p, &mut w);
    let x = vec![1.0; d.n()];
    let mut y = vec![0.0; d.n()];
    c.bench_function("matvec_64x64", |b| {
        b.iter(|| d.a.matvec_into(black_box(&x), &mut y))
    });
}

fn bench_ilu(c: &mut Criterion) {
    let p = Problem::transport_benchmark();
    let g = Grid2::new(2, 4, 4);
    let mut w = WorkCounter::new();
    let d = assemble(&g, &p, &mut w);
    let m = d.a.identity_minus_scaled(0.01);
    c.bench_function("ilu0_factor_64x64", |b| {
        b.iter(|| {
            let mut w = WorkCounter::new();
            black_box(Ilu0::new(&m, &mut w))
        })
    });
    let ilu = Ilu0::new(&m, &mut w);
    let r = vec![1.0; m.n()];
    let mut z = vec![0.0; m.n()];
    c.bench_function("ilu0_apply_64x64", |b| {
        b.iter(|| {
            let mut w = WorkCounter::new();
            ilu.apply(black_box(&r), &mut z, &mut w)
        })
    });
}

fn bench_bicgstab(c: &mut Criterion) {
    let p = Problem::transport_benchmark();
    let g = Grid2::new(2, 4, 4);
    let mut w = WorkCounter::new();
    let d = assemble(&g, &p, &mut w);
    let m = d.a.identity_minus_scaled(0.01);
    let ilu = Ilu0::new(&m, &mut w);
    let x_true: Vec<f64> = (0..m.n()).map(|i| ((i % 31) as f64) / 31.0).collect();
    let b_rhs = m.matvec(&x_true);
    c.bench_function("bicgstab_ilu_64x64", |b| {
        b.iter(|| {
            let mut w = WorkCounter::new();
            let mut x = vec![0.0; m.n()];
            bicgstab(&m, &ilu, black_box(&b_rhs), &mut x, 1e-8, 200, &mut w).unwrap()
        })
    });
}

fn bench_ros2(c: &mut Criterion) {
    let p = Problem::manufactured_benchmark();
    let g = Grid2::new(2, 2, 2);
    let mut w = WorkCounter::new();
    let d = assemble(&g, &p, &mut w);
    let u0 = d.exact_interior(0.0);
    c.bench_function("ros2_integrate_16x16_short", |b| {
        b.iter(|| {
            let mut w = WorkCounter::new();
            integrate(
                &d,
                black_box(u0.clone()),
                0.0,
                0.02,
                &Ros2Options::with_tol(1e-4),
                &mut w,
            )
            .unwrap()
        })
    });
}

fn bench_subsolve(c: &mut Criterion) {
    let p = Problem::transport_benchmark();
    let mut group = c.benchmark_group("subsolve");
    group.sample_size(10);
    for (l, m) in [(1u32, 1u32), (2, 2), (0, 3)] {
        let req = SubsolveRequest::for_grid(2, l, m, 1e-3, p);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{l}_{m}")),
            &req,
            |b, req| b.iter(|| subsolve(black_box(req)).unwrap()),
        );
    }
    group.finish();
}

fn bench_prolongation(c: &mut Criterion) {
    let coarse = Grid2::new(2, 1, 4);
    let fine = Grid2::new(2, 5, 5);
    let v = coarse.sample(|x, y| (x * 3.0).sin() * y);
    c.bench_function("prolong_bilinear_to_128x128", |b| {
        b.iter(|| black_box(prolong_bilinear(&coarse, &v, &fine)))
    });

    let level = 4u32;
    let sols: Vec<_> = Grid2::combination_indices(level)
        .into_iter()
        .map(|idx| {
            let g = Grid2::new(2, idx.l, idx.m);
            (idx, g.sample(|x, y| x + y))
        })
        .collect();
    c.bench_function("combination_level4", |b| {
        b.iter(|| {
            let mut w = WorkCounter::new();
            black_box(combine(2, level, &sols, &mut w))
        })
    });
}

/// Adaptive ROS2 vs the fixed-step baselines over the same horizon — what
/// the Rosenbrock solver buys on the transport problem.
fn bench_integrators(c: &mut Criterion) {
    let p = Problem::transport_benchmark();
    let g = Grid2::new(2, 2, 2);
    let mut w = WorkCounter::new();
    let d = assemble(&g, &p, &mut w);
    let u0 = d.exact_interior(p.t0);
    let mut group = c.benchmark_group("integrators_16x16");
    group.sample_size(10);
    group.bench_function("ros2_adaptive_1e-4", |b| {
        b.iter(|| {
            let mut w = WorkCounter::new();
            integrate(
                &d,
                black_box(u0.clone()),
                p.t0,
                p.t_end,
                &Ros2Options::with_tol(1e-4),
                &mut w,
            )
            .unwrap()
        })
    });
    for (name, scheme, dt) in [
        ("implicit_euler_dt2e-3", ThetaScheme::ImplicitEuler, 2e-3),
        ("crank_nicolson_dt5e-3", ThetaScheme::CrankNicolson, 5e-3),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut w = WorkCounter::new();
                integrate_theta(&d, black_box(u0.clone()), p.t0, p.t_end, dt, scheme, &mut w)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_assembly,
    bench_matvec,
    bench_ilu,
    bench_bicgstab,
    bench_ros2,
    bench_subsolve,
    bench_prolongation,
    bench_integrators
);
criterion_main!(benches);
