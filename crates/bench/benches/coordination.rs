//! Coordination-layer overhead — the paper's third overhead category ("the
//! overhead of the coordination layer, i.e., the actual implementation of
//! the overhead of the concurrency").
//!
//! Measures the protocol primitives in isolation: event round trips, the
//! per-worker cost of the master/worker protocol with do-nothing workers,
//! and the rendezvous.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manifold::prelude::*;
use protocol::{protocol_mw, MasterHandle, WorkerHandle};
use std::hint::black_box;

/// Event raise → observed wait, one round trip between two processes.
fn bench_event_round_trip(c: &mut Criterion) {
    c.bench_function("event_round_trip", |b| {
        let env = Environment::new();
        // A ponger that echoes `ping` with `pong` forever. It raises
        // `ready` once it observes us, so no ping can be lost.
        let raiser = env
            .run_coordinator("Setup", |coord| {
                let me = coord.self_ref();
                let ponger = coord.create_atomic("Ponger", move |ctx: ProcessCtx| {
                    ctx.watch(&me);
                    ctx.raise("ready");
                    loop {
                        ctx.wait_event(&["ping".into()])?;
                        ctx.raise("pong");
                    }
                });
                coord.activate(&ponger)?;
                coord.wait_events(&["ready".into()])?;
                Ok(coord.self_ref())
            })
            .unwrap();
        // NOTE: the coordinator has returned; drive events through its core
        // directly (it stays registered until shutdown).
        let core = raiser.core().clone();
        b.iter(|| {
            core.raise("ping");
            core.events().wait_select(&["pong".into()]).unwrap()
        });
        env.shutdown();
    });
}

/// Port write → stream → port read, per unit.
fn bench_port_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("port_transfer");
    for size in [1usize, 1024, 65536] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            use manifold::port::Port;
            use manifold::stream::{Stream, StreamType};
            let out = Port::new(manifold::ProcessId(1), "output");
            let inp = Port::new(manifold::ProcessId(2), "input");
            let s = Stream::new(StreamType::BK);
            out.attach_outgoing(&s);
            inp.attach_incoming(&s);
            let payload = Unit::reals(vec![0.0; size]);
            b.iter(|| {
                out.write(black_box(payload.clone())).unwrap();
                inp.read().unwrap()
            });
        });
    }
    group.finish();
}

/// Full protocol with do-nothing workers: isolates the per-worker protocol
/// overhead (worker creation, reference delivery, activation, streams,
/// death accounting, rendezvous).
fn bench_pool_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_overhead");
    group.sample_size(10);
    for workers in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let env = Environment::new();
                    env.run_coordinator("Main", |coord| {
                        let coord_ref = coord.self_ref();
                        let env2 = coord.env().clone();
                        let master = coord.create_atomic("Master", move |ctx: ProcessCtx| {
                            let h = MasterHandle::new(ctx, coord_ref, env2);
                            h.create_pool();
                            for _ in 0..workers {
                                let _w = h.request_worker()?;
                                h.send_work(Unit::int(1))?;
                            }
                            for _ in 0..workers {
                                let _ = h.collect()?;
                            }
                            h.rendezvous()?;
                            h.finished();
                            Ok(())
                        });
                        coord.activate(&master)?;
                        protocol_mw(coord, &master, |coord, death| {
                            let death = death.clone();
                            coord.create_atomic("Worker", move |ctx: ProcessCtx| {
                                let h = WorkerHandle::new(ctx, death);
                                let u = h.receive()?;
                                h.submit(u)?;
                                h.die();
                                Ok(())
                            })
                        })
                    })
                    .unwrap();
                    env.shutdown();
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_round_trip,
    bench_port_transfer,
    bench_pool_overhead
);
criterion_main!(benches);
