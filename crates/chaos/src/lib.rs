//! # chaos — deterministic fault schedules and a deadlock watchdog
//!
//! A [`FaultPlan`] is a declarative, seeded schedule of faults that every
//! backend injects the same way: the threads backend, the multi-process
//! TCP backend, and the virtual-time cluster simulator. The plan itself is
//! pure data — *when* instance `i` crashes, *which* reply frame gets a
//! flipped bit, *after how many* collected results the master dies — so a
//! failing chaos run can be replayed exactly from its seed or its textual
//! form.
//!
//! The plan travels to worker child processes through the `MF_CHAOS_PLAN`
//! environment variable in the textual format of [`FaultPlan::parse`] /
//! `Display` (the two round-trip); each child filters the plan down to its
//! own instance with [`FaultPlan::worker_faults`].
//!
//! Job counts are 1-based and count *per incarnation* of an instance: a
//! respawned worker starts counting again, which is what keeps a repeated
//! crash-on-job-2 schedule making progress (one job per incarnation).
//!
//! [`Watchdog`] is the companion: a hard-timeout guard that aborts the
//! whole process with a diagnostic if a chaos run wedges — turning a hang
//! (the one failure mode a test harness cannot observe from inside) into a
//! loud, attributable abort.

use std::fmt;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Instance exits abruptly (no reply, no cleanup) upon receiving its
    /// `on_job`-th job of the current incarnation.
    WorkerCrash {
        /// Pool slot the fault applies to.
        instance: u64,
        /// 1-based job ordinal within one incarnation.
        on_job: u64,
    },
    /// Instance closes its connection upon receiving its `on_job`-th job,
    /// without replying — the process stays up but the session dies.
    ConnDrop {
        /// Pool slot the fault applies to.
        instance: u64,
        /// 1-based job ordinal within one incarnation.
        on_job: u64,
    },
    /// Instance computes its `on_job`-th job normally but ships the reply
    /// in a frame with one payload bit flipped, so the coordinator's CRC
    /// check must reject it.
    FrameCorrupt {
        /// Pool slot the fault applies to.
        instance: u64,
        /// 1-based job ordinal within one incarnation.
        on_job: u64,
    },
    /// Instance sleeps `millis` before computing its `on_job`-th job —
    /// heartbeats keep flowing, so the coordinator must *not* declare it
    /// dead.
    ConnStall {
        /// Pool slot the fault applies to.
        instance: u64,
        /// 1-based job ordinal within one incarnation.
        on_job: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Instance stretches its heartbeat cadence by `millis`, probing the
    /// coordinator's silence-timeout margin.
    HeartbeatDelay {
        /// Pool slot the fault applies to.
        instance: u64,
        /// Extra delay per heartbeat, milliseconds.
        millis: u64,
    },
    /// The master process dies right after persisting its `at_result`-th
    /// completed result (counting restored results on a resumed run, so
    /// the fault fires at most once per checkpoint position).
    MasterKill {
        /// 1-based count of completed results.
        at_result: u64,
    },
    /// The serving daemon SIGKILLs itself right after *journaling* its
    /// `at_served`-th engine outcome of the current incarnation — before
    /// the reply is sent, the nastiest point for exactly-once delivery.
    /// Counting is per incarnation, so the relaunched daemon (given a
    /// fresh plan) runs clean.
    DaemonKill {
        /// 1-based count of journaled outcomes within one incarnation.
        at_served: u64,
    },
    /// In a sharded fleet, shard master `pool` dies mid-run (after
    /// dispatching half its assigned queue). The root supervisor must
    /// re-home the dead pool's workers and still-queued jobs onto the
    /// surviving shards — exactly once.
    PoolKill {
        /// 0-based shard (pool) index whose master dies.
        pool: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::WorkerCrash { instance, on_job } => write!(f, "crash:{instance}@{on_job}"),
            FaultKind::ConnDrop { instance, on_job } => write!(f, "drop:{instance}@{on_job}"),
            FaultKind::FrameCorrupt { instance, on_job } => {
                write!(f, "corrupt:{instance}@{on_job}")
            }
            FaultKind::ConnStall {
                instance,
                on_job,
                millis,
            } => write!(f, "stall:{instance}@{on_job}:{millis}"),
            FaultKind::HeartbeatDelay { instance, millis } => {
                write!(f, "hbdelay:{instance}:{millis}")
            }
            FaultKind::MasterKill { at_result } => write!(f, "masterkill@{at_result}"),
            FaultKind::DaemonKill { at_served } => write!(f, "daemonkill@{at_served}"),
            FaultKind::PoolKill { pool } => write!(f, "poolkill@{pool}"),
        }
    }
}

/// The per-instance slice of a plan, in the vocabulary a worker process
/// understands. At most one fault of each flavour applies per incarnation
/// (the first in plan order wins).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerFaults {
    /// Exit abruptly on this 1-based job ordinal.
    pub crash_on_job: Option<u64>,
    /// Close the connection (no reply) on this job ordinal.
    pub drop_on_job: Option<u64>,
    /// Corrupt the reply frame of this job ordinal.
    pub corrupt_on_job: Option<u64>,
    /// Sleep `(job, millis)` before computing that job.
    pub stall_on_job: Option<(u64, u64)>,
    /// Stretch the heartbeat cadence by this many milliseconds.
    pub heartbeat_delay_ms: Option<u64>,
}

impl WorkerFaults {
    /// True when no fault applies to this instance.
    pub fn is_empty(&self) -> bool {
        *self == WorkerFaults::default()
    }
}

/// A deterministic, replayable schedule of faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed this plan was generated from (also seeds any randomness a
    /// backend needs while *executing* the plan, e.g. the simulator's
    /// partial-compute fraction on a crash).
    pub seed: u64,
    /// The scheduled faults, in declaration order.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty plan with a seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Append a fault (builder style).
    pub fn push(mut self, fault: FaultKind) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Generate a random worker-fault schedule from a seed: 1–3 faults
    /// spread over `instances` slots and the first `jobs` job ordinals.
    ///
    /// Crashes and drops are never scheduled on a slot's *first* job, so
    /// every incarnation completes at least one job — with a retry budget
    /// of at least `2 × faults` the run is guaranteed to finish, which is
    /// the "budgets suffice ⇒ bit-identical" half of the chaos-harness
    /// invariant.
    pub fn from_seed(seed: u64, instances: u64, jobs: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00c5_a05c_0de0_f001);
        let mut plan = FaultPlan::new(seed);
        let n = 1 + (rng.gen::<f64>() * 3.0) as u64; // 1..=3
        let pick = |rng: &mut StdRng, hi: u64| -> u64 { (rng.gen::<f64>() * hi as f64) as u64 };
        // Job ordinals count per incarnation of one slot, so only the
        // first ~jobs/instances ordinals are reachable — schedule within
        // that range or the fault would never fire.
        let reachable = jobs.div_ceil(instances.max(1)).max(2);
        for _ in 0..n {
            let instance = pick(&mut rng, instances.max(1));
            // Job 2..=reachable: never the first job of an incarnation.
            let on_job = 2 + pick(&mut rng, reachable - 1);
            let fault = match pick(&mut rng, 4) {
                0 => FaultKind::WorkerCrash { instance, on_job },
                1 => FaultKind::ConnDrop { instance, on_job },
                2 => FaultKind::FrameCorrupt { instance, on_job },
                _ => FaultKind::ConnStall {
                    instance,
                    on_job,
                    millis: 50 + pick(&mut rng, 200),
                },
            };
            plan.faults.push(fault);
        }
        plan
    }

    /// [`FaultPlan::from_seed`] plus a master kill at a seed-chosen result
    /// count in `1..=jobs`.
    pub fn from_seed_with_master_kill(seed: u64, instances: u64, jobs: u64) -> FaultPlan {
        let mut plan = FaultPlan::from_seed(seed, instances, jobs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00c5_a05c_0de0_f002);
        let at_result = 1 + (rng.gen::<f64>() * jobs.max(1) as f64) as u64;
        plan.faults.push(FaultKind::MasterKill { at_result });
        plan
    }

    /// The slice of this plan that applies to worker slot `instance`.
    pub fn worker_faults(&self, instance: u64) -> WorkerFaults {
        let mut w = WorkerFaults::default();
        for f in &self.faults {
            match *f {
                FaultKind::WorkerCrash {
                    instance: i,
                    on_job,
                } if i == instance => {
                    w.crash_on_job.get_or_insert(on_job);
                }
                FaultKind::ConnDrop {
                    instance: i,
                    on_job,
                } if i == instance => {
                    w.drop_on_job.get_or_insert(on_job);
                }
                FaultKind::FrameCorrupt {
                    instance: i,
                    on_job,
                } if i == instance => {
                    w.corrupt_on_job.get_or_insert(on_job);
                }
                FaultKind::ConnStall {
                    instance: i,
                    on_job,
                    millis,
                } if i == instance => {
                    w.stall_on_job.get_or_insert((on_job, millis));
                }
                FaultKind::HeartbeatDelay {
                    instance: i,
                    millis,
                } if i == instance => {
                    w.heartbeat_delay_ms.get_or_insert(millis);
                }
                _ => {}
            }
        }
        w
    }

    /// The master-kill position, if the plan schedules one (first wins).
    pub fn master_kill(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::MasterKill { at_result } => Some(*at_result),
            _ => None,
        })
    }

    /// The daemon-kill position, if the plan schedules one (first wins).
    pub fn daemon_kill(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::DaemonKill { at_served } => Some(*at_served),
            _ => None,
        })
    }

    /// The shard (pool) whose master a `poolkill` token sentences, if any
    /// (first wins).
    pub fn pool_kill(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::PoolKill { pool } => Some(*pool),
            _ => None,
        })
    }

    /// Parse the textual form: comma-separated fault tokens, optionally
    /// with a `seed:S` token. Grammar (all numbers decimal):
    ///
    /// ```text
    /// plan     := token ("," token)*  |  ""        (empty plan)
    /// token    := "seed:" S
    ///           | "crash:" I "@" N | "drop:" I "@" N | "corrupt:" I "@" N
    ///           | "stall:" I "@" N ":" MS
    ///           | "hbdelay:" I ":" MS
    ///           | "masterkill@" K
    ///           | "daemonkill@" K
    /// ```
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for token in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(v) = token.strip_prefix("seed:") {
                plan.seed = num(v, token)?;
            } else if let Some(v) = token.strip_prefix("crash:") {
                let (i, n) = at_pair(v, token)?;
                plan.faults.push(FaultKind::WorkerCrash {
                    instance: i,
                    on_job: n,
                });
            } else if let Some(v) = token.strip_prefix("drop:") {
                let (i, n) = at_pair(v, token)?;
                plan.faults.push(FaultKind::ConnDrop {
                    instance: i,
                    on_job: n,
                });
            } else if let Some(v) = token.strip_prefix("corrupt:") {
                let (i, n) = at_pair(v, token)?;
                plan.faults.push(FaultKind::FrameCorrupt {
                    instance: i,
                    on_job: n,
                });
            } else if let Some(v) = token.strip_prefix("stall:") {
                let (head, ms) = v
                    .rsplit_once(':')
                    .ok_or_else(|| format!("bad fault token {token:?}: expected I@N:MS"))?;
                let (i, n) = at_pair(head, token)?;
                plan.faults.push(FaultKind::ConnStall {
                    instance: i,
                    on_job: n,
                    millis: num(ms, token)?,
                });
            } else if let Some(v) = token.strip_prefix("hbdelay:") {
                let (i, ms) = v
                    .split_once(':')
                    .ok_or_else(|| format!("bad fault token {token:?}: expected I:MS"))?;
                plan.faults.push(FaultKind::HeartbeatDelay {
                    instance: num(i, token)?,
                    millis: num(ms, token)?,
                });
            } else if let Some(v) = token.strip_prefix("masterkill@") {
                plan.faults.push(FaultKind::MasterKill {
                    at_result: num(v, token)?,
                });
            } else if let Some(v) = token.strip_prefix("daemonkill@") {
                plan.faults.push(FaultKind::DaemonKill {
                    at_served: num(v, token)?,
                });
            } else if let Some(v) = token.strip_prefix("poolkill@") {
                plan.faults.push(FaultKind::PoolKill {
                    pool: num(v, token)?,
                });
            } else {
                return Err(format!("unknown fault token {token:?}"));
            }
        }
        Ok(plan)
    }
}

fn num(s: &str, token: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("bad number {s:?} in fault token {token:?}"))
}

fn at_pair(s: &str, token: &str) -> Result<(u64, u64), String> {
    let (i, n) = s
        .split_once('@')
        .ok_or_else(|| format!("bad fault token {token:?}: expected I@N"))?;
    Ok((num(i, token)?, num(n, token)?))
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed:{}", self.seed)?;
        for fault in &self.faults {
            write!(f, ",{fault}")?;
        }
        Ok(())
    }
}

/// A hard-timeout guard: if it is not dropped (or [`Watchdog::disarm`]ed)
/// within `timeout`, the whole process aborts with a diagnostic naming the
/// guarded section. This is how the chaos harness (and any integration
/// test that wraps itself in one) upholds "never a hang": a wedged run
/// becomes a loud bounded-time failure instead of an eternal silence.
#[derive(Debug)]
pub struct Watchdog {
    cancel: std::sync::mpsc::Sender<()>,
}

impl Watchdog {
    /// Arm a watchdog over the section named `label`.
    pub fn arm(label: &str, timeout: Duration) -> Watchdog {
        let (cancel, expired) = std::sync::mpsc::channel::<()>();
        let label = label.to_string();
        std::thread::spawn(move || {
            match expired.recv_timeout(timeout) {
                // Guard dropped (sender disconnected) or disarmed in time.
                Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    eprintln!(
                        "watchdog: {label:?} still running after {timeout:?} — aborting process"
                    );
                    std::process::abort();
                }
            }
        });
        Watchdog { cancel }
    }

    /// Disarm explicitly (dropping the guard does the same).
    pub fn disarm(self) {
        let _ = self.cancel.send(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_text_round_trips() {
        let plan = FaultPlan::new(42)
            .push(FaultKind::WorkerCrash {
                instance: 0,
                on_job: 2,
            })
            .push(FaultKind::ConnDrop {
                instance: 1,
                on_job: 3,
            })
            .push(FaultKind::FrameCorrupt {
                instance: 1,
                on_job: 1,
            })
            .push(FaultKind::ConnStall {
                instance: 0,
                on_job: 4,
                millis: 250,
            })
            .push(FaultKind::HeartbeatDelay {
                instance: 1,
                millis: 800,
            })
            .push(FaultKind::MasterKill { at_result: 3 })
            .push(FaultKind::DaemonKill { at_served: 9 })
            .push(FaultKind::PoolKill { pool: 1 });
        let text = plan.to_string();
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
        assert_eq!(
            text,
            "seed:42,crash:0@2,drop:1@3,corrupt:1@1,stall:0@4:250,hbdelay:1:800,masterkill@3,daemonkill@9,poolkill@1"
        );
    }

    #[test]
    fn empty_and_bad_tokens() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("seed:7").unwrap().is_empty());
        assert!(FaultPlan::parse("frobnicate:1@2").is_err());
        assert!(FaultPlan::parse("crash:x@2").is_err());
        assert!(FaultPlan::parse("crash:1").is_err());
        assert!(FaultPlan::parse("stall:1@2").is_err());
    }

    #[test]
    fn worker_faults_filters_by_instance() {
        let plan = FaultPlan::parse("crash:0@2,corrupt:1@3,hbdelay:0:100,masterkill@4").unwrap();
        let w0 = plan.worker_faults(0);
        assert_eq!(w0.crash_on_job, Some(2));
        assert_eq!(w0.heartbeat_delay_ms, Some(100));
        assert_eq!(w0.corrupt_on_job, None);
        let w1 = plan.worker_faults(1);
        assert_eq!(w1.corrupt_on_job, Some(3));
        assert!(plan.worker_faults(2).is_empty());
        assert_eq!(plan.master_kill(), Some(4));
        assert_eq!(plan.daemon_kill(), None);
        let dk = FaultPlan::parse("daemonkill@7").unwrap();
        assert_eq!(dk.daemon_kill(), Some(7));
        assert_eq!(dk.master_kill(), None);
        assert_eq!(dk.pool_kill(), None);
        let pk = FaultPlan::parse("poolkill@2").unwrap();
        assert_eq!(pk.pool_kill(), Some(2));
    }

    #[test]
    fn from_seed_is_deterministic_and_spares_first_jobs() {
        for seed in 0..50 {
            let a = FaultPlan::from_seed(seed, 2, 5);
            let b = FaultPlan::from_seed(seed, 2, 5);
            assert_eq!(a, b);
            assert!(!a.is_empty() && a.faults.len() <= 3);
            for f in &a.faults {
                match *f {
                    FaultKind::WorkerCrash { instance, on_job }
                    | FaultKind::ConnDrop { instance, on_job }
                    | FaultKind::FrameCorrupt { instance, on_job }
                    | FaultKind::ConnStall {
                        instance, on_job, ..
                    } => {
                        assert!(instance < 2);
                        assert!(on_job >= 2, "first job of an incarnation must be spared");
                    }
                    _ => {}
                }
            }
            assert_eq!(a.master_kill(), None);
            let k = FaultPlan::from_seed_with_master_kill(seed, 2, 5);
            let at = k.master_kill().expect("master kill scheduled");
            assert!((1..=5).contains(&at));
        }
        assert_ne!(FaultPlan::from_seed(1, 2, 5), FaultPlan::from_seed(2, 2, 5));
    }

    #[test]
    fn watchdog_disarms_in_time() {
        let w = Watchdog::arm("quick section", Duration::from_secs(30));
        w.disarm();
        let w2 = Watchdog::arm("dropped section", Duration::from_secs(30));
        drop(w2); // must not abort
    }
}
