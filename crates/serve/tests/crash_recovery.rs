//! Crash-durable serving, end to end: a real `mf-served` process is
//! SIGKILLed at seeded points (via the `daemonkill@N` chaos token, which
//! fires *after* an outcome is journaled but *before* it is sent — the
//! nastiest window), a supervisor restarts it on the same journal, and
//! resumable clients reconnect with their tokens. Every submitted job
//! must resolve exactly once, bit-identical to the sequential oracle —
//! zero lost replies, zero application-level duplicates, however many
//! times the daemon dies.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serve::proto::ServeMsg;
use serve::{Backoff, TenantClient};
use solver::sequential::SequentialApp;
use transport::Addr;

const TOL: f64 = 1e-3;

fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("serve-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    (base.join("sock"), base.join("journal"))
}

fn spawn_daemon(sock: &Path, journal: &Path, faults: Option<&str>) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mf-served"));
    cmd.arg("--listen")
        .arg(format!("unix:{}", sock.display()))
        .arg("--backend")
        .arg("sim")
        .arg("--journal")
        .arg(journal)
        .arg("--capacity-level")
        .arg("4")
        .arg("--queue-cap")
        .arg("256")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(f) = faults {
        cmd.arg("--faults").arg(f);
    }
    cmd.spawn().expect("spawn mf-served")
}

/// Restart the daemon every time it dies, walking a per-incarnation fault
/// schedule (`None` = run clean). Returns the observed kill count once
/// `done` is set and the daemon exits on its own.
fn supervise(
    sock: PathBuf,
    journal: PathBuf,
    mut child: Child,
    fault_schedule: Vec<Option<String>>,
    done: Arc<AtomicBool>,
) -> std::thread::JoinHandle<(u32, bool)> {
    std::thread::spawn(move || {
        let mut incarnation = 0usize;
        let mut kills = 0u32;
        loop {
            let status = child.wait().expect("wait mf-served");
            if done.load(Ordering::Acquire) {
                return (kills, status.success());
            }
            assert!(
                !status.success(),
                "daemon exited cleanly before the drain was requested"
            );
            kills += 1;
            incarnation += 1;
            let faults = fault_schedule
                .get(incarnation)
                .and_then(|f| f.as_deref())
                .map(str::to_string);
            child = spawn_daemon(&sock, &journal, faults.as_deref());
        }
    })
}

/// Submit `jobs`, collect every reply exactly once, resume through any
/// number of disconnects. Panics on a duplicate, a drift from the oracle,
/// or a failed resume.
fn run_tenant(
    addr: &Addr,
    name: &str,
    jobs: &[(u64, u32, u32)],
    oracle: &HashMap<(u32, u32), (Vec<f64>, f64, u64)>,
    seed: u64,
    suppressed: &AtomicU64,
) {
    let mut backoff = Backoff::with(Duration::from_millis(5), Duration::from_millis(250), seed);
    let mut c = loop {
        match TenantClient::connect(addr, name, 1) {
            Ok(c) => break c,
            Err(_) => std::thread::sleep(backoff.next(None)),
        }
    };
    backoff.reset();
    // Short relative to the 60s control-drain timeout: a reply that never
    // arrives (lost to a kill window) should trip the resume path fast,
    // not stall the suite. Resume is idempotent, so a spurious timeout
    // under load only costs a reconnect.
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let mut submitted = 0usize;
    let mut seen: HashSet<u64> = HashSet::new();
    while seen.len() < jobs.len() {
        let step: io::Result<()> = (|| {
            while submitted < jobs.len() {
                let (seq, root, level) = jobs[submitted];
                c.submit(seq, root, level, TOL)?;
                submitted += 1;
            }
            match c.recv()? {
                ServeMsg::Done {
                    seq,
                    grids,
                    l2_error,
                    combined,
                    ..
                } => {
                    assert!(
                        seen.insert(seq),
                        "tenant {name}: application-level duplicate reply for seq {seq}"
                    );
                    let (_, root, level) = jobs
                        .iter()
                        .copied()
                        .find(|(s, _, _)| *s == seq)
                        .expect("reply for a seq never submitted");
                    let (exp_combined, exp_l2, exp_grids) = &oracle[&(root, level)];
                    assert_eq!(
                        &combined, exp_combined,
                        "tenant {name} seq {seq}: served field drifted from the \
                         sequential oracle across the crash"
                    );
                    assert_eq!(l2_error, *exp_l2);
                    assert_eq!(grids, *exp_grids);
                }
                ServeMsg::Drained { .. } => {}
                other => panic!("tenant {name}: unexpected reply {other:?}"),
            }
            Ok(())
        })();
        if let Err(e) = step {
            assert!(
                c.resumable(),
                "tenant {name}: journaled daemon handed out no resume token"
            );
            c.resume_with_backoff(&mut backoff, 2_000)
                .unwrap_or_else(|re| panic!("tenant {name}: resume failed after {e}: {re}"));
            c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            backoff.reset();
        }
    }
    suppressed.fetch_add(c.duplicates_suppressed(), Ordering::Relaxed);
    let _ = c.ack();
    let _ = c.bye();
}

/// The full scenario: spawn, load, kill per `fault_schedule`, drain,
/// assert exactly-once + bit-identity throughout. Returns (kills,
/// replayed-duplicates-suppressed).
fn crash_scenario(
    tag: &str,
    tenants: usize,
    jobs_per_tenant: u64,
    schedule: Vec<Option<String>>,
) -> (u32, u64) {
    let (sock, journal) = scratch(tag);
    let addr = Addr::Unix(sock.clone());

    // Job mix: small sim solves, varied shapes.
    let shapes: [(u32, u32); 3] = [(1, 1), (2, 1), (1, 2)];
    let mut oracle: HashMap<(u32, u32), (Vec<f64>, f64, u64)> = HashMap::new();
    for &(root, level) in &shapes {
        let r = SequentialApp::new(root, level, TOL).run().unwrap();
        oracle.insert(
            (root, level),
            (r.combined, r.l2_error, r.per_grid.len() as u64),
        );
    }
    let oracle = Arc::new(oracle);

    let done = Arc::new(AtomicBool::new(false));
    let child = spawn_daemon(&sock, &journal, schedule.first().and_then(|f| f.as_deref()));
    let sup = supervise(
        sock.clone(),
        journal.clone(),
        child,
        schedule,
        Arc::clone(&done),
    );

    let suppressed = Arc::new(AtomicU64::new(0));
    let mut joins = Vec::new();
    for t in 0..tenants {
        let addr = addr.clone();
        let oracle = Arc::clone(&oracle);
        let suppressed = Arc::clone(&suppressed);
        joins.push(std::thread::spawn(move || {
            let jobs: Vec<(u64, u32, u32)> = (1..=jobs_per_tenant)
                .map(|seq| {
                    let (root, level) = shapes[((t as u64 + seq) % 3) as usize];
                    (seq, root, level)
                })
                .collect();
            run_tenant(
                &addr,
                &format!("tenant-{t:02}"),
                &jobs,
                &oracle,
                0xC0FFEE ^ (t as u64),
                &suppressed,
            );
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Every reply is home. Drain the (possibly restarted) daemon and let
    // the supervisor observe a clean, voluntary exit.
    done.store(true, Ordering::Release);
    let mut backoff = Backoff::with(Duration::from_millis(5), Duration::from_millis(250), 7);
    let mut control = loop {
        match TenantClient::connect(&addr, "control", 1) {
            Ok(c) => break c,
            Err(_) => std::thread::sleep(backoff.next(None)),
        }
    };
    control
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    control.send(&ServeMsg::Drain).unwrap();
    loop {
        match control.recv().expect("drain reply") {
            ServeMsg::Drained { .. } => break,
            _ => continue,
        }
    }
    let (kills, clean_exit) = sup.join().unwrap();
    assert!(clean_exit, "final incarnation must drain and exit 0");

    let _ = std::fs::remove_dir_all(sock.parent().unwrap());
    (kills, suppressed.load(Ordering::Relaxed))
}

/// Control: journal on, no kills — the durable path serves like the
/// volatile one.
#[test]
fn journaled_daemon_serves_cleanly_without_faults() {
    let (kills, _) = crash_scenario("clean", 4, 3, vec![None]);
    assert_eq!(kills, 0);
}

/// SIGKILL at each seeded outcome point during a 16-tenant run: recovery
/// + resume deliver all 32 replies bit-identically, exactly once.
#[test]
fn kill_at_every_seeded_point_loses_and_duplicates_nothing() {
    for k in [1u64, 2, 3, 5, 8, 13] {
        let (kills, _) = crash_scenario(
            &format!("kill{k}"),
            16,
            2,
            vec![Some(format!("daemonkill@{k}"))],
        );
        assert_eq!(kills, 1, "kill point {k}: exactly one induced crash");
    }
}

/// Back-to-back crashes: the journal recovered by incarnation 2 was
/// itself written partly by incarnation 1's recovery — compaction and
/// replay must compose.
#[test]
fn repeated_kills_compose_across_incarnations() {
    let (kills, _) = crash_scenario(
        "repeat",
        8,
        4,
        vec![
            Some("daemonkill@3".into()),
            Some("daemonkill@5".into()),
            None,
        ],
    );
    assert_eq!(kills, 2, "both induced crashes must fire");
}
