//! End-to-end daemon tests over a Unix socket: served results are
//! bit-identical to the sequential oracle, backpressure is explicit,
//! fault budgets quarantine, and a drain loses nothing it accepted.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use chaos::{FaultKind, FaultPlan};
use protocol::PaperFaithful;
use renovation::{Engine, EngineOpts, RunMode};
use serve::admission::AdmissionConfig;
use serve::daemon::{Daemon, DaemonConfig, EngineBuilder};
use serve::proto::{RejectReason, ServeMsg};
use serve::TenantClient;
use solver::sequential::SequentialApp;
use transport::Addr;

fn sock_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("serve-{}-{name}.sock", std::process::id()))
}

fn threads_engine(capacity_level: u32) -> EngineBuilder {
    Box::new(move || {
        Engine::threads(
            RunMode::Parallel,
            Arc::new(PaperFaithful),
            EngineOpts {
                capacity_level,
                ..EngineOpts::default()
            },
        )
    })
}

fn start_daemon(name: &str, admission: AdmissionConfig, faults: Option<FaultPlan>) -> Daemon {
    let capacity = admission.capacity_level;
    Daemon::start(
        DaemonConfig {
            addr: Addr::Unix(sock_path(name)),
            reactor_threads: 2,
            admission,
            tenant_faults: faults,
            drain_grace: Duration::from_secs(5),
            journal: None,
        },
        threads_engine(capacity),
    )
    .expect("daemon start")
}

/// Three tenants, mixed problem sizes, pipelined submits: every `Done`
/// carries the *exact* bits of a solo sequential run — the whole field,
/// not a summary — and the drain finishes every accepted job.
#[test]
fn served_results_are_bit_identical_to_the_sequential_oracle() {
    let daemon = start_daemon(
        "identity",
        AdmissionConfig {
            capacity_level: 3,
            ..AdmissionConfig::default()
        },
        None,
    );
    let addr = daemon.local_addr().clone();

    let mix: Vec<(u32, u32)> = vec![(2, 2), (1, 3), (2, 1), (1, 2), (2, 0), (1, 1)];
    let mut joins = Vec::new();
    for t in 0..3u32 {
        let addr = addr.clone();
        let mix = mix.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = TenantClient::connect(&addr, &format!("tenant-{t}"), 1).expect("connect");
            c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            // Pipeline the whole mix, then collect replies in any order.
            for (seq, (root, level)) in mix.iter().enumerate() {
                c.submit(seq as u64, *root, *level, 1e-3).expect("submit");
            }
            let mut got = 0;
            while got < mix.len() {
                match c.recv().expect("recv") {
                    ServeMsg::Done {
                        seq,
                        l2_error,
                        combined,
                        grids,
                        ..
                    } => {
                        let (root, level) = mix[seq as usize];
                        let oracle = SequentialApp::new(root, level, 1e-3).run().unwrap();
                        assert_eq!(
                            combined, oracle.combined,
                            "tenant {t} seq {seq}: served field drifted from the solo \
                             sequential run"
                        );
                        assert_eq!(l2_error, oracle.l2_error);
                        assert_eq!(grids as usize, oracle.per_grid.len());
                        got += 1;
                    }
                    other => panic!("tenant {t}: unexpected reply {other:?}"),
                }
            }
            c.bye().unwrap();
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    daemon.drain_trigger().drain();
    let report = daemon.wait();
    assert_eq!(report.served, 18, "3 tenants × 6 jobs all served");
    assert_eq!(report.rejected, 0);
    assert_eq!(report.orphaned, 0);
    assert!(report.clean, "drain must flush and join cleanly");
    assert_eq!(report.engine.expect("engine summary").jobs_served, 18);
}

/// A burst far beyond the bounded queue is answered with typed
/// `Reject{QueueFull, retry_after}` replies — never buffered without
/// limit, never dropped silently. Everything accepted still resolves.
#[test]
fn queue_full_backpressure_is_explicit_and_lossless() {
    let daemon = start_daemon(
        "backpressure",
        AdmissionConfig {
            queue_cap: 1,
            capacity_level: 2,
            ..AdmissionConfig::default()
        },
        None,
    );
    let addr = daemon.local_addr().clone();

    let mut c = TenantClient::connect(&addr, "burster", 1).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let burst = 12u64;
    for seq in 0..burst {
        c.submit(seq, 1, 2, 1e-3).expect("submit");
    }
    let mut done = 0u64;
    let mut rejected = 0u64;
    for _ in 0..burst {
        match c.recv().expect("recv") {
            ServeMsg::Done { .. } => done += 1,
            ServeMsg::Reject {
                reason,
                retry_after_ms,
                ..
            } => {
                assert_eq!(reason, RejectReason::QueueFull);
                assert!(retry_after_ms > 0, "backpressure must carry a retry hint");
                rejected += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(
        done + rejected,
        burst,
        "every submit gets exactly one answer"
    );
    assert!(done >= 1, "the queue still serves while rejecting");
    assert!(
        rejected >= 1,
        "a 12-deep burst into a 1-deep queue must trip backpressure"
    );
    c.bye().unwrap();

    daemon.drain_trigger().drain();
    let report = daemon.wait();
    assert_eq!(report.served, done);
    assert_eq!(report.rejected, rejected);
    assert!(report.clean);
}

/// Per-tenant chaos: with no retry budget, an injected engine failure on
/// the tenant's second job surfaces as `Fail`, spends the fault budget,
/// and quarantines the tenant — while the *other* tenant sails on.
#[test]
fn fault_budget_quarantines_the_faulty_tenant_only() {
    let plan = FaultPlan::new(7).push(FaultKind::WorkerCrash {
        instance: 0, // tenant ordinal 0 = first Hello = "flaky"
        on_job: 2,
    });
    let daemon = start_daemon(
        "faults",
        AdmissionConfig {
            capacity_level: 2,
            retry_budget: 0,
            fault_budget: 1,
            ..AdmissionConfig::default()
        },
        Some(plan),
    );
    let addr = daemon.local_addr().clone();

    let mut flaky = TenantClient::connect(&addr, "flaky", 1).expect("connect");
    flaky
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Serial submits so the dispatched-job ordinals are deterministic.
    flaky.submit(1, 1, 1, 1e-3).unwrap();
    assert!(matches!(
        flaky.recv().unwrap(),
        ServeMsg::Done { seq: 1, .. }
    ));
    flaky.submit(2, 1, 1, 1e-3).unwrap();
    match flaky.recv().unwrap() {
        ServeMsg::Fail { seq, error, .. } => {
            assert_eq!(seq, 2);
            assert!(error.contains("chaos"), "unexpected failure text {error:?}");
        }
        other => panic!("expected Fail, got {other:?}"),
    }
    // Budget spent: quarantined.
    flaky.submit(3, 1, 1, 1e-3).unwrap();
    match flaky.recv().unwrap() {
        ServeMsg::Reject { seq, reason, .. } => {
            assert_eq!(seq, 3);
            assert_eq!(reason, RejectReason::FaultBudgetExhausted);
        }
        other => panic!("expected quarantine Reject, got {other:?}"),
    }

    // A second tenant is untouched by the first one's quarantine.
    let mut steady = TenantClient::connect(&addr, "steady", 1).expect("connect");
    steady
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    steady.submit(1, 1, 1, 1e-3).unwrap();
    assert!(matches!(
        steady.recv().unwrap(),
        ServeMsg::Done { seq: 1, .. }
    ));

    flaky.bye().unwrap();
    steady.bye().unwrap();
    daemon.drain_trigger().drain();
    let report = daemon.wait();
    let rows = &report.stats.tenants;
    let flaky_row = rows.iter().find(|r| r.tenant == "flaky").unwrap();
    let steady_row = rows.iter().find(|r| r.tenant == "steady").unwrap();
    assert_eq!(flaky_row.failed, 1);
    assert_eq!(flaky_row.faults_left, 0);
    assert_eq!(steady_row.failed, 0);
    assert!(report.clean);
}

/// A tenant-initiated `Drain` mid-pipeline: every job accepted before the
/// drain resolves with `Done`, later submits are rejected `Draining`, the
/// session hears `Drained{served}` last, and the daemon reports a clean,
/// lossless stop.
#[test]
fn drain_finishes_accepted_jobs_and_loses_nothing() {
    let daemon = start_daemon(
        "drain",
        AdmissionConfig {
            capacity_level: 2,
            queue_cap: 64,
            ..AdmissionConfig::default()
        },
        None,
    );
    let addr = daemon.local_addr().clone();

    let mut c = TenantClient::connect(&addr, "worker-bee", 1).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let before = 10u64;
    for seq in 0..before {
        c.submit(seq, 1, 2, 1e-3).unwrap();
    }
    c.send(&ServeMsg::Drain).unwrap();
    // Submits landing after the drain marker on the same pipe are
    // refused, not silently eaten.
    for seq in before..before + 3 {
        c.submit(seq, 1, 2, 1e-3).unwrap();
    }

    let mut done = 0u64;
    let mut draining_rejects = 0u64;
    let drained_served;
    loop {
        match c.recv().expect("recv") {
            ServeMsg::Done { .. } => done += 1,
            ServeMsg::Reject { reason, .. } => {
                assert_eq!(reason, RejectReason::Draining);
                draining_rejects += 1;
            }
            ServeMsg::Drained { served } => {
                drained_served = served;
                break;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(done, before, "every pre-drain job must be served");
    assert_eq!(draining_rejects, 3);
    assert_eq!(drained_served, before);

    let report = daemon.wait();
    assert_eq!(report.served, before);
    assert_eq!(report.orphaned, 0, "drain lost accepted jobs");
    assert!(report.clean);
}
