//! Corruption robustness for the serve wire protocol: a hostile (or just
//! unlucky) byte stream must surface as a typed decode error — never a
//! panic, and never a *silently wrong* message.
//!
//! The seed corpus lives in `fuzz/corpus/serve_proto/` (one framed
//! message per file, covering every `ServeMsg` variant). Regenerate it
//! after an intentional protocol change with:
//!
//! ```text
//! MC_BLESS=1 cargo test -p serve --test proto_robustness
//! ```
//!
//! Two layers are attacked separately:
//!
//! 1. **Framed bytes** (what the socket actually carries): every single-
//!    bit flip must either fail to deframe/decode or reproduce the
//!    original message byte-exactly (a flip confined to padding it is
//!    not) — the frame CRC must never let a *different* message through.
//! 2. **Bare payloads** (post-deframe, as if the CRC were already
//!    defeated): `ServeMsg::decode` must return `Ok` or `Err`, never
//!    panic, under single-bit flips, random multi-bit flips, truncation,
//!    and garbage extension.

use std::path::PathBuf;

use serve::proto::{RejectReason, ServeMsg};
use transport::FrameDecoder;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../fuzz/corpus/serve_proto")
        .canonicalize()
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus/serve_proto")
        })
}

/// One exemplar per variant, fields chosen to exercise every scalar
/// width, an empty vec, a non-empty vec, and non-trivial strings.
fn exemplars() -> Vec<(&'static str, ServeMsg)> {
    vec![
        (
            "hello",
            ServeMsg::Hello {
                version: 2,
                tenant: "tenant-α".into(),
                weight: 7,
                token: 0x0123_4567_89ab_cdef,
                last_reply: 41,
            },
        ),
        (
            "welcome",
            ServeMsg::Welcome {
                session: 9,
                token: u64::MAX >> 1,
            },
        ),
        (
            "submit",
            ServeMsg::Submit {
                seq: 17,
                root: 2,
                level: 5,
                tol: 1e-6,
            },
        ),
        (
            "done",
            ServeMsg::Done {
                seq: 17,
                rseq: 42,
                grids: 31,
                l2_error: 3.2e-5,
                combined: vec![0.0, -1.5, f64::MIN_POSITIVE, 1234.5678],
            },
        ),
        (
            "done-empty",
            ServeMsg::Done {
                seq: 18,
                rseq: 43,
                grids: 0,
                l2_error: 0.0,
                combined: vec![],
            },
        ),
        (
            "fail",
            ServeMsg::Fail {
                seq: 19,
                rseq: 44,
                error: "engine exploded: chaos".into(),
            },
        ),
        (
            "reject",
            ServeMsg::Reject {
                seq: 20,
                rseq: 45,
                retry_after_ms: 25,
                reason: RejectReason::QueueFull,
            },
        ),
        ("ack", ServeMsg::Ack { upto: 45 }),
        ("drain", ServeMsg::Drain),
        ("drained", ServeMsg::Drained { served: 2048 }),
        ("bye", ServeMsg::Bye),
    ]
}

/// Load (or, under `MC_BLESS=1`, regenerate) the corpus and check every
/// file still decodes to its exemplar.
fn corpus() -> Vec<(String, Vec<u8>, ServeMsg)> {
    let dir = corpus_dir();
    let bless = std::env::var_os("MC_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut out = Vec::new();
    for (name, msg) in exemplars() {
        let path = dir.join(format!("{name}.bin"));
        let frame = msg.to_frame().unwrap();
        if bless {
            std::fs::write(&path, &frame).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing corpus seed {} ({e}); run with MC_BLESS=1",
                path.display()
            )
        });
        assert_eq!(
            bytes, frame,
            "corpus seed {name} drifted from the current encoding; regenerate with \
             MC_BLESS=1 if the protocol change was intentional"
        );
        out.push((name.to_string(), bytes, msg));
    }
    out
}

fn deframe_one(bytes: &[u8]) -> Result<Option<Vec<u8>>, String> {
    let mut dec = FrameDecoder::new();
    dec.push(bytes);
    match dec.next_frame() {
        Err(e) => Err(e.to_string()),
        Ok(p) => Ok(p),
    }
}

/// Layer 1: every single-bit flip of every framed seed either fails (at
/// the deframe CRC or the decode) or yields the original message — a
/// corrupted frame must never decode to something *else*.
#[test]
fn single_bit_flips_never_smuggle_a_different_message() {
    let mut flips = 0u64;
    let mut caught = 0u64;
    for (name, frame, msg) in corpus() {
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut evil = frame.clone();
                evil[byte] ^= 1 << bit;
                flips += 1;
                let survived = std::panic::catch_unwind(|| {
                    match deframe_one(&evil) {
                        Err(_) => None,   // CRC / header caught it
                        Ok(None) => None, // length field now asks for more
                        Ok(Some(payload)) => ServeMsg::decode(&payload).ok(),
                    }
                })
                .unwrap_or_else(|_| {
                    panic!("{name}: byte {byte} bit {bit} flip PANICKED the decoder")
                });
                match survived {
                    None => caught += 1,
                    Some(decoded) => assert_eq!(
                        decoded, msg,
                        "{name}: byte {byte} bit {bit} flip decoded to a DIFFERENT message"
                    ),
                }
            }
        }
    }
    // The CRC should be catching virtually everything; if it stopped
    // firing at all the test is vacuous.
    assert!(
        caught * 100 >= flips * 99,
        "only {caught}/{flips} flips were caught — frame integrity checking looks disabled"
    );
}

/// Layer 2: `ServeMsg::decode` on corrupted *bare payloads* (CRC layer
/// presumed defeated) returns `Ok`/`Err`, never panics — under single-bit
/// flips, truncations, and garbage extensions.
#[test]
fn payload_corruption_never_panics_the_decoder() {
    for (name, frame, _) in corpus() {
        let payload = deframe_one(&frame).unwrap().unwrap();
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut evil = payload.clone();
                evil[byte] ^= 1 << bit;
                std::panic::catch_unwind(|| {
                    let _ = ServeMsg::decode(&evil);
                })
                .unwrap_or_else(|_| {
                    panic!("{name}: payload byte {byte} bit {bit} flip panicked decode")
                });
            }
        }
        for cut in 0..payload.len() {
            std::panic::catch_unwind(|| {
                let _ = ServeMsg::decode(&payload[..cut]);
            })
            .unwrap_or_else(|_| panic!("{name}: truncation to {cut} bytes panicked decode"));
        }
        let mut extended = payload.clone();
        extended.extend_from_slice(&[0xFF; 16]);
        std::panic::catch_unwind(|| {
            let _ = ServeMsg::decode(&extended);
        })
        .unwrap_or_else(|_| panic!("{name}: garbage extension panicked decode"));
    }
}

/// Layer 2, shotgun: deterministic xorshift-driven multi-bit mangling of
/// payloads and frames — thousands of corruptions, zero panics required.
#[test]
fn random_mangling_never_panics() {
    let mut state: u64 = 0x5DEE_CE66_D1CE_F00D;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let seeds = corpus();
    for round in 0..4_000u32 {
        let (name, frame, _) = &seeds[(rng() as usize) % seeds.len()];
        let mut evil = frame.clone();
        let flips = 1 + (rng() as usize) % 8;
        for _ in 0..flips {
            let pos = (rng() as usize) % evil.len();
            evil[pos] ^= (rng() % 255 + 1) as u8;
        }
        // Occasionally also truncate mid-frame.
        if rng() % 4 == 0 {
            let keep = (rng() as usize) % evil.len();
            evil.truncate(keep);
        }
        std::panic::catch_unwind(|| match deframe_one(&evil) {
            Err(_) | Ok(None) => {}
            Ok(Some(payload)) => {
                let _ = ServeMsg::decode(&payload);
            }
        })
        .unwrap_or_else(|_| panic!("{name}: mangling round {round} panicked"));
    }
}
