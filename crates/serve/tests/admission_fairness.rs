//! Fair-share guarantees of the admission layer, pinned deterministically:
//! a tenant that floods its bounded queue cannot starve a light tenant,
//! and weights shift the interleave in the promised ratio.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serve::admission::{Admission, AdmissionConfig, Next, QueuedJob};

fn job(tenant: &Arc<str>, seq: u64) -> QueuedJob {
    QueuedJob {
        tenant: Arc::clone(tenant),
        session: 1,
        seq,
        root: 1,
        level: 2,
        tol: 1e-3,
        attempts: 0,
        enqueued: Instant::now(),
    }
}

fn pop_order(adm: &Admission, total: usize) -> Vec<(String, u64)> {
    let mut order = Vec::with_capacity(total);
    for _ in 0..total {
        match adm.next(Duration::from_secs(1)) {
            Next::Job(j) => {
                order.push((j.tenant.to_string(), j.seq));
                adm.complete(&j, true);
            }
            other => panic!("expected a job, got {other:?}"),
        }
    }
    order
}

/// The starvation test: 500 queued greedy jobs, 10 light jobs arriving
/// behind them. In arrival (FIFO) order the light tenant's last job would
/// wait out all 500; under fair queuing the two interleave 1:1, so every
/// light job is served within a couple of pops of its fair slot and the
/// light tenant's p99 queue position is two orders of magnitude better
/// than the greedy backlog it arrived behind.
#[test]
fn greedy_tenant_cannot_starve_a_light_tenants_p99() {
    let adm = Admission::new(AdmissionConfig {
        queue_cap: 1000,
        ..AdmissionConfig::default()
    });
    adm.register("greedy", 1);
    adm.register("light", 1);
    let greedy: Arc<str> = Arc::from("greedy");
    let light: Arc<str> = Arc::from("light");
    for i in 0..500 {
        adm.offer(job(&greedy, i));
    }
    for i in 0..10 {
        adm.offer(job(&light, 1000 + i));
    }

    let order = pop_order(&adm, 510);
    let light_positions: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|(_, (t, _))| t == "light")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(light_positions.len(), 10);
    // Light job k's fair slot is ~2k (1:1 interleave); allow slack for the
    // clock forwarding at the head, none of which may compound.
    for (k, pos) in light_positions.iter().enumerate() {
        assert!(
            *pos <= 2 * k + 4,
            "light job {k} served at position {pos}, not interleaved \
             (arrival order would be {})",
            500 + k
        );
    }
    // The p99 claim, in queue positions: the light tenant's worst wait is
    // a sliver of the greedy tenant's backlog.
    let worst = *light_positions.last().unwrap();
    assert!(
        worst < 30,
        "light tenant's worst-case position {worst} is inside the greedy backlog"
    );
}

/// Weights steer the interleave: a weight-3 tenant gets 3 of every 4 pops
/// while both queues are non-empty, exactly.
#[test]
fn weights_split_service_in_ratio() {
    let adm = Admission::new(AdmissionConfig {
        queue_cap: 1000,
        ..AdmissionConfig::default()
    });
    adm.register("paying", 3);
    adm.register("free", 1);
    let paying: Arc<str> = Arc::from("paying");
    let free: Arc<str> = Arc::from("free");
    for i in 0..90 {
        adm.offer(job(&paying, i));
    }
    for i in 0..30 {
        adm.offer(job(&free, 1000 + i));
    }
    let order = pop_order(&adm, 120);
    // While both are backlogged (first 120 pops cover exactly both
    // queues), every window of 4 pops contains exactly 3 paying jobs.
    let paying_served = order.iter().take(40).filter(|(t, _)| t == "paying").count();
    assert_eq!(paying_served, 30, "3:1 weights must serve 3 of every 4");
}

/// An idle tenant's virtual clock forwards on wake: going quiet does not
/// bank a burst entitlement that would starve the others later.
#[test]
fn idle_time_is_not_a_burst_entitlement() {
    let adm = Admission::new(AdmissionConfig {
        queue_cap: 1000,
        ..AdmissionConfig::default()
    });
    adm.register("steady", 1);
    adm.register("sleeper", 1);
    let steady: Arc<str> = Arc::from("steady");
    let sleeper: Arc<str> = Arc::from("sleeper");
    // The sleeper is absent while steady consumes 100 service slots.
    for i in 0..100 {
        adm.offer(job(&steady, i));
    }
    let _ = pop_order(&adm, 100);
    // Now both offer 20: the sleeper must *share* from here (1:1), not
    // get 20 consecutive pops as repayment for its idle time.
    for i in 0..20 {
        adm.offer(job(&steady, 200 + i));
        adm.offer(job(&sleeper, 300 + i));
    }
    let order = pop_order(&adm, 40);
    let sleeper_in_first_10 = order
        .iter()
        .take(10)
        .filter(|(t, _)| t == "sleeper")
        .count();
    assert!(
        (4..=6).contains(&sleeper_in_first_10),
        "woken tenant took {sleeper_in_first_10} of the first 10 pops; \
         expected a fair half, not a banked burst"
    );
}
