//! Admission control: bounded per-tenant queues, weighted fair share,
//! explicit backpressure, and per-tenant retry/fault budgets.
//!
//! This is the gate between "a socket delivered a request" and
//! "`Engine::submit` runs it". Three properties, each load-bearing:
//!
//! * **Bounded queues.** Every tenant owns a queue capped at
//!   [`AdmissionConfig::queue_cap`]. A full queue rejects with an explicit
//!   retry-after hint instead of buffering without limit — the reply is
//!   cheap, the unbounded queue is how a daemon dies.
//! * **Weighted fair share.** The dispatcher pops jobs in *virtual-time*
//!   order (start-time fair queuing): each tenant carries a virtual clock
//!   advanced by `1/weight` per served job, and [`Admission::next`] always
//!   picks the non-empty tenant with the smallest clock. A tenant that
//!   floods its queue cannot push another tenant's jobs back by more than
//!   its own fair share — a greedy tenant interleaves with a light one
//!   instead of starving it (the fairness tests pin this). An idle
//!   tenant's clock is forwarded to "now" when it wakes, so saved-up idle
//!   time is not a burst entitlement.
//! * **Budgets.** Engine-side failures charge the tenant that submitted
//!   them: first against a retry budget (the job is re-queued at the front,
//!   once), then against a fault budget. A tenant that spends its fault
//!   budget is quarantined — subsequent submissions are rejected — so one
//!   tenant's pathological workload cannot consume the fleet's recovery
//!   machinery indefinitely.
//!
//! The struct is deliberately socket-free: the reactor calls [`offer`],
//! the dispatcher thread calls [`next`]/[`complete`], and the fairness
//! tests drive it directly with no I/O at all.
//!
//! [`offer`]: Admission::offer
//! [`next`]: Admission::next
//! [`complete`]: Admission::complete

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::proto::RejectReason;

/// Admission-layer tuning.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Per-tenant queue bound; an offer beyond it is rejected.
    pub queue_cap: usize,
    /// Weight assigned when a tenant asks for 0 (i.e. "default").
    pub default_weight: u32,
    /// Largest honoured weight request.
    pub max_weight: u32,
    /// Retry-after hint attached to backpressure rejections.
    pub retry_after: Duration,
    /// Engine-side failures a tenant may accrue before quarantine.
    pub fault_budget: u32,
    /// Failed jobs re-queued (once each) before they fail to the tenant.
    pub retry_budget: u32,
    /// Largest job level admitted (the fleet's provisioned capacity).
    pub capacity_level: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_cap: 128,
            default_weight: 1,
            max_weight: 16,
            retry_after: Duration::from_millis(25),
            fault_budget: 8,
            retry_budget: 4,
            capacity_level: 15,
        }
    }
}

/// One admitted-but-not-yet-served job.
#[derive(Clone, Debug)]
pub struct QueuedJob {
    /// Fair-share identity this job is charged to.
    pub tenant: Arc<str>,
    /// Session that submitted it (reply routing).
    pub session: u64,
    /// Tenant-chosen sequence number (reply routing).
    pub seq: u64,
    /// Problem: root refinement level.
    pub root: u32,
    /// Problem: additional refinement.
    pub level: u32,
    /// Problem: integrator tolerance.
    pub tol: f64,
    /// Times this job has been handed to the engine (retry accounting).
    pub attempts: u32,
    /// When admission accepted it (queue-latency accounting).
    pub enqueued: Instant,
}

/// Outcome of one [`Admission::offer`].
#[derive(Debug)]
pub enum Offer {
    /// Accepted; `depth` is the tenant queue depth after the push.
    Enqueued {
        /// Tenant queue depth including this job.
        depth: usize,
    },
    /// Refused — convert into a `Reject` reply.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Suggested back-off.
        retry_after: Duration,
    },
}

/// Outcome of one [`Admission::next`].
#[derive(Debug)]
pub enum Next {
    /// Serve this job.
    Job(QueuedJob),
    /// Draining and every queue is empty and nothing is in flight: stop.
    Drained,
    /// Timed out waiting for work.
    Idle,
}

struct TenantState {
    name: Arc<str>,
    weight: u32,
    queue: VecDeque<QueuedJob>,
    /// Virtual finish tag: advanced `1/weight` per pop.
    vtime: f64,
    faults_left: u32,
    retries_left: u32,
    accepted: u64,
    rejected: u64,
    served: u64,
    failed: u64,
}

struct Shared {
    /// Registration order — the deterministic tie-break for equal vtimes.
    tenants: Vec<TenantState>,
    by_name: HashMap<Arc<str>, usize>,
    /// Global virtual clock: the vtime of the last popped job.
    clock: f64,
    draining: bool,
    queued_total: usize,
    /// Jobs popped by the dispatcher but not yet completed.
    inflight: usize,
    /// Peak of queued + inflight over the daemon's life — the
    /// "concurrent jobs in the system" high-water mark.
    peak_in_system: usize,
    served_total: u64,
    rejected_total: u64,
    /// Accepted jobs whose session vanished before service (these are
    /// *not* drain losses: nobody is waiting for them).
    orphaned: u64,
}

/// Per-tenant statistics snapshot.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Clamped fair-share weight.
    pub weight: u32,
    /// Offers accepted.
    pub accepted: u64,
    /// Offers rejected (backpressure + quarantine).
    pub rejected: u64,
    /// Jobs served with a result.
    pub served: u64,
    /// Jobs that failed after retries.
    pub failed: u64,
    /// Fault budget remaining.
    pub faults_left: u32,
}

/// Whole-layer statistics snapshot.
#[derive(Clone, Debug)]
pub struct AdmissionStats {
    /// Jobs currently queued across all tenants.
    pub queued: usize,
    /// Jobs popped but not completed.
    pub inflight: usize,
    /// Peak queued + inflight observed.
    pub peak_in_system: usize,
    /// Jobs served over the layer's life.
    pub served: u64,
    /// Offers rejected over the layer's life.
    pub rejected: u64,
    /// Accepted jobs dropped because their session disconnected.
    pub orphaned: u64,
    /// Per-tenant breakdown, registration order.
    pub tenants: Vec<TenantStats>,
}

/// The admission gate. Shared between the reactor threads (offering) and
/// the dispatcher thread (consuming).
pub struct Admission {
    cfg: AdmissionConfig,
    m: Mutex<Shared>,
    cv: Condvar,
}

impl Admission {
    /// A fresh gate.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg,
            m: Mutex::new(Shared {
                tenants: Vec::new(),
                by_name: HashMap::new(),
                clock: 0.0,
                draining: false,
                queued_total: 0,
                inflight: 0,
                peak_in_system: 0,
                served_total: 0,
                rejected_total: 0,
                orphaned: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// The configuration this gate enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Register (or re-greet) a tenant, clamping its requested weight.
    /// Returns the tenant's registration ordinal (stable across sessions —
    /// per-tenant fault plans key on it).
    pub fn register(&self, name: &str, requested_weight: u32) -> u64 {
        let mut s = self.m.lock();
        if let Some(&i) = s.by_name.get(name) {
            return i as u64;
        }
        let weight = if requested_weight == 0 {
            self.cfg.default_weight
        } else {
            requested_weight.min(self.cfg.max_weight)
        }
        .max(1);
        let name: Arc<str> = Arc::from(name);
        // A tenant born mid-run starts at the current virtual clock: no
        // credit for time it was not registered.
        let vtime = s.clock;
        let idx = s.tenants.len();
        s.tenants.push(TenantState {
            name: Arc::clone(&name),
            weight,
            queue: VecDeque::new(),
            vtime,
            faults_left: self.cfg.fault_budget,
            retries_left: self.cfg.retry_budget,
            accepted: 0,
            rejected: 0,
            served: 0,
            failed: 0,
        });
        s.by_name.insert(name, idx);
        idx as u64
    }

    /// Recovery side: re-create `name` exactly as the journal recorded
    /// it — in original registration order (ordinals key per-tenant fault
    /// plans), with the fault budget already debited by the journal's
    /// replayed `Fail` count. Restored tenants start at the current
    /// virtual clock like everyone else: a restart levels vtimes, it
    /// never banks credit.
    pub fn restore_tenant(&self, name: &str, weight: u32, failed: u64) -> u64 {
        let idx = self.register(name, weight);
        let mut s = self.m.lock();
        let t = &mut s.tenants[idx as usize];
        t.failed = failed;
        t.faults_left = (self.cfg.fault_budget as u64).saturating_sub(failed) as u32;
        idx
    }

    /// Recovery side: requeue a journaled-but-unfinished job. Bypasses
    /// the drain/capacity/budget/queue-cap gates — this job was already
    /// admitted in a previous incarnation and journal-before-ack means
    /// the client was (or will be, via replay) told so. Unknown tenants
    /// are ignored; restore tenants first.
    pub fn restore(&self, job: QueuedJob) {
        let mut s = self.m.lock();
        let Some(&idx) = s.by_name.get(job.tenant.as_ref()) else {
            return;
        };
        let clock = s.clock;
        let t = &mut s.tenants[idx];
        if t.queue.is_empty() {
            t.vtime = t.vtime.max(clock);
        }
        t.queue.push_back(job);
        t.accepted += 1;
        s.queued_total += 1;
        let in_system = s.queued_total + s.inflight;
        s.peak_in_system = s.peak_in_system.max(in_system);
        self.cv.notify_all();
    }

    /// Offer one job. Never blocks: the answer is either "queued" or a
    /// typed rejection the caller turns into a backpressure reply.
    pub fn offer(&self, job: QueuedJob) -> Offer {
        let mut s = self.m.lock();
        let Some(&idx) = s.by_name.get(job.tenant.as_ref()) else {
            // Offer before Hello — treat like quarantine, the session is
            // broken anyway.
            s.rejected_total += 1;
            return self.rejected(RejectReason::FaultBudgetExhausted);
        };
        if s.draining {
            s.tenants[idx].rejected += 1;
            s.rejected_total += 1;
            return self.rejected(RejectReason::Draining);
        }
        if job.level > self.cfg.capacity_level {
            s.tenants[idx].rejected += 1;
            s.rejected_total += 1;
            return self.rejected(RejectReason::OverCapacity);
        }
        let clock = s.clock;
        let t = &mut s.tenants[idx];
        if t.faults_left == 0 {
            t.rejected += 1;
            s.rejected_total += 1;
            return self.rejected(RejectReason::FaultBudgetExhausted);
        }
        if t.queue.len() >= self.cfg.queue_cap {
            t.rejected += 1;
            s.rejected_total += 1;
            return self.rejected(RejectReason::QueueFull);
        }
        // Waking from idle: forward the clock so the quiet period is not
        // banked as a burst entitlement.
        if t.queue.is_empty() {
            t.vtime = t.vtime.max(clock);
        }
        t.queue.push_back(job);
        t.accepted += 1;
        let depth = t.queue.len();
        s.queued_total += 1;
        let in_system = s.queued_total + s.inflight;
        s.peak_in_system = s.peak_in_system.max(in_system);
        self.cv.notify_all();
        Offer::Enqueued { depth }
    }

    fn rejected(&self, reason: RejectReason) -> Offer {
        Offer::Rejected {
            reason,
            retry_after: self.cfg.retry_after,
        }
    }

    /// Dispatcher side: the next job in weighted-fair order. Blocks up to
    /// `timeout` when idle; returns [`Next::Drained`] once draining with
    /// nothing queued or in flight.
    pub fn next(&self, timeout: Duration) -> Next {
        let deadline = Instant::now() + timeout;
        let mut s = self.m.lock();
        loop {
            if let Some(idx) = pick_min_vtime(&s) {
                let job = s.tenants[idx].queue.pop_front().expect("picked non-empty");
                let t = &mut s.tenants[idx];
                // Start-time fair queuing: charge 1/weight of virtual time
                // and move the global clock to this job's start tag.
                let start = t.vtime;
                t.vtime += 1.0 / t.weight as f64;
                s.clock = s.clock.max(start);
                s.queued_total -= 1;
                s.inflight += 1;
                return Next::Job(job);
            }
            if s.draining && s.queued_total == 0 && s.inflight == 0 {
                return Next::Drained;
            }
            if self.cv.wait_until(&mut s, deadline).timed_out() {
                return Next::Idle;
            }
        }
    }

    /// Dispatcher side: account the completion of a popped job.
    /// `served` is false for jobs discarded without a result (orphaned).
    pub fn complete(&self, job: &QueuedJob, served: bool) {
        let mut s = self.m.lock();
        s.inflight -= 1;
        if served {
            s.served_total += 1;
            if let Some(&idx) = s.by_name.get(job.tenant.as_ref()) {
                s.tenants[idx].served += 1;
            }
        } else {
            s.orphaned += 1;
        }
        // Drained-state watchers (and parked dispatchers) may be waiting
        // on inflight hitting zero.
        self.cv.notify_all();
    }

    /// Dispatcher side: put a popped job back at the end of its tenant's
    /// queue because its outcome could not be journaled. A WAL write
    /// failure is not ignorable — the journal's promise is "an admitted
    /// seq produces a journaled outcome", and completing the job without
    /// one would wedge the seq (resubmits dedup against the Pending
    /// entry) until a restart. The job is deterministic, so it is
    /// re-executed and the outcome write retried; no retry or fault
    /// budget is charged, a failing disk is not the tenant's doing.
    pub fn requeue_after_journal_failure(&self, job: QueuedJob) {
        let mut s = self.m.lock();
        s.inflight -= 1;
        let Some(&idx) = s.by_name.get(job.tenant.as_ref()) else {
            // Jobs only pop for registered tenants; if the tenant is
            // somehow gone, at least keep the in-system accounting sane.
            s.orphaned += 1;
            return;
        };
        s.tenants[idx].queue.push_back(job);
        s.queued_total += 1;
        self.cv.notify_all();
    }

    /// Dispatcher side: a popped job failed in the engine. Returns the
    /// job re-armed for retry when the tenant still has retry budget;
    /// `None` means the failure is final — reply `Fail` and charge the
    /// tenant's fault budget.
    pub fn charge_failure(&self, mut job: QueuedJob) -> Option<QueuedJob> {
        let mut s = self.m.lock();
        s.inflight -= 1;
        let &idx = s.by_name.get(job.tenant.as_ref())?;
        let t = &mut s.tenants[idx];
        if t.retries_left > 0 {
            t.retries_left -= 1;
            job.attempts += 1;
            // Head of the queue: a retry does not go to the back of the
            // tenant's own line.
            t.queue.push_front(job.clone());
            s.queued_total += 1;
            self.cv.notify_all();
            return Some(job);
        }
        t.failed += 1;
        t.faults_left = t.faults_left.saturating_sub(1);
        self.cv.notify_all();
        None
    }

    /// Drop every queued job belonging to `session` (its connection died).
    /// Returns the dropped jobs for accounting.
    pub fn forget_session(&self, session: u64) -> usize {
        let mut s = self.m.lock();
        let mut dropped = 0;
        for t in &mut s.tenants {
            let before = t.queue.len();
            t.queue.retain(|j| j.session != session);
            dropped += before - t.queue.len();
        }
        s.queued_total -= dropped;
        s.orphaned += dropped as u64;
        if dropped > 0 {
            self.cv.notify_all();
        }
        dropped
    }

    /// Enter drain mode: every future offer is rejected, and [`next`]
    /// returns [`Next::Drained`] once the backlog and in-flight work hit
    /// zero.
    ///
    /// [`next`]: Admission::next
    pub fn drain(&self) {
        let mut s = self.m.lock();
        s.draining = true;
        self.cv.notify_all();
    }

    /// Is the gate draining?
    pub fn draining(&self) -> bool {
        self.m.lock().draining
    }

    /// Registration ordinal of `name` — the `instance` key a per-tenant
    /// [`chaos::FaultPlan`](chaos::FaultPlan) addresses.
    pub fn ordinal(&self, name: &str) -> Option<u64> {
        self.m.lock().by_name.get(name).map(|&i| i as u64)
    }

    /// Jobs served over the layer's life.
    pub fn served_total(&self) -> u64 {
        self.m.lock().served_total
    }

    /// A consistent snapshot of the layer's counters.
    pub fn stats(&self) -> AdmissionStats {
        let s = self.m.lock();
        AdmissionStats {
            queued: s.queued_total,
            inflight: s.inflight,
            peak_in_system: s.peak_in_system,
            served: s.served_total,
            rejected: s.rejected_total,
            orphaned: s.orphaned,
            tenants: s
                .tenants
                .iter()
                .map(|t| TenantStats {
                    tenant: t.name.to_string(),
                    weight: t.weight,
                    accepted: t.accepted,
                    rejected: t.rejected,
                    served: t.served,
                    failed: t.failed,
                    faults_left: t.faults_left,
                })
                .collect(),
        }
    }
}

/// Index of the non-empty tenant with the smallest virtual time
/// (registration order breaks ties, deterministically).
fn pick_min_vtime(s: &Shared) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (i, t) in s.tenants.iter().enumerate() {
        if t.queue.is_empty() {
            continue;
        }
        match best {
            Some((bv, _)) if bv <= t.vtime => {}
            _ => best = Some((t.vtime, i)),
        }
    }
    best.map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tenant: &Arc<str>, seq: u64) -> QueuedJob {
        QueuedJob {
            tenant: Arc::clone(tenant),
            session: 1,
            seq,
            root: 1,
            level: 2,
            tol: 1e-3,
            attempts: 0,
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn queue_cap_rejects_with_retry_after() {
        let adm = Admission::new(AdmissionConfig {
            queue_cap: 2,
            ..AdmissionConfig::default()
        });
        adm.register("t", 1);
        let t: Arc<str> = Arc::from("t");
        assert!(matches!(
            adm.offer(job(&t, 1)),
            Offer::Enqueued { depth: 1 }
        ));
        assert!(matches!(
            adm.offer(job(&t, 2)),
            Offer::Enqueued { depth: 2 }
        ));
        match adm.offer(job(&t, 3)) {
            Offer::Rejected {
                reason,
                retry_after,
            } => {
                assert_eq!(reason, RejectReason::QueueFull);
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(adm.stats().rejected, 1);
    }

    #[test]
    fn over_capacity_jobs_are_rejected_at_the_gate() {
        let adm = Admission::new(AdmissionConfig {
            capacity_level: 3,
            ..AdmissionConfig::default()
        });
        adm.register("t", 1);
        let t: Arc<str> = Arc::from("t");
        let mut j = job(&t, 1);
        j.level = 9;
        match adm.offer(j) {
            Offer::Rejected { reason, .. } => assert_eq!(reason, RejectReason::OverCapacity),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn weighted_pop_order_tracks_weights() {
        let adm = Admission::new(AdmissionConfig::default());
        adm.register("heavy", 3);
        adm.register("light", 1);
        let heavy: Arc<str> = Arc::from("heavy");
        let light: Arc<str> = Arc::from("light");
        for i in 0..12 {
            adm.offer(job(&heavy, i));
        }
        for i in 0..12 {
            adm.offer(job(&light, 100 + i));
        }
        let mut heavy_first8 = 0;
        for _ in 0..8 {
            match adm.next(Duration::from_secs(1)) {
                Next::Job(j) => {
                    if j.tenant.as_ref() == "heavy" {
                        heavy_first8 += 1;
                    }
                    adm.complete(&j, true);
                }
                other => panic!("expected job, got {other:?}"),
            }
        }
        // Weight 3 vs 1: the first 8 pops split 6/2.
        assert_eq!(heavy_first8, 6, "3:1 weights must serve 6 of 8 to heavy");
    }

    #[test]
    fn fault_budget_quarantines_after_retries() {
        let adm = Admission::new(AdmissionConfig {
            fault_budget: 1,
            retry_budget: 1,
            ..AdmissionConfig::default()
        });
        adm.register("t", 1);
        let t: Arc<str> = Arc::from("t");
        adm.offer(job(&t, 1));
        let j = match adm.next(Duration::from_secs(1)) {
            Next::Job(j) => j,
            other => panic!("{other:?}"),
        };
        // First failure: retried (the job reappears at the head).
        let retried = adm.charge_failure(j).expect("retry budget spends first");
        assert_eq!(retried.attempts, 1);
        let j2 = match adm.next(Duration::from_secs(1)) {
            Next::Job(j) => j,
            other => panic!("{other:?}"),
        };
        // Second failure: final, fault budget spent.
        assert!(adm.charge_failure(j2).is_none());
        match adm.offer(job(&t, 2)) {
            Offer::Rejected { reason, .. } => {
                assert_eq!(reason, RejectReason::FaultBudgetExhausted)
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn drain_rejects_new_and_reports_drained_when_empty() {
        let adm = Admission::new(AdmissionConfig::default());
        adm.register("t", 1);
        let t: Arc<str> = Arc::from("t");
        adm.offer(job(&t, 1));
        adm.drain();
        match adm.offer(job(&t, 2)) {
            Offer::Rejected { reason, .. } => assert_eq!(reason, RejectReason::Draining),
            other => panic!("expected rejection, got {other:?}"),
        }
        // The accepted job still comes out before Drained.
        let j = match adm.next(Duration::from_secs(1)) {
            Next::Job(j) => j,
            other => panic!("{other:?}"),
        };
        adm.complete(&j, true);
        assert!(matches!(adm.next(Duration::from_millis(50)), Next::Drained));
        assert_eq!(adm.served_total(), 1);
    }

    #[test]
    fn forget_session_drops_only_that_sessions_jobs() {
        let adm = Admission::new(AdmissionConfig::default());
        adm.register("t", 1);
        let t: Arc<str> = Arc::from("t");
        let mut a = job(&t, 1);
        a.session = 7;
        let mut b = job(&t, 2);
        b.session = 8;
        adm.offer(a);
        adm.offer(b);
        assert_eq!(adm.forget_session(7), 1);
        match adm.next(Duration::from_secs(1)) {
            Next::Job(j) => assert_eq!(j.session, 8),
            other => panic!("{other:?}"),
        }
    }

    /// A journal-failure requeue releases in-flight accounting, returns
    /// the job to its tenant's queue, and charges no budget — the job
    /// must come back out of `next` and still complete as served.
    #[test]
    fn journal_failure_requeue_keeps_the_job_alive_without_charges() {
        let adm = Admission::new(AdmissionConfig::default());
        adm.register("t", 1);
        let t: Arc<str> = Arc::from("t");
        adm.offer(job(&t, 1));
        let j = match adm.next(Duration::from_secs(1)) {
            Next::Job(j) => j,
            other => panic!("{other:?}"),
        };
        assert_eq!(adm.stats().inflight, 1);
        adm.requeue_after_journal_failure(j);
        let s = adm.stats();
        assert_eq!((s.inflight, s.queued), (0, 1));
        assert_eq!(
            s.tenants[0].faults_left,
            AdmissionConfig::default().fault_budget
        );
        let j2 = match adm.next(Duration::from_secs(1)) {
            Next::Job(j) => j,
            other => panic!("{other:?}"),
        };
        assert_eq!(j2.seq, 1);
        adm.complete(&j2, true);
        let s = adm.stats();
        assert_eq!((s.inflight, s.queued, s.served, s.orphaned), (0, 0, 1, 0));
        // Drain still terminates: nothing is stuck in flight.
        adm.drain();
        assert!(matches!(adm.next(Duration::from_millis(50)), Next::Drained));
    }

    #[test]
    fn peak_in_system_tracks_high_water_mark() {
        let adm = Admission::new(AdmissionConfig {
            queue_cap: 1000,
            ..AdmissionConfig::default()
        });
        adm.register("t", 1);
        let t: Arc<str> = Arc::from("t");
        for i in 0..40 {
            adm.offer(job(&t, i));
        }
        assert_eq!(adm.stats().peak_in_system, 40);
        for _ in 0..40 {
            match adm.next(Duration::from_secs(1)) {
                Next::Job(j) => adm.complete(&j, true),
                other => panic!("{other:?}"),
            }
        }
        // Draining everything does not shrink the recorded peak.
        assert_eq!(adm.stats().peak_in_system, 40);
        assert_eq!(adm.stats().queued, 0);
    }
}
