//! A hand-rolled `poll(2)` readiness facility.
//!
//! The build environment vendors no `mio`, so the reactor sits directly on
//! the one syscall it actually needs. `poll(2)` is part of every libc the
//! Rust standard library already links against, so declaring the symbol
//! here costs nothing and keeps the whole serving layer dependency-free.
//!
//! Two pieces:
//!
//! * [`poll`] — a safe wrapper over the syscall: give it a scratch
//!   [`PollFd`] vector and a timeout, get back the number of ready fds
//!   (EINTR is retried internally, so callers never see it);
//! * [`Waker`] — the classic self-pipe trick over a `socketpair(2)` (via
//!   [`UnixStream::pair`], so no raw `pipe` FFI either): any thread calls
//!   [`Waker::wake`], the reactor thread polls the read end and calls
//!   [`Waker::drain`] when it trips.

use std::io::{Read, Write};
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;

/// `poll(2)` event bit: readable.
pub const POLLIN: i16 = 0x001;
/// `poll(2)` event bit: writable.
pub const POLLOUT: i16 = 0x004;
/// `poll(2)` revent bit: error condition.
pub const POLLERR: i16 = 0x008;
/// `poll(2)` revent bit: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// `poll(2)` revent bit: fd not open.
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` fd set — layout-compatible with the
/// kernel's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Kernel-reported ready events.
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Did the kernel report any of `mask` (or a terminal condition)?
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

extern "C" {
    // int poll(struct pollfd *fds, nfds_t nfds, int timeout);
    // nfds_t is unsigned long on every Linux ABI this repo targets.
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: std::os::raw::c_int) -> i32;
}

/// Block until at least one fd in `fds` is ready or `timeout_ms` elapses
/// (negative blocks forever). Returns the number of ready fds; 0 means
/// timeout. EINTR is retried.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
    loop {
        let n = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = std::io::Error::last_os_error();
        if err.kind() == std::io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// Cross-thread wake-up for a thread blocked in [`poll_fds`].
pub struct Waker {
    /// Read end, owned by the reactor thread's poll set.
    rx: UnixStream,
    /// Write end, cloned by anyone who needs to wake the reactor.
    tx: parking_lot::Mutex<UnixStream>,
}

impl Waker {
    /// A fresh waker pair.
    pub fn new() -> std::io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker {
            rx,
            tx: parking_lot::Mutex::new(tx),
        })
    }

    /// The fd the reactor thread adds to its poll set (watch [`POLLIN`]).
    pub fn poll_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Wake the reactor. A full socketpair buffer means a wake-up is
    /// already pending, which is all a level-triggered poller needs.
    pub fn wake(&self) {
        let _ = self.tx.lock().write(&[1u8]);
    }

    /// Drain pending wake-up bytes (reactor side, after the fd trips).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        // Nonblocking: stop at WouldBlock.
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn poll_times_out_with_no_ready_fd() {
        let w = Waker::new().unwrap();
        let mut fds = [PollFd::new(w.poll_fd(), POLLIN)];
        let t0 = Instant::now();
        let n = poll_fds(&mut fds, 50).unwrap();
        assert_eq!(n, 0);
        assert!(t0.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn waker_trips_poll_and_drains() {
        let w = std::sync::Arc::new(Waker::new().unwrap());
        let w2 = std::sync::Arc::clone(&w);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.wake();
            w2.wake();
        });
        let mut fds = [PollFd::new(w.poll_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 5_000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
        // Both wakes are in flight once the writer joins; drain swallows
        // them all, so the next poll times out instead of spinning.
        t.join().unwrap();
        w.drain();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, 10).unwrap(), 0);
    }

    #[test]
    fn poll_reports_readable_socket_data() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        use std::os::fd::AsRawFd;
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 10).unwrap(), 0);
        a.write_all(b"x").unwrap();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, 1_000).unwrap(), 1);
    }
}
