//! The serving daemon: reactor + admission + one engine, glued.
//!
//! Three kinds of thread cooperate around two shared structures:
//!
//! ```text
//!  tenant sockets ──> reactor threads ──offer──> Admission ──next──┐
//!        ^                 │  ^                                    │
//!        │                 │  └── Session outbox <──send── dispatcher thread
//!        └── poll/flush ───┘                                  │
//!                                                      Engine::submit
//! ```
//!
//! The reactor threads ([`crate::reactor`]) never block on the engine:
//! they decode a `Submit`, call [`Admission::offer`], and either return to
//! `poll(2)` or queue a `Reject` — admission is a mutex push, so a slow
//! solve never stalls the event loop. The single dispatcher thread owns
//! the [`Engine`] (engines are deliberately not `Send`-shared; the daemon
//! builds it *on* the dispatcher thread via a `Send` builder closure) and
//! pulls jobs in weighted-fair order, multiplexing every tenant over the
//! one persistent worker fleet.
//!
//! **Drain** is the only shutdown: trigger it with a tenant `Drain`
//! message, [`DrainTrigger::drain`] (the daemon binary wires SIGTERM to
//! it), or a test calling the trigger directly. From that point offers
//! are rejected with [`RejectReason::Draining`], the dispatcher finishes
//! the accepted backlog, every session hears `Drained{served}`, and the
//! reactor flushes each outbox before closing — an accepted job is either
//! served or charged, never silently dropped.
//!
//! Chaos reinterprets the cluster fault vocabulary per *tenant*: a
//! [`FaultPlan`]'s `instance` selects the tenant's registration ordinal,
//! and `on_job` counts that tenant's dispatched jobs, so
//! `--faults crash:0@3` means "tenant 0's third job fails in the engine"
//! — exercising the retry-then-quarantine budget path end to end.
//!
//! [`RejectReason::Draining`]: crate::proto::RejectReason::Draining

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chaos::FaultPlan;
use manifold::prelude::MfResult;
use renovation::{AppConfig, Engine, EngineSummary};
use solver::sequential::SequentialApp;
use transport::Addr;

use crate::admission::{Admission, AdmissionConfig, AdmissionStats, Next, Offer, QueuedJob};
use crate::journal::{Admit, Journal, JournalConfig, OutcomeBody};
use crate::proto::{ServeMsg, SERVE_PROTOCOL_VERSION};
use crate::reactor::{Action, Reactor, Service};
use crate::registry::{Registry, Session};

/// Builds the dispatcher's engine *on* the dispatcher thread (the engine
/// itself is not `Send`; the closure is).
pub type EngineBuilder = Box<dyn FnOnce() -> MfResult<Engine> + Send + 'static>;

/// Everything a daemon needs to start.
pub struct DaemonConfig {
    /// Listen address (`tcp:host:port` or `unix:path`).
    pub addr: Addr,
    /// Reactor event threads; 0 means one per core.
    pub reactor_threads: usize,
    /// Admission tuning (queue caps, weights, budgets).
    pub admission: AdmissionConfig,
    /// Per-tenant fault schedule (`instance` = tenant ordinal). A
    /// `daemonkill@N` token makes the daemon SIGKILL itself after
    /// journaling its `N`-th outcome — the crash-recovery test hook.
    pub tenant_faults: Option<FaultPlan>,
    /// How long the final outbox flush may take before the reactor
    /// abandons unflushed (dead) peers.
    pub drain_grace: Duration,
    /// Crash durability: journal every admission and outcome here, and
    /// recover (rebuild tenants + requeue unfinished jobs) on start.
    /// `None` keeps the original volatile semantics.
    pub journal: Option<JournalConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: Addr::Tcp("127.0.0.1:0".into()),
            reactor_threads: 0,
            admission: AdmissionConfig::default(),
            tenant_faults: None,
            drain_grace: Duration::from_secs(5),
            journal: None,
        }
    }
}

/// Final accounting, returned by [`Daemon::wait`].
#[derive(Debug)]
pub struct DaemonReport {
    /// Jobs served with a `Done` reply over the daemon's life.
    pub served: u64,
    /// Offers rejected (backpressure, drain, quarantine, capacity).
    pub rejected: u64,
    /// Accepted jobs whose session vanished before their reply.
    pub orphaned: u64,
    /// High-water mark of queued + in-flight jobs.
    pub peak_in_system: usize,
    /// Full admission-layer snapshot (per-tenant rows included).
    pub stats: AdmissionStats,
    /// The engine's own shutdown summary (`None` when the engine failed
    /// to construct or the dispatcher panicked).
    pub engine: Option<EngineSummary>,
    /// Why the engine was unavailable, when it was.
    pub engine_error: Option<String>,
    /// True when every event thread exited within the grace with every
    /// outbox flushed and every session deregistered.
    pub clean: bool,
}

/// A handle that can start (and observe) the drain from any thread —
/// the daemon binary hands one to its SIGTERM watcher.
#[derive(Clone)]
pub struct DrainTrigger {
    admission: Arc<Admission>,
}

impl DrainTrigger {
    /// Stop admitting, finish the backlog, shut down.
    pub fn drain(&self) {
        self.admission.drain();
    }

    /// Has a drain been triggered (by anyone)?
    pub fn draining(&self) -> bool {
        self.admission.draining()
    }
}

/// What the dispatcher thread hands back when the drain completes.
struct DispatchOutcome {
    engine: Option<EngineSummary>,
    engine_error: Option<String>,
}

/// The running daemon.
pub struct Daemon {
    admission: Arc<Admission>,
    reactor: Option<Reactor>,
    dispatcher: Option<std::thread::JoinHandle<DispatchOutcome>>,
    drain_grace: Duration,
}

impl Daemon {
    /// Bind, spin up the reactor and the dispatcher, and start serving.
    /// `build_engine` runs on the dispatcher thread before the first job
    /// (fleet bring-up is part of the daemon's start, not job 1's
    /// latency).
    pub fn start(cfg: DaemonConfig, build_engine: EngineBuilder) -> std::io::Result<Daemon> {
        let admission = Arc::new(Admission::new(cfg.admission));
        let registry = Arc::new(Registry::new());

        // Recovery happens *before* the listener binds: by the time a
        // tenant can reconnect, its identity, budgets, and unfinished
        // jobs are already back in the admission queue.
        let journal = match &cfg.journal {
            None => None,
            Some(jc) => {
                let (j, rec) = Journal::open(jc.clone())?;
                for (name, weight, failed) in &rec.tenants {
                    admission.restore_tenant(name, *weight, *failed);
                }
                for p in &rec.pending {
                    // Session 0 is never a live connection: the job is
                    // detached until its tenant rebinds, and the reply
                    // routes by tenant name anyway.
                    admission.restore(QueuedJob {
                        tenant: Arc::from(p.tenant.as_str()),
                        session: 0,
                        seq: p.seq,
                        root: p.root,
                        level: p.level,
                        tol: p.tol,
                        attempts: 0,
                        enqueued: Instant::now(),
                    });
                }
                if !rec.tenants.is_empty() {
                    eprintln!(
                        "journal: recovered {} tenants; resubmitting {} unfinished jobs, \
                         {} unacknowledged replies await reconnect",
                        rec.tenants.len(),
                        rec.pending.len(),
                        rec.unacked_outcomes
                    );
                }
                Some(Arc::new(j))
            }
        };

        let service = Arc::new(ServeService {
            admission: Arc::clone(&admission),
            registry: Arc::clone(&registry),
            journal: journal.clone(),
        });
        let reactor = Reactor::start(
            &cfg.addr,
            cfg.reactor_threads,
            service,
            Arc::clone(&registry),
        )?;
        let dispatcher = {
            let admission = Arc::clone(&admission);
            let registry = Arc::clone(&registry);
            let faults = cfg.tenant_faults.clone();
            std::thread::Builder::new()
                .name("serve-dispatch".into())
                .spawn(move || dispatch_loop(build_engine, admission, registry, faults, journal))?
        };
        Ok(Daemon {
            admission,
            reactor: Some(reactor),
            dispatcher: Some(dispatcher),
            drain_grace: cfg.drain_grace,
        })
    }

    /// The bound listen address (kernel-assigned port resolved).
    pub fn local_addr(&self) -> &Addr {
        self.reactor.as_ref().expect("reactor running").local_addr()
    }

    /// A clonable handle that can trigger the drain from another thread.
    pub fn drain_trigger(&self) -> DrainTrigger {
        DrainTrigger {
            admission: Arc::clone(&self.admission),
        }
    }

    /// Live admission counters (monitoring).
    pub fn stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Block until the drain completes (someone must trigger it), then
    /// tear everything down and report. An accepted job is either in
    /// `served`, in a tenant's `failed` row, or in `orphaned` — drains
    /// lose nothing.
    pub fn wait(mut self) -> DaemonReport {
        let outcome = match self.dispatcher.take().expect("dispatcher running").join() {
            Ok(o) => o,
            Err(_) => DispatchOutcome {
                engine: None,
                engine_error: Some("dispatcher panicked".into()),
            },
        };
        let reactor = self.reactor.take().expect("reactor running");
        reactor.stop_accepting();
        let clean = reactor.stop(self.drain_grace) && outcome.engine_error.is_none();
        let stats = self.admission.stats();
        DaemonReport {
            served: stats.served,
            rejected: stats.rejected,
            orphaned: stats.orphaned,
            peak_in_system: stats.peak_in_system,
            stats,
            engine: outcome.engine,
            engine_error: outcome.engine_error,
            clean,
        }
    }
}

/// The reactor-facing half: decode-level protocol handling, nothing that
/// blocks.
struct ServeService {
    admission: Arc<Admission>,
    registry: Arc<Registry>,
    journal: Option<Arc<Journal>>,
}

impl Service for ServeService {
    fn on_message(&self, session: &Arc<Session>, msg: ServeMsg) -> Action {
        match msg {
            ServeMsg::Hello {
                version,
                tenant,
                weight,
                token,
                last_reply,
            } => {
                if version != SERVE_PROTOCOL_VERSION {
                    session.send(&ServeMsg::Fail {
                        seq: 0,
                        rseq: 0,
                        error: format!(
                            "protocol version {version} unsupported (daemon speaks \
                             {SERVE_PROTOCOL_VERSION})"
                        ),
                    });
                    return Action::Close;
                }
                match &self.journal {
                    Some(j) => {
                        // Journal first: the Welcome must not be sent for
                        // a tenant whose registration could vanish in a
                        // crash.
                        let resume = match j.register(&tenant, weight, token, last_reply) {
                            Ok(r) => r,
                            Err(e) => {
                                session.send(&ServeMsg::Fail {
                                    seq: 0,
                                    rseq: 0,
                                    error: e,
                                });
                                return Action::Close;
                            }
                        };
                        self.admission.register(&tenant, weight);
                        let t: Arc<str> = Arc::from(tenant.as_str());
                        session.set_tenant(Arc::clone(&t));
                        // Last Hello wins: with a journal, one session
                        // speaks for a tenant at a time, and replies route
                        // by tenant, not by the submitting socket.
                        self.registry.bind_tenant(t, session.id);
                        session.send(&ServeMsg::Welcome {
                            session: session.id,
                            token: resume.token,
                        });
                        // Replay unacknowledged replies *before* anything
                        // the client pipelines after its Hello — same
                        // socket, so ordering is free.
                        for m in &resume.replay {
                            session.send(m);
                        }
                    }
                    None => {
                        if token != 0 {
                            session.send(&ServeMsg::Fail {
                                seq: 0,
                                rseq: 0,
                                error: "resume token presented, but this daemon runs \
                                        without a journal — resume refused"
                                    .into(),
                            });
                            return Action::Close;
                        }
                        self.admission.register(&tenant, weight);
                        session.set_tenant(Arc::from(tenant.as_str()));
                        session.send(&ServeMsg::Welcome {
                            session: session.id,
                            token: 0,
                        });
                    }
                }
                Action::Continue
            }
            ServeMsg::Submit {
                seq,
                root,
                level,
                tol,
            } => {
                let Some(tenant) = session.tenant() else {
                    session.send(&ServeMsg::Fail {
                        seq,
                        rseq: 0,
                        error: "submit before hello".into(),
                    });
                    return Action::Close;
                };
                if let Some(j) = &self.journal {
                    // Write-ahead: the admission is durable before the
                    // admission layer (or the client) learns of it.
                    match j.admit(&tenant, seq, root, level, tol) {
                        Ok(Admit::New) => {}
                        // Already in flight from a previous connection —
                        // its reply will arrive (or replay) on its own.
                        Ok(Admit::DuplicatePending) => return Action::Continue,
                        // Finished in a previous life: resend the recorded
                        // outcome, never re-execute.
                        Ok(Admit::Replay(msg)) => {
                            session.send(&msg);
                            return Action::Continue;
                        }
                        Err(e) => {
                            session.send(&ServeMsg::Fail {
                                seq,
                                rseq: 0,
                                error: format!("journal admit: {e}"),
                            });
                            return Action::Continue;
                        }
                    }
                }
                let offer = self.admission.offer(QueuedJob {
                    tenant: Arc::clone(&tenant),
                    session: session.id,
                    seq,
                    root,
                    level,
                    tol,
                    attempts: 0,
                    enqueued: Instant::now(),
                });
                if let Offer::Rejected {
                    reason,
                    retry_after,
                } = offer
                {
                    let retry_after_ms = retry_after.as_millis() as u64;
                    // Rejections are replies too: journaled (with a reply
                    // sequence) before they are sent, so a crash between
                    // reject and delivery still replays the backpressure
                    // signal instead of losing the seq.
                    let rseq = match &self.journal {
                        Some(j) => match j.record_outcome(
                            &tenant,
                            seq,
                            &OutcomeBody::Reject {
                                retry_after_ms,
                                reason,
                            },
                        ) {
                            Ok(rseq) => rseq,
                            Err(e) => {
                                // The admit is journaled (Pending) but
                                // the reject cannot be. Sending an
                                // unjournaled Reject would wedge the
                                // seq: the backoff resubmit dedups
                                // against the Pending entry and vanishes.
                                // Absorb the job instead — restore()
                                // bypasses the admission gates, honoring
                                // the journal's promise that an admitted
                                // seq produces an outcome.
                                eprintln!(
                                    "journal: reject outcome write failed: {e}; \
                                     absorbing seq {seq} of tenant {tenant} despite rejection"
                                );
                                self.admission.restore(QueuedJob {
                                    tenant: Arc::clone(&tenant),
                                    session: session.id,
                                    seq,
                                    root,
                                    level,
                                    tol,
                                    attempts: 0,
                                    enqueued: Instant::now(),
                                });
                                return Action::Continue;
                            }
                        },
                        None => 0,
                    };
                    session.send(&ServeMsg::Reject {
                        seq,
                        rseq,
                        retry_after_ms,
                        reason,
                    });
                }
                Action::Continue
            }
            ServeMsg::Ack { upto } => {
                if let (Some(j), Some(tenant)) = (&self.journal, session.tenant()) {
                    if let Err(e) = j.ack(&tenant, upto) {
                        eprintln!("journal: ack write failed: {e}");
                    }
                }
                Action::Continue
            }
            ServeMsg::Drain => {
                // Any tenant (or the operator over a socket) may start the
                // drain; the Drained broadcast answers everyone at the end.
                self.admission.drain();
                Action::Continue
            }
            ServeMsg::Bye => {
                if let Some(t) = session.tenant() {
                    self.registry.unbind_tenant(&t, session.id);
                }
                // Without a journal a departing session's queued jobs are
                // solved for nobody — drop them. With one, accepted work
                // is durable: it finishes and its outcome waits in the
                // journal for a future session of the same tenant.
                if self.journal.is_none() {
                    self.admission.forget_session(session.id);
                }
                Action::Close
            }
            // Daemon-to-tenant messages arriving *at* the daemon are a
            // protocol violation.
            ServeMsg::Welcome { .. }
            | ServeMsg::Done { .. }
            | ServeMsg::Fail { .. }
            | ServeMsg::Reject { .. }
            | ServeMsg::Drained { .. } => Action::Close,
        }
    }

    fn on_disconnect(&self, session: &Arc<Session>) {
        if let Some(t) = session.tenant() {
            self.registry.unbind_tenant(&t, session.id);
        }
        // Queued jobs from a dead session would be solved for nobody (the
        // reactor already pulled the session out of the registry) — except
        // under a journal, where they survive the disconnect exactly like
        // they survive a daemon crash, and their replies wait for the
        // tenant to resume.
        if self.journal.is_none() {
            self.admission.forget_session(session.id);
        }
    }
}

/// SIGKILL ourselves: the crash-recovery hook. No destructors, no flushes
/// — the closest a test can get to a power cut without root.
fn sigkill_self() -> ! {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
        fn getpid() -> i32;
    }
    unsafe {
        kill(getpid(), 9);
    }
    // SIGKILL is not deliverable to a stopped clock, but the compiler
    // doesn't know that.
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}

/// Pause after a failed journal outcome write before the requeued job
/// can run again: a dead disk must not turn the dispatcher into a hot
/// re-execute loop.
const JOURNAL_RETRY_PAUSE: Duration = Duration::from_millis(100);

/// The dispatcher: owns the engine, serves the fair-share queue until the
/// drain empties it.
fn dispatch_loop(
    build_engine: EngineBuilder,
    admission: Arc<Admission>,
    registry: Arc<Registry>,
    faults: Option<FaultPlan>,
    journal: Option<Arc<Journal>>,
) -> DispatchOutcome {
    let mut engine_error: Option<String> = None;
    let mut engine = match build_engine() {
        Ok(e) => Some(e),
        Err(e) => {
            engine_error = Some(format!("engine construction failed: {e}"));
            None
        }
    };
    // Per-tenant dispatched-job ordinals, the `on_job` coordinate of the
    // per-tenant fault vocabulary.
    let mut tenant_jobs: HashMap<Arc<str>, u64> = HashMap::new();
    // daemonkill@N: die *after* journaling outcome N but *before* sending
    // it — the nastiest window, where only recovery + replay can save the
    // reply.
    let daemon_kill = faults.as_ref().and_then(|p| p.daemon_kill());
    let mut outcomes: u64 = 0;

    loop {
        let job = match admission.next(Duration::from_millis(200)) {
            Next::Idle => continue,
            Next::Drained => break,
            Next::Job(job) => job,
        };
        let n = {
            let c = tenant_jobs.entry(Arc::clone(&job.tenant)).or_insert(0);
            *c += 1;
            *c
        };

        let mut injected: Option<String> = None;
        if let Some(plan) = &faults {
            if let Some(ord) = admission.ordinal(&job.tenant) {
                let wf = plan.worker_faults(ord);
                if let Some((on_job, millis)) = wf.stall_on_job {
                    if on_job == n {
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                }
                if wf.crash_on_job == Some(n)
                    || wf.drop_on_job == Some(n)
                    || wf.corrupt_on_job == Some(n)
                {
                    injected = Some(format!(
                        "chaos: injected tenant fault on dispatched job {n}"
                    ));
                }
            }
        }

        let served = if let Some(err) = injected {
            Err(err)
        } else {
            match engine.as_mut() {
                None => Err(engine_error
                    .clone()
                    .unwrap_or_else(|| "engine unavailable".into())),
                Some(e) => e
                    .submit(AppConfig::new(SequentialApp::new(
                        job.root, job.level, job.tol,
                    )))
                    .map_err(|e| e.to_string())
                    .and_then(|h| h.wait().map_err(|e| e.to_string())),
            }
        };

        match served {
            Ok(report) => match &journal {
                Some(j) => {
                    // Journal the outcome before sending it: a crash
                    // in between replays the reply; a crash before
                    // re-executes the (deterministic) job.
                    let body = OutcomeBody::Done {
                        grids: report.result.per_grid.len() as u64,
                        l2_error: report.result.l2_error,
                        combined: report.result.combined,
                    };
                    match j.record_outcome(&job.tenant, job.seq, &body) {
                        Ok(rseq) => {
                            outcomes += 1;
                            if Some(outcomes) == daemon_kill {
                                sigkill_self();
                            }
                            if let Some(s) = registry.tenant_session(&job.tenant) {
                                s.send(&body.to_msg(job.seq, rseq));
                            }
                            // An undelivered reply is not an orphan: it
                            // waits, durably, for the tenant to resume.
                            admission.complete(&job, true);
                        }
                        Err(e) => {
                            // Completing without a journaled outcome
                            // would wedge the seq: the entry stays
                            // Pending, so resubmits dedup into nothing
                            // until a restart replays it. Requeue
                            // instead — re-execute (deterministic) and
                            // retry the write, paced so a dead disk
                            // does not become a hot loop.
                            eprintln!(
                                "journal: done outcome write failed: {e}; \
                                 requeueing seq {} of tenant {}",
                                job.seq, job.tenant
                            );
                            admission.requeue_after_journal_failure(job);
                            std::thread::sleep(JOURNAL_RETRY_PAUSE);
                        }
                    }
                }
                None => {
                    let delivered = registry.get(job.session).is_some_and(|s| {
                        s.send(&ServeMsg::Done {
                            seq: job.seq,
                            rseq: 0,
                            grids: report.result.per_grid.len() as u64,
                            l2_error: report.result.l2_error,
                            combined: report.result.combined,
                        })
                    });
                    admission.complete(&job, delivered);
                }
            },
            Err(error) => {
                let final_copy = job.clone();
                // Retry first (re-queued at the tenant's head); only a
                // spent retry budget surfaces the failure to the tenant.
                if admission.charge_failure(job).is_none() {
                    let (tenant, seq) = (final_copy.tenant.clone(), final_copy.seq);
                    match &journal {
                        Some(j) => {
                            let body = OutcomeBody::Fail {
                                error: error.clone(),
                            };
                            match j.record_outcome(&tenant, seq, &body) {
                                Ok(rseq) => {
                                    outcomes += 1;
                                    if Some(outcomes) == daemon_kill {
                                        sigkill_self();
                                    }
                                    if let Some(s) = registry.tenant_session(&tenant) {
                                        s.send(&body.to_msg(seq, rseq));
                                    }
                                }
                                Err(e) => {
                                    // Same wedge as the Done path: the
                                    // seq must not end without a
                                    // journaled outcome. charge_failure
                                    // already released the in-flight
                                    // slot, so restore() (no accounting
                                    // beyond the queue) re-arms the job;
                                    // the re-run charges the budget
                                    // again — accounting drift under a
                                    // failing disk, traded for never
                                    // wedging the seq.
                                    eprintln!(
                                        "journal: fail outcome write failed: {e}; \
                                         requeueing seq {seq} of tenant {tenant}"
                                    );
                                    admission.restore(final_copy);
                                    std::thread::sleep(JOURNAL_RETRY_PAUSE);
                                }
                            }
                        }
                        None => {
                            if let Some(s) = registry.get(final_copy.session) {
                                s.send(&ServeMsg::Fail {
                                    seq,
                                    rseq: 0,
                                    error,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // The backlog is empty and nothing is in flight: tell every session
    // the drain completed *now*, from the thread that knows — waiting for
    // the main thread to join us would deadlock any client blocking on
    // this very message.
    registry.broadcast(&ServeMsg::Drained {
        served: admission.served_total(),
    });
    DispatchOutcome {
        engine: engine.take().map(Engine::shutdown),
        engine_error,
    }
}
