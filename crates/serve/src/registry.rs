//! The tenant/session registry: who is connected, and how a reply finds
//! its way back to the socket that asked for it.
//!
//! One connection is one session. The reactor creates a [`Session`] at
//! accept time (before the tenant has even said `Hello`), the daemon's
//! dispatcher looks sessions up by id to queue replies, and the reactor
//! thread that owns the underlying socket flushes the session's
//! [`Outbox`] when `poll(2)` says the socket can take bytes. The registry
//! is the only map shared across all of them, so thousands of in-flight
//! jobs route over however many connections actually exist.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::poll::Waker;
use crate::proto::ServeMsg;

/// Session identifier — assigned at accept, echoed in `Welcome`.
pub type SessionId = u64;

struct OutQ {
    bufs: VecDeque<Vec<u8>>,
    /// Bytes of `bufs[0]` already written (partial-write resume point).
    head_off: usize,
    closed: bool,
}

/// Per-session outbound byte queue, filled by any thread, drained by the
/// one reactor thread owning the socket.
pub struct Outbox {
    q: Mutex<OutQ>,
}

impl Outbox {
    fn new() -> Outbox {
        Outbox {
            q: Mutex::new(OutQ {
                bufs: VecDeque::new(),
                head_off: 0,
                closed: false,
            }),
        }
    }

    /// Queue one already-framed message. Returns false when the session
    /// is closed (the bytes are dropped).
    pub fn push(&self, frame: Vec<u8>) -> bool {
        let mut q = self.q.lock();
        if q.closed {
            return false;
        }
        q.bufs.push_back(frame);
        true
    }

    /// Anything left to write?
    pub fn is_empty(&self) -> bool {
        self.q.lock().bufs.is_empty()
    }

    /// No more pushes accepted.
    pub fn close(&self) {
        self.q.lock().closed = true;
    }

    /// Write as much as the (nonblocking) sink accepts. `Ok(true)` means
    /// the queue is fully flushed; `Ok(false)` means the sink would block
    /// with bytes still pending.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<bool> {
        let mut q = self.q.lock();
        while let Some(front) = q.bufs.front() {
            let off = q.head_off;
            match w.write(&front[off..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    if off + n == front.len() {
                        q.bufs.pop_front();
                        q.head_off = 0;
                    } else {
                        q.head_off = off + n;
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// One connected tenant session.
pub struct Session {
    /// Registry key, echoed to the tenant in `Welcome`.
    pub id: SessionId,
    /// Outbound frames awaiting the socket.
    pub outbox: Outbox,
    /// Fair-share identity; `None` until the tenant says `Hello`.
    tenant: Mutex<Option<Arc<str>>>,
    /// Waker of the reactor thread owning this session's socket.
    waker: Arc<Waker>,
    connected: AtomicBool,
}

impl Session {
    /// A fresh session owned by the reactor thread behind `waker`.
    pub fn new(id: SessionId, waker: Arc<Waker>) -> Arc<Session> {
        Arc::new(Session {
            id,
            outbox: Outbox::new(),
            tenant: Mutex::new(None),
            waker,
            connected: AtomicBool::new(true),
        })
    }

    /// The tenant this session authenticated as (after `Hello`).
    pub fn tenant(&self) -> Option<Arc<str>> {
        self.tenant.lock().clone()
    }

    /// Record the `Hello` identity.
    pub fn set_tenant(&self, tenant: Arc<str>) {
        *self.tenant.lock() = Some(tenant);
    }

    /// Is the socket still attached?
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::Acquire)
    }

    /// Queue `msg` for delivery and wake the owning reactor thread.
    /// Returns false when the session is gone (reply dropped — nobody is
    /// listening).
    pub fn send(&self, msg: &ServeMsg) -> bool {
        if !self.is_connected() {
            return false;
        }
        let Ok(frame) = msg.to_frame() else {
            return false;
        };
        if !self.outbox.push(frame) {
            return false;
        }
        self.waker.wake();
        true
    }

    /// Mark the socket gone and refuse further sends.
    pub fn mark_disconnected(&self) {
        self.connected.store(false, Ordering::Release);
        self.outbox.close();
    }
}

/// All live sessions, keyed by id.
#[derive(Default)]
pub struct Registry {
    m: Mutex<HashMap<SessionId, Arc<Session>>>,
    /// Tenant name → the session currently speaking for it. A journaled
    /// daemon routes replies by *tenant* (the durable identity), not by
    /// the session that happened to submit the job — the submitting
    /// socket may be long dead by the time the job finishes.
    bound: Mutex<HashMap<Arc<str>, SessionId>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Insert a freshly accepted session.
    pub fn insert(&self, session: Arc<Session>) {
        self.m.lock().insert(session.id, session);
    }

    /// Look a session up (dispatcher reply path).
    pub fn get(&self, id: SessionId) -> Option<Arc<Session>> {
        self.m.lock().get(&id).cloned()
    }

    /// Remove a dead session.
    pub fn remove(&self, id: SessionId) -> Option<Arc<Session>> {
        self.m.lock().remove(&id)
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.m.lock().len()
    }

    /// No sessions connected?
    pub fn is_empty(&self) -> bool {
        self.m.lock().is_empty()
    }

    /// Bind `tenant` to `id`: future tenant-routed replies go to this
    /// session. Last `Hello` wins — with a journal, one session speaks
    /// for a tenant at a time.
    pub fn bind_tenant(&self, tenant: Arc<str>, id: SessionId) {
        self.bound.lock().insert(tenant, id);
    }

    /// Drop the binding, but only if `id` still holds it (a newer
    /// session's rebind must not be undone by the old socket's reap).
    pub fn unbind_tenant(&self, tenant: &str, id: SessionId) {
        let mut b = self.bound.lock();
        if b.get(tenant).copied() == Some(id) {
            b.remove(tenant);
        }
    }

    /// The live session currently bound to `tenant`, if any.
    pub fn tenant_session(&self, tenant: &str) -> Option<Arc<Session>> {
        let id = self.bound.lock().get(tenant).copied()?;
        self.get(id)
    }

    /// Queue `msg` on every live session (drain announcements).
    pub fn broadcast(&self, msg: &ServeMsg) {
        let sessions: Vec<Arc<Session>> = self.m.lock().values().cloned().collect();
        for s in sessions {
            s.send(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_flushes_across_partial_writes() {
        let ob = Outbox::new();
        ob.push(vec![1, 2, 3, 4, 5]);
        ob.push(vec![6, 7]);

        // A sink that takes at most 3 bytes per call.
        struct Trickle(Vec<u8>);
        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = Trickle(Vec::new());
        while !ob.write_to(&mut sink).unwrap() {}
        assert_eq!(sink.0, vec![1, 2, 3, 4, 5, 6, 7]);
        assert!(ob.is_empty());
    }

    #[test]
    fn closed_outbox_drops_pushes() {
        let ob = Outbox::new();
        ob.close();
        assert!(!ob.push(vec![1]));
        assert!(ob.is_empty());
    }

    #[test]
    fn registry_send_after_disconnect_reports_failure() {
        let reg = Registry::new();
        let waker = Arc::new(Waker::new().unwrap());
        let s = Session::new(3, waker);
        reg.insert(Arc::clone(&s));
        assert!(s.send(&ServeMsg::Welcome {
            session: 3,
            token: 0
        }));
        s.mark_disconnected();
        assert!(!s.send(&ServeMsg::Bye));
        assert!(reg.remove(3).is_some());
        assert!(reg.is_empty());
    }

    /// The partial-write resume point (`head_off`) under the worst case:
    /// a sink that takes exactly one byte per call, so *every* byte of a
    /// multi-frame backlog goes through the resume path. The flushed
    /// stream must still deframe to the original messages — byte-exact
    /// frame integrity, not just byte count.
    #[test]
    fn one_byte_writes_preserve_frame_integrity() {
        let ob = Outbox::new();
        let msgs = [
            ServeMsg::Done {
                seq: 1,
                rseq: 1,
                grids: 7,
                l2_error: 1.25e-4,
                combined: vec![0.5, -0.25, 3.75, f64::MIN_POSITIVE],
            },
            ServeMsg::Reject {
                seq: 2,
                rseq: 2,
                retry_after_ms: 25,
                reason: crate::proto::RejectReason::QueueFull,
            },
            ServeMsg::Drained { served: 99 },
        ];
        for m in &msgs {
            ob.push(m.to_frame().unwrap());
        }

        /// One byte per write() call, with a WouldBlock stutter every
        /// third byte for good measure.
        struct OneByte {
            out: Vec<u8>,
            calls: usize,
        }
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.calls += 1;
                if self.calls.is_multiple_of(3) {
                    return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
                }
                self.out.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = OneByte {
            out: Vec::new(),
            calls: 0,
        };
        let mut rounds = 0;
        while !ob.write_to(&mut sink).unwrap() {
            rounds += 1;
            assert!(rounds < 100_000, "flush does not terminate");
        }
        assert!(ob.is_empty());

        let mut dec = transport::FrameDecoder::new();
        dec.push(&sink.out);
        let mut back = Vec::new();
        while let Some(payload) = dec.next_frame().unwrap() {
            back.push(ServeMsg::decode(&payload).unwrap());
        }
        assert_eq!(dec.pending(), 0, "trailing bytes after the last frame");
        assert_eq!(back, msgs, "frames reassembled byte-exactly");
    }

    #[test]
    fn tenant_binding_routes_to_latest_session_only() {
        let reg = Registry::new();
        let waker = Arc::new(Waker::new().unwrap());
        let old = Session::new(1, Arc::clone(&waker));
        let new = Session::new(2, waker);
        reg.insert(Arc::clone(&old));
        reg.insert(Arc::clone(&new));
        let tenant: Arc<str> = Arc::from("acme");

        reg.bind_tenant(Arc::clone(&tenant), 1);
        assert_eq!(reg.tenant_session("acme").unwrap().id, 1);

        // Reconnect: the new session takes over.
        reg.bind_tenant(Arc::clone(&tenant), 2);
        assert_eq!(reg.tenant_session("acme").unwrap().id, 2);

        // The old socket's reap must not undo the rebind…
        reg.unbind_tenant("acme", 1);
        assert_eq!(reg.tenant_session("acme").unwrap().id, 2);

        // …but the current holder's departure does.
        reg.unbind_tenant("acme", 2);
        assert!(reg.tenant_session("acme").is_none());
    }
}
