//! A blocking tenant-side client for `mf-served`.
//!
//! The daemon end is nonblocking and multiplexed; the tenant end does not
//! have to be. A [`TenantClient`] wraps one [`Conn`] (TCP or Unix), does
//! the `Hello`/`Welcome` handshake at connect time, and then exposes
//! plain send/recv over [`ServeMsg`] frames. Pipelining is the caller's
//! choice: `submit` any number of seqs, then `recv` replies as they
//! arrive — the load generator keeps `--inflight` of them open per
//! connection, the smoke tests keep one.
//!
//! Against a journaled daemon the client is also a *resumable* session:
//! the `Welcome` carries a resume token, every daemon reply carries a
//! per-tenant reply sequence (`rseq`), and [`TenantClient::resume`]
//! reconnects with `Hello{token, last_reply}` after a daemon crash or a
//! dropped socket. The daemon replays unacknowledged replies and the
//! client suppresses any it already consumed, so the caller sees each
//! reply exactly once no matter how many times the connection (or the
//! daemon) dies in between. The filter is a contiguous watermark plus a
//! set of `rseq`s seen ahead of it, because wire order is *not* `rseq`
//! order: `rseq` assignment (under the daemon's journal lock) and the
//! socket send are separate steps, so a reactor-thread `Reject` can
//! overtake a dispatcher `Done` that drew a lower sequence, and a fresh
//! outcome can land ahead of the `Hello` replay of older ones. Open
//! submissions are tracked client-side and resubmitted on resume — the
//! daemon's journal dedups them by `(tenant, seq)`, so resubmission is
//! idempotent.

use std::collections::{BTreeSet, HashMap};
use std::io;
use std::time::Duration;

use transport::frame::{read_frame, write_frame};
use transport::{Addr, Conn};

use crate::backoff::Backoff;
use crate::proto::{ServeMsg, SERVE_PROTOCOL_VERSION};

/// How many consumed replies between automatic `Ack`s. Acks bound journal
/// replay length (and enable compaction), but each one is a frame — a
/// modest batch keeps the overhead invisible.
const ACK_EVERY: u64 = 32;

/// The client half of exactly-once delivery: admits each reply sequence
/// once, tolerating out-of-order arrival. `watermark` is the highest
/// rseq below which *everything* has been consumed; `ahead` holds the
/// rseqs consumed beyond a gap. Memory is bounded by the gap width, and
/// only the watermark is ever acknowledged to the daemon — an `Ack`
/// never covers a reply that was skipped over.
#[derive(Debug, Default)]
struct ReplyDedup {
    watermark: u64,
    ahead: BTreeSet<u64>,
}

impl ReplyDedup {
    /// First sighting of `rseq`? Advances the watermark over any
    /// now-contiguous prefix; returns false for a duplicate.
    fn admit(&mut self, rseq: u64) -> bool {
        if rseq <= self.watermark || !self.ahead.insert(rseq) {
            return false;
        }
        while self.ahead.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
        true
    }
}

/// One connected, welcomed tenant session.
pub struct TenantClient {
    conn: Conn,
    session: u64,
    addr: Addr,
    tenant: String,
    weight: u32,
    /// Resume token from the daemon's `Welcome` (0 against a journal-less
    /// daemon — resume unavailable).
    token: u64,
    /// Exactly-once reply filter; its watermark is sent in `Hello` on
    /// resume and periodically acknowledged.
    dedup: ReplyDedup,
    /// Replies consumed since the last `Ack`.
    unacked: u64,
    /// Submitted seqs with no consumed reply yet, with their submit
    /// arguments so `resume` can resubmit them.
    open: HashMap<u64, (u32, u32, f64)>,
    /// Replayed replies the dedup filter swallowed (telemetry: proves the
    /// exactly-once filter actually fired).
    duplicates_suppressed: u64,
}

impl TenantClient {
    /// Connect and complete the `Hello{tenant,weight}` → `Welcome`
    /// handshake. `weight` 0 requests the daemon default.
    pub fn connect(addr: &Addr, tenant: &str, weight: u32) -> io::Result<TenantClient> {
        let conn = Conn::connect(addr, Duration::from_secs(5))?;
        let mut client = TenantClient {
            conn,
            session: 0,
            addr: addr.clone(),
            tenant: tenant.to_string(),
            weight,
            token: 0,
            dedup: ReplyDedup::default(),
            unacked: 0,
            open: HashMap::new(),
            duplicates_suppressed: 0,
        };
        client.handshake()?;
        Ok(client)
    }

    fn handshake(&mut self) -> io::Result<()> {
        self.send(&ServeMsg::Hello {
            version: SERVE_PROTOCOL_VERSION,
            tenant: self.tenant.clone(),
            weight: self.weight,
            token: self.token,
            last_reply: self.dedup.watermark,
        })?;
        match self.recv_raw()? {
            ServeMsg::Welcome { session, token } => {
                self.session = session;
                self.token = token;
                Ok(())
            }
            ServeMsg::Fail { error, .. } => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("daemon refused handshake: {error}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Welcome, got {other:?}"),
            )),
        }
    }

    /// The daemon-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The resume token (0 when the daemon offers no resume).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Can this session be resumed after a disconnect?
    pub fn resumable(&self) -> bool {
        self.token != 0
    }

    /// Submitted seqs still awaiting a reply.
    pub fn open_jobs(&self) -> usize {
        self.open.len()
    }

    /// Replayed replies the exactly-once filter swallowed so far.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// Read timeout for subsequent [`recv`](TenantClient::recv) calls
    /// (`None` blocks forever).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.conn.set_read_timeout(t)
    }

    /// Send one message as one frame.
    pub fn send(&mut self, msg: &ServeMsg) -> io::Result<()> {
        let payload = msg.encode().map_err(io::Error::from)?;
        write_frame(&mut self.conn, &payload)
    }

    /// Queue job `seq`; replies carry the seq back, in service order.
    pub fn submit(&mut self, seq: u64, root: u32, level: u32, tol: f64) -> io::Result<()> {
        self.open.insert(seq, (root, level, tol));
        self.send(&ServeMsg::Submit {
            seq,
            root,
            level,
            tol,
        })
    }

    /// One frame off the wire, no dedup bookkeeping.
    fn recv_raw(&mut self) -> io::Result<ServeMsg> {
        match read_frame(&mut self.conn)? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the session",
            )),
            Some(payload) => ServeMsg::decode(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        }
    }

    /// Block for the next daemon message the caller has *not* seen yet.
    ///
    /// Replayed (already-consumed) replies are counted and skipped —
    /// the filter tolerates arrival out of `rseq` order, so a reply
    /// overtaken on the wire by a higher-sequence one is still
    /// delivered, not mistaken for a duplicate. Every [`ACK_EVERY`]
    /// consumed replies an `Ack` flows back so the daemon can trim its
    /// journal. An orderly daemon-side close surfaces as
    /// `UnexpectedEof`.
    pub fn recv(&mut self) -> io::Result<ServeMsg> {
        loop {
            let msg = self.recv_raw()?;
            let (rseq, seq) = match &msg {
                ServeMsg::Done { seq, rseq, .. } => (*rseq, Some(*seq)),
                ServeMsg::Fail { seq, rseq, .. } => (*rseq, Some(*seq)),
                ServeMsg::Reject { seq, rseq, .. } => (*rseq, Some(*seq)),
                // Drained / Welcome / anything unnumbered: pass through.
                _ => (0, None),
            };
            if rseq > 0 {
                if !self.dedup.admit(rseq) {
                    self.duplicates_suppressed += 1;
                    continue;
                }
                self.unacked += 1;
                if self.unacked >= ACK_EVERY {
                    self.ack()?;
                }
            }
            if let Some(seq) = seq {
                self.open.remove(&seq);
            }
            return Ok(msg);
        }
    }

    /// Flush the consumed-reply watermark to the daemon now. Only the
    /// contiguous watermark is acknowledged: a reply still missing below
    /// an out-of-order arrival stays replayable.
    pub fn ack(&mut self) -> io::Result<()> {
        if self.unacked == 0 {
            return Ok(());
        }
        let upto = self.dedup.watermark;
        self.send(&ServeMsg::Ack { upto })?;
        self.unacked = 0;
        Ok(())
    }

    /// Reconnect and resume this session after a disconnect: redo the
    /// handshake with the saved token and consumed-reply watermark, then
    /// resubmit every open seq (the daemon's journal dedups in-flight and
    /// finished ones). Fails with `InvalidInput` when the session is not
    /// resumable (no token — daemon runs without a journal).
    pub fn resume(&mut self) -> io::Result<()> {
        if self.token == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "session has no resume token (daemon runs without a journal)",
            ));
        }
        self.conn = Conn::connect(&self.addr, Duration::from_secs(5))?;
        self.unacked = 0;
        self.handshake()?;
        let open: Vec<(u64, (u32, u32, f64))> = self.open.iter().map(|(s, a)| (*s, *a)).collect();
        for (seq, (root, level, tol)) in open {
            self.send(&ServeMsg::Submit {
                seq,
                root,
                level,
                tol,
            })?;
        }
        Ok(())
    }

    /// [`resume`](TenantClient::resume), retried under jittered
    /// exponential backoff — the reconnect path for a daemon that is
    /// still restarting. Gives up (returning the last error) after
    /// `max_attempts` failed tries.
    pub fn resume_with_backoff(
        &mut self,
        backoff: &mut Backoff,
        max_attempts: u32,
    ) -> io::Result<()> {
        let mut last = io::Error::other("no resume attempts made");
        for _ in 0..max_attempts {
            match self.resume() {
                Ok(()) => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::InvalidInput => return Err(e),
                Err(e) => last = e,
            }
            std::thread::sleep(backoff.next(None));
        }
        Err(last)
    }

    /// Announce departure. Against a journal-less daemon, queued jobs
    /// are dropped daemon-side (solved for nobody). Against a journaled
    /// daemon, accepted work is durable: it still finishes, and its
    /// outcome waits in the journal for a future session of the same
    /// tenant.
    pub fn bye(mut self) -> io::Result<()> {
        let _ = self.ack();
        self.send(&ServeMsg::Bye)
    }
}

#[cfg(test)]
mod tests {
    use super::ReplyDedup;

    #[test]
    fn in_order_replies_advance_the_watermark() {
        let mut d = ReplyDedup::default();
        for rseq in 1..=5 {
            assert!(d.admit(rseq), "fresh rseq {rseq} must be admitted");
        }
        assert_eq!(d.watermark, 5);
        assert!(d.ahead.is_empty());
        assert!(!d.admit(3), "replay below the watermark is a duplicate");
    }

    /// The wire race the filter exists for: a higher rseq (reactor
    /// Reject, or a fresh Done overtaking the Hello replay) arrives
    /// before a lower one. The lower reply must still be admitted, not
    /// discarded as a duplicate.
    #[test]
    fn out_of_order_arrival_loses_nothing() {
        let mut d = ReplyDedup::default();
        assert!(d.admit(1));
        assert!(d.admit(3), "rseq 3 overtook rseq 2 on the wire");
        assert_eq!(d.watermark, 1, "ack watermark must not cover unseen 2");
        assert!(d.admit(2), "the overtaken reply is fresh, not a duplicate");
        assert_eq!(d.watermark, 3, "gap closed: watermark folds the run");
        assert!(d.ahead.is_empty());
    }

    #[test]
    fn duplicates_above_the_watermark_are_caught() {
        let mut d = ReplyDedup::default();
        assert!(d.admit(4));
        assert!(!d.admit(4), "replayed out-of-order rseq is a duplicate");
        assert_eq!(d.watermark, 0);
        // Replay of the whole window (a resume): 1..=4 where 4 was seen.
        assert!(d.admit(1));
        assert!(d.admit(2));
        assert!(d.admit(3));
        assert!(!d.admit(4));
        assert_eq!(d.watermark, 4);
    }
}
