//! A blocking tenant-side client for `mf-served`.
//!
//! The daemon end is nonblocking and multiplexed; the tenant end does not
//! have to be. A [`TenantClient`] wraps one [`Conn`] (TCP or Unix), does
//! the `Hello`/`Welcome` handshake at connect time, and then exposes
//! plain send/recv over [`ServeMsg`] frames. Pipelining is the caller's
//! choice: `submit` any number of seqs, then `recv` replies as they
//! arrive — the load generator keeps `--inflight` of them open per
//! connection, the smoke tests keep one.

use std::io;
use std::time::Duration;

use transport::frame::{read_frame, write_frame};
use transport::{Addr, Conn};

use crate::proto::{ServeMsg, SERVE_PROTOCOL_VERSION};

/// One connected, welcomed tenant session.
pub struct TenantClient {
    conn: Conn,
    session: u64,
}

impl TenantClient {
    /// Connect and complete the `Hello{tenant,weight}` → `Welcome`
    /// handshake. `weight` 0 requests the daemon default.
    pub fn connect(addr: &Addr, tenant: &str, weight: u32) -> io::Result<TenantClient> {
        let conn = Conn::connect(addr, Duration::from_secs(5))?;
        let mut client = TenantClient { conn, session: 0 };
        client.send(&ServeMsg::Hello {
            version: SERVE_PROTOCOL_VERSION,
            tenant: tenant.to_string(),
            weight,
        })?;
        match client.recv()? {
            ServeMsg::Welcome { session } => {
                client.session = session;
                Ok(client)
            }
            ServeMsg::Fail { error, .. } => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("daemon refused handshake: {error}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Welcome, got {other:?}"),
            )),
        }
    }

    /// The daemon-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Read timeout for subsequent [`recv`](TenantClient::recv) calls
    /// (`None` blocks forever).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.conn.set_read_timeout(t)
    }

    /// Send one message as one frame.
    pub fn send(&mut self, msg: &ServeMsg) -> io::Result<()> {
        let payload = msg.encode().map_err(io::Error::from)?;
        write_frame(&mut self.conn, &payload)
    }

    /// Queue job `seq`; replies carry the seq back, in service order.
    pub fn submit(&mut self, seq: u64, root: u32, level: u32, tol: f64) -> io::Result<()> {
        self.send(&ServeMsg::Submit {
            seq,
            root,
            level,
            tol,
        })
    }

    /// Block for the next daemon message. An orderly daemon-side close
    /// surfaces as `UnexpectedEof`.
    pub fn recv(&mut self) -> io::Result<ServeMsg> {
        match read_frame(&mut self.conn)? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the session",
            )),
            Some(payload) => ServeMsg::decode(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        }
    }

    /// Announce departure (queued jobs are dropped daemon-side).
    pub fn bye(mut self) -> io::Result<()> {
        self.send(&ServeMsg::Bye)
    }
}
