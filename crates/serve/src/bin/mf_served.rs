//! `mf-served` — the multi-tenant solve daemon.
//!
//! ```text
//! mf-served [--listen tcp:HOST:PORT|unix:PATH] [--threads N]
//!           [--backend threads|procs|sim] [--instances N] [--worker-exe PATH]
//!           [--capacity-level N] [--queue-cap N] [--max-weight N]
//!           [--fault-budget N] [--retry-budget N] [--retry-after-ms N]
//!           [--faults SPEC] [--drain-grace-ms N]
//!           [--journal DIR] [--journal-fsync] [--journal-segment-bytes N]
//! ```
//!
//! Listens until something drains it — SIGTERM/SIGINT, or a tenant's
//! `Drain` message — then finishes every accepted job, tells each session
//! `Drained{served}`, flushes, and exits 0 on a clean drain. `--faults`
//! takes the chaos DSL (`crash:T@N,stall:T@N:MS,…`) with `instance`
//! reinterpreted as the tenant registration ordinal, plus `daemonkill@N`
//! (SIGKILL the daemon after its N-th journaled outcome).
//!
//! `--journal DIR` turns on crash durability: every admission and every
//! outcome is journaled before it is acknowledged, sessions get resume
//! tokens, and a restarted daemon pointed at the same DIR rebuilds its
//! tenants, requeues unfinished jobs, and replays unacknowledged replies
//! to reconnecting clients. `--journal-fsync` extends the guarantee from
//! process crashes to power loss, at a per-record fsync cost.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use chaos::FaultPlan;
use protocol::PaperFaithful;
use renovation::{Engine, EngineOpts, ProcsConfig, RunMode};
use serve::daemon::{Daemon, DaemonConfig, EngineBuilder};
use serve::{AdmissionConfig, JournalConfig};
use transport::Addr;

const USAGE: &str = "usage: mf-served [--listen tcp:HOST:PORT|unix:PATH] [--threads N] \
     [--backend threads|procs|sim] [--instances N] [--worker-exe PATH] \
     [--capacity-level N] [--queue-cap N] [--max-weight N] [--fault-budget N] \
     [--retry-budget N] [--retry-after-ms N] [--faults SPEC] [--drain-grace-ms N] \
     [--journal DIR] [--journal-fsync] [--journal-segment-bytes N]";

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: std::os::raw::c_int) {
    TERM.store(true, Ordering::Release);
}

/// Install `on_term` for SIGTERM (15) and SIGINT (2). `signal(2)` is in
/// every libc the standard library links; no crate needed.
fn hook_signals() {
    extern "C" {
        fn signal(signum: std::os::raw::c_int, handler: usize) -> usize;
    }
    unsafe {
        signal(15, on_term as *const () as usize);
        signal(2, on_term as *const () as usize);
    }
}

/// Minimal `--flag value` scanner (the bench crate's richer CLI lives a
/// dependency layer above this daemon).
struct Args(Vec<String>);

impl Args {
    fn value(&self, flag: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        match self.value(flag) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("mf-served: bad value {v:?} for {flag}\n{USAGE}");
                std::process::exit(2);
            }),
        }
    }
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.0.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }

    let addr = match Addr::parse(args.value("--listen").unwrap_or("tcp:127.0.0.1:0")) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mf-served: --listen: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let capacity_level: u32 = args.parsed("--capacity-level", 8);
    let admission = AdmissionConfig {
        queue_cap: args.parsed("--queue-cap", 128),
        max_weight: args.parsed("--max-weight", 16),
        fault_budget: args.parsed("--fault-budget", 8),
        retry_budget: args.parsed("--retry-budget", 4),
        retry_after: Duration::from_millis(args.parsed("--retry-after-ms", 25)),
        capacity_level,
        ..AdmissionConfig::default()
    };
    let tenant_faults = match args.value("--faults") {
        None => None,
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("mf-served: --faults: {e}\n{USAGE}");
                std::process::exit(2);
            }
        },
    };
    let journal = args.value("--journal").map(|dir| {
        let mut jc = JournalConfig::new(std::path::PathBuf::from(dir));
        jc.fsync = args.0.iter().any(|a| a == "--journal-fsync");
        jc.segment_bytes = args.parsed("--journal-segment-bytes", jc.segment_bytes);
        jc
    });
    let cfg = DaemonConfig {
        addr,
        reactor_threads: args.parsed("--threads", 0),
        admission,
        tenant_faults,
        drain_grace: Duration::from_millis(args.parsed("--drain-grace-ms", 5_000)),
        journal,
    };

    let backend = args.value("--backend").unwrap_or("threads").to_string();
    let instances: usize = args.parsed("--instances", 2);
    let worker_exe = args.value("--worker-exe").map(std::path::PathBuf::from);
    let opts = EngineOpts {
        capacity_level,
        ..EngineOpts::default()
    };
    let build: EngineBuilder = match backend.as_str() {
        "threads" => Box::new(move || {
            Engine::threads(RunMode::Parallel, std::sync::Arc::new(PaperFaithful), opts)
        }),
        "sim" => Box::new(move || Engine::sim(None, std::sync::Arc::new(PaperFaithful), opts)),
        "procs" => Box::new(move || {
            let mut pc = ProcsConfig::new(instances);
            pc.worker_exe = worker_exe;
            Engine::procs(pc, std::sync::Arc::new(PaperFaithful), opts)
        }),
        other => {
            eprintln!("mf-served: unknown backend {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    };

    hook_signals();
    let daemon = match Daemon::start(cfg, build) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mf-served: bind/start failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "mf-served: listening on {} ({backend} backend, capacity level {capacity_level})",
        daemon.local_addr()
    );

    // SIGTERM watcher: the handler only flips a flag; this thread turns
    // the flag into a drain. It also retires itself when a tenant-side
    // Drain beat it to the trigger.
    let trigger = daemon.drain_trigger();
    std::thread::spawn(move || loop {
        if TERM.load(Ordering::Acquire) {
            trigger.drain();
            return;
        }
        if trigger.draining() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    let report = daemon.wait();
    println!(
        "mf-served: drained — {} served, {} rejected, {} orphaned, peak {} in system, \
         clean={}",
        report.served, report.rejected, report.orphaned, report.peak_in_system, report.clean
    );
    for t in &report.stats.tenants {
        println!(
            "mf-served:   tenant {:<16} weight {:>2}  accepted {:>6}  served {:>6}  \
             rejected {:>6}  failed {:>4}",
            t.tenant, t.weight, t.accepted, t.served, t.rejected, t.failed
        );
    }
    if let Some(err) = &report.engine_error {
        eprintln!("mf-served: engine error: {err}");
    }
    std::process::exit(if report.clean { 0 } else { 1 });
}
