//! # serve — event-driven multi-tenant admission and serving
//!
//! The paper's renovation ends with one concurrent application; this
//! crate is what a renovated codebase grows next: a *serving layer* that
//! multiplexes many tenants' job streams over the one persistent
//! [`Engine`](renovation::Engine) fleet, with the properties a shared
//! service needs and a batch run does not:
//!
//! * [`poll`] / [`reactor`] — a readiness front end: nonblocking sockets,
//!   one event thread per core in a hand-rolled `poll(2)` loop, frames in
//!   and out through the same CRC codec the worker transport uses. No
//!   thread-per-connection, so thousands of tenant sessions cost what
//!   their sockets cost;
//! * [`admission`] — bounded per-tenant queues, weighted fair-share
//!   dispatch (start-time fair queuing), explicit backpressure
//!   (`Reject` + retry-after instead of unbounded buffering), and
//!   per-tenant retry/fault budgets with quarantine;
//! * [`registry`] — the session table that routes a finished job's reply
//!   back to the socket that asked for it;
//! * [`daemon`] — the glue: reactor threads offer, one dispatcher thread
//!   owns the engine and serves the fair-share queue, drain finishes
//!   every accepted job before the last outbox flush;
//! * [`proto`] / [`client`] — the tenant session protocol (`Hello` …
//!   `Drained`) and a blocking client for tests, smoke drivers, and the
//!   `serve_bench` load generator;
//! * [`journal`] — the crash-durability layer: a CRC-framed write-ahead
//!   journal of admissions and outcomes with snapshot compaction, resume
//!   tokens, and exactly-once reply replay across daemon restarts;
//! * [`backoff`] — seeded jittered exponential backoff for the client's
//!   Reject/reconnect retry loops, so a thousand tenants bounced by one
//!   crash do not stampede back in lockstep.
//!
//! The serving guarantee extends the paper's: every `Done` reply carries
//! the full combined field, **bit-identical** to a solo sequential run of
//! the same problem — multi-tenancy changes who waits, never what they
//! get.

pub mod admission;
pub mod backoff;
pub mod client;
pub mod daemon;
pub mod journal;
pub mod poll;
pub mod proto;
pub mod reactor;
pub mod registry;

pub use admission::{
    Admission, AdmissionConfig, AdmissionStats, Next, Offer, QueuedJob, TenantStats,
};
pub use backoff::Backoff;
pub use client::TenantClient;
pub use daemon::{Daemon, DaemonConfig, DaemonReport, DrainTrigger, EngineBuilder};
pub use journal::{Journal, JournalConfig, OutcomeBody, PendingJob, Recovery};
pub use proto::{field_checksum, RejectReason, ServeMsg, SERVE_PROTOCOL_VERSION};
pub use reactor::{Action, Reactor, Service};
pub use registry::{Registry, Session, SessionId};
