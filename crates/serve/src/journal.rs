//! The serving write-ahead journal: crash durability for admitted work.
//!
//! The daemon's contract without a journal is "accepted work finishes
//! unless the daemon dies" — this module removes the qualifier. Every
//! admitted `Submit` is journaled *before* the admission layer sees it,
//! and every outcome (`Done`/`Fail`/`Reject`) is journaled *before* it is
//! sent, so a SIGKILL at any instant loses at most replies that were
//! never acknowledged — and those replay on reconnect.
//!
//! ## On-disk format
//!
//! A journal is a directory of numbered segments:
//!
//! ```text
//! wal-000001.seg   "MFSJ" version:u32le  frame(record)*
//! wal-000002.seg   "MFSJ" version:u32le  frame(Snapshot) frame(record)*
//! ```
//!
//! Each record is a [`Unit`] tuple encoded by [`transport::wire`] and
//! wrapped in the transport's CRC-32 frame — the same discipline as
//! [`renovation::checkpoint`] (MFCK), so bit rot is *detected* and a torn
//! tail (the one record a crash can interrupt) is truncated on recovery,
//! never misread. Records append with plain `write(2)`: a page-cached
//! write survives process death (the SIGKILL threat model this layer is
//! built for); [`JournalConfig::fsync`] upgrades every append to
//! power-loss durability at the documented throughput cost.
//!
//! ## Rotation and compaction
//!
//! When the active segment exceeds [`JournalConfig::segment_bytes`], the
//! journal writes a fresh segment whose first record is a `Snapshot` of
//! the entire live state — tenants and their reply watermarks, pending
//! jobs, unacknowledged outcomes — via the checkpoint crate's
//! atomic temp-write + rename, then deletes the older segments. Entries
//! the client has `Ack`ed are dropped from the snapshot, so the journal's
//! size is bounded by outstanding (not historical) work.
//!
//! ## Replay invariants
//!
//! * `rseq` — the per-tenant reply sequence — is assigned under the
//!   journal lock, so replies from the dispatcher thread (`Done`/`Fail`)
//!   and the reactor threads (`Reject`) interleave into one gap-free
//!   order per tenant.
//! * A seq with a journaled non-`Reject` outcome is never re-executed:
//!   re-`Submit`ting it replays the recorded outcome with its *original*
//!   `rseq`, which the client's exactly-once filter dedups. Note that
//!   gap-free `rseq` *assignment* does not make the wire gap-free: the
//!   journal lock is released before the outbox push, so the client's
//!   filter tolerates out-of-order arrival (watermark + seen-ahead set)
//!   rather than assuming delivery in `rseq` order.
//! * A seq whose outcome was `Reject` may be re-admitted (that is what
//!   the backpressure retry loop does).
//! * Recovery resubmits every journaled-but-outcomeless job to a fresh
//!   engine; fault budgets are restored from the replayed `Fail` count,
//!   and vtimes restart level — a tenant cannot bank fairness credit by
//!   crash-looping the daemon.

use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, Write};
use std::path::PathBuf;
use std::sync::Mutex;

use manifold::Unit;

use crate::proto::{RejectReason, ServeMsg};

/// Magic bytes opening every journal segment.
pub const MAGIC: &[u8; 4] = b"MFSJ";

/// Version of the journal layout; mismatches are refused, not guessed.
pub const JOURNAL_VERSION: u32 = 1;

const R_REGISTER: i64 = 1;
const R_ADMIT: i64 = 2;
const R_OUTCOME: i64 = 3;
const R_ACK: i64 = 4;
const R_SNAPSHOT: i64 = 5;

const O_DONE: i64 = 0;
const O_FAIL: i64 = 1;
const O_REJECT: i64 = 2;

/// Where and how to journal.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding the segments (created if missing).
    pub dir: PathBuf,
    /// `fsync` every appended record. Off by default: page-cached writes
    /// already survive SIGKILL (the serving threat model); turn this on
    /// for power-loss durability.
    pub fsync: bool,
    /// Rotate (snapshot + compact) once the active segment passes this.
    pub segment_bytes: u64,
}

impl JournalConfig {
    /// Journal into `dir` with default knobs (no fsync, 8 MiB segments).
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            dir: dir.into(),
            fsync: false,
            segment_bytes: 8 * 1024 * 1024,
        }
    }
}

/// The body of a journaled reply.
#[derive(Debug, Clone, PartialEq)]
pub enum OutcomeBody {
    /// Job served; the full field rides in the journal so replay is
    /// bit-identical to first delivery.
    Done {
        /// Component grids visited.
        grids: u64,
        /// Discrete L2 error.
        l2_error: f64,
        /// Full combined solution field.
        combined: Vec<f64>,
    },
    /// Accepted but failed in the engine.
    Fail {
        /// Failure description.
        error: String,
    },
    /// Refused at admission.
    Reject {
        /// Suggested back-off.
        retry_after_ms: u64,
        /// Why.
        reason: RejectReason,
    },
}

impl OutcomeBody {
    /// The wire message delivering this outcome for request `seq` under
    /// reply sequence `rseq`.
    pub fn to_msg(&self, seq: u64, rseq: u64) -> ServeMsg {
        match self {
            OutcomeBody::Done {
                grids,
                l2_error,
                combined,
            } => ServeMsg::Done {
                seq,
                rseq,
                grids: *grids,
                l2_error: *l2_error,
                combined: combined.clone(),
            },
            OutcomeBody::Fail { error } => ServeMsg::Fail {
                seq,
                rseq,
                error: error.clone(),
            },
            OutcomeBody::Reject {
                retry_after_ms,
                reason,
            } => ServeMsg::Reject {
                seq,
                rseq,
                retry_after_ms: *retry_after_ms,
                reason: *reason,
            },
        }
    }

    fn to_unit(&self) -> Unit {
        match self {
            OutcomeBody::Done {
                grids,
                l2_error,
                combined,
            } => Unit::tuple(vec![
                Unit::int(O_DONE),
                Unit::int(*grids as i64),
                Unit::real(*l2_error),
                Unit::reals(combined.clone()),
            ]),
            OutcomeBody::Fail { error } => Unit::tuple(vec![Unit::int(O_FAIL), Unit::text(error)]),
            OutcomeBody::Reject {
                retry_after_ms,
                reason,
            } => Unit::tuple(vec![
                Unit::int(O_REJECT),
                Unit::int(*retry_after_ms as i64),
                Unit::int(match reason {
                    RejectReason::QueueFull => 0,
                    RejectReason::Draining => 1,
                    RejectReason::FaultBudgetExhausted => 2,
                    RejectReason::OverCapacity => 3,
                }),
            ]),
        }
    }

    fn from_unit(u: &Unit) -> Result<OutcomeBody, String> {
        let t = u.as_tuple().ok_or("outcome body is not a tuple")?;
        let int = |i: usize| -> Result<i64, String> {
            t.get(i)
                .and_then(Unit::as_int)
                .ok_or_else(|| format!("outcome field {i} is not an int"))
        };
        match int(0)? {
            O_DONE => Ok(OutcomeBody::Done {
                grids: int(1)? as u64,
                l2_error: t
                    .get(2)
                    .and_then(Unit::as_real)
                    .ok_or("outcome field 2 is not a real")?,
                combined: t
                    .get(3)
                    .and_then(Unit::as_reals)
                    .ok_or("outcome field 3 is not a reals vector")?
                    .as_ref()
                    .clone(),
            }),
            O_FAIL => Ok(OutcomeBody::Fail {
                error: t
                    .get(1)
                    .and_then(Unit::as_text)
                    .ok_or("outcome field 1 is not text")?
                    .to_string(),
            }),
            O_REJECT => Ok(OutcomeBody::Reject {
                retry_after_ms: int(1)? as u64,
                reason: match int(2)? {
                    0 => RejectReason::QueueFull,
                    1 => RejectReason::Draining,
                    2 => RejectReason::FaultBudgetExhausted,
                    3 => RejectReason::OverCapacity,
                    other => return Err(format!("unknown reject reason {other}")),
                },
            }),
            other => Err(format!("unknown outcome kind {other}")),
        }
    }

    fn is_reject(&self) -> bool {
        matches!(self, OutcomeBody::Reject { .. })
    }

    fn is_fail(&self) -> bool {
        matches!(self, OutcomeBody::Fail { .. })
    }
}

#[derive(Debug, Clone)]
enum JobState {
    Pending { root: u32, level: u32, tol: f64 },
    Outcome { rseq: u64, body: OutcomeBody },
}

#[derive(Debug, Clone)]
struct TenantRec {
    name: String,
    weight: u32,
    token: u64,
    /// Next reply sequence to assign (first assigned is 1).
    next_rseq: u64,
    /// Highest reply sequence the client has acknowledged.
    acked: u64,
    /// Replayed `Fail` outcomes — restores the fault budget on recovery.
    failed: u64,
}

#[derive(Debug, Default)]
struct State {
    /// Registration order — ordinals must survive restart because chaos
    /// fault plans and fair-queue tie-breaks key on them.
    tenants: Vec<TenantRec>,
    by_name: HashMap<String, usize>,
    /// `(tenant ordinal, seq)` → job state. BTreeMap so recovery re-offers
    /// in a deterministic (ordinal, seq) order.
    jobs: BTreeMap<(usize, u64), JobState>,
}

impl State {
    fn apply(&mut self, u: &Unit) -> Result<(), String> {
        let t = u.as_tuple().ok_or("record is not a tuple")?;
        let int = |i: usize| -> Result<i64, String> {
            t.get(i)
                .and_then(Unit::as_int)
                .ok_or_else(|| format!("record field {i} is not an int"))
        };
        let text = |i: usize| -> Result<&str, String> {
            t.get(i)
                .and_then(Unit::as_text)
                .ok_or_else(|| format!("record field {i} is not text"))
        };
        match int(0)? {
            R_REGISTER => {
                let name = text(1)?.to_string();
                let idx = self.tenants.len();
                self.by_name.insert(name.clone(), idx);
                self.tenants.push(TenantRec {
                    name,
                    weight: int(2)?.max(0) as u32,
                    token: int(3)? as u64,
                    next_rseq: 1,
                    acked: 0,
                    failed: 0,
                });
                Ok(())
            }
            R_ADMIT => {
                let idx = *self
                    .by_name
                    .get(text(1)?)
                    .ok_or("admit for unregistered tenant")?;
                self.jobs.insert(
                    (idx, int(2)? as u64),
                    JobState::Pending {
                        root: int(3)?.max(0) as u32,
                        level: int(4)?.max(0) as u32,
                        tol: t
                            .get(5)
                            .and_then(Unit::as_real)
                            .ok_or("record field 5 is not a real")?,
                    },
                );
                Ok(())
            }
            R_OUTCOME => {
                let idx = *self
                    .by_name
                    .get(text(1)?)
                    .ok_or("outcome for unregistered tenant")?;
                let rseq = int(3)? as u64;
                let body = OutcomeBody::from_unit(t.get(4).ok_or("outcome has no body")?)?;
                let tn = &mut self.tenants[idx];
                tn.next_rseq = tn.next_rseq.max(rseq + 1);
                if body.is_fail() {
                    tn.failed += 1;
                }
                self.jobs
                    .insert((idx, int(2)? as u64), JobState::Outcome { rseq, body });
                Ok(())
            }
            R_ACK => {
                let idx = *self
                    .by_name
                    .get(text(1)?)
                    .ok_or("ack for unregistered tenant")?;
                self.ack(idx, int(2)? as u64);
                Ok(())
            }
            R_SNAPSHOT => {
                *self = State::default();
                for tu in t
                    .get(1)
                    .and_then(Unit::as_tuple)
                    .ok_or("snapshot tenants is not a tuple")?
                {
                    let f = tu.as_tuple().ok_or("snapshot tenant is not a tuple")?;
                    let fi = |i: usize| -> Result<i64, String> {
                        f.get(i)
                            .and_then(Unit::as_int)
                            .ok_or_else(|| format!("snapshot tenant field {i} is not an int"))
                    };
                    let name = f
                        .first()
                        .and_then(Unit::as_text)
                        .ok_or("snapshot tenant name is not text")?
                        .to_string();
                    let idx = self.tenants.len();
                    self.by_name.insert(name.clone(), idx);
                    self.tenants.push(TenantRec {
                        name,
                        weight: fi(1)?.max(0) as u32,
                        token: fi(2)? as u64,
                        next_rseq: fi(3)? as u64,
                        acked: fi(4)? as u64,
                        failed: fi(5)? as u64,
                    });
                }
                for ju in t
                    .get(2)
                    .and_then(Unit::as_tuple)
                    .ok_or("snapshot jobs is not a tuple")?
                {
                    let f = ju.as_tuple().ok_or("snapshot job is not a tuple")?;
                    let idx = *self
                        .by_name
                        .get(
                            f.first()
                                .and_then(Unit::as_text)
                                .ok_or("snapshot job tenant is not text")?,
                        )
                        .ok_or("snapshot job for unknown tenant")?;
                    let seq = f
                        .get(1)
                        .and_then(Unit::as_int)
                        .ok_or("snapshot job seq is not an int")?
                        as u64;
                    let su = f.get(2).ok_or("snapshot job has no state")?;
                    let s = su.as_tuple().ok_or("snapshot job state is not a tuple")?;
                    let si = |i: usize| -> Result<i64, String> {
                        s.get(i)
                            .and_then(Unit::as_int)
                            .ok_or_else(|| format!("snapshot job state field {i} is not an int"))
                    };
                    let state = match si(0)? {
                        0 => JobState::Pending {
                            root: si(1)?.max(0) as u32,
                            level: si(2)?.max(0) as u32,
                            tol: s
                                .get(3)
                                .and_then(Unit::as_real)
                                .ok_or("snapshot job tol is not a real")?,
                        },
                        1 => JobState::Outcome {
                            rseq: si(1)? as u64,
                            body: OutcomeBody::from_unit(
                                s.get(2).ok_or("snapshot outcome has no body")?,
                            )?,
                        },
                        other => return Err(format!("unknown snapshot job kind {other}")),
                    };
                    self.jobs.insert((idx, seq), state);
                }
                Ok(())
            }
            other => Err(format!("unknown journal record tag {other}")),
        }
    }

    /// Raise the ack watermark and drop the outcomes it covers — the
    /// in-memory side of compaction (the on-disk side happens at the next
    /// rotation snapshot).
    fn ack(&mut self, idx: usize, upto: u64) {
        let tn = &mut self.tenants[idx];
        if upto <= tn.acked {
            return;
        }
        tn.acked = upto;
        self.jobs.retain(|(t, _), s| {
            *t != idx
                || match s {
                    JobState::Pending { .. } => true,
                    JobState::Outcome { rseq, .. } => *rseq > upto,
                }
        });
    }

    fn snapshot_unit(&self) -> Unit {
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                Unit::tuple(vec![
                    Unit::text(&t.name),
                    Unit::int(t.weight as i64),
                    Unit::int(t.token as i64),
                    Unit::int(t.next_rseq as i64),
                    Unit::int(t.acked as i64),
                    Unit::int(t.failed as i64),
                ])
            })
            .collect();
        let jobs = self
            .jobs
            .iter()
            .map(|(&(idx, seq), s)| {
                let state = match s {
                    JobState::Pending { root, level, tol } => Unit::tuple(vec![
                        Unit::int(0),
                        Unit::int(*root as i64),
                        Unit::int(*level as i64),
                        Unit::real(*tol),
                    ]),
                    JobState::Outcome { rseq, body } => {
                        Unit::tuple(vec![Unit::int(1), Unit::int(*rseq as i64), body.to_unit()])
                    }
                };
                Unit::tuple(vec![
                    Unit::text(&self.tenants[idx].name),
                    Unit::int(seq as i64),
                    state,
                ])
            })
            .collect();
        Unit::tuple(vec![
            Unit::int(R_SNAPSHOT),
            Unit::tuple(tenants),
            Unit::tuple(jobs),
        ])
    }
}

/// What [`Journal::open`] recovered from disk — the daemon feeds this
/// back into its admission layer before accepting connections.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// `(name, weight, replayed Fail count)` in original registration
    /// order, so re-registration reproduces the ordinals.
    pub tenants: Vec<(String, u32, u64)>,
    /// Jobs admitted but without a journaled outcome: resubmit these.
    pub pending: Vec<PendingJob>,
    /// Unacknowledged outcomes waiting for their tenants to reconnect.
    pub unacked_outcomes: usize,
}

/// One journaled-but-unfinished job to re-offer on recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob {
    /// Owning tenant.
    pub tenant: String,
    /// Tenant-chosen sequence number.
    pub seq: u64,
    /// Root refinement.
    pub root: u32,
    /// Levels above root.
    pub level: u32,
    /// Integrator tolerance.
    pub tol: f64,
}

/// Outcome of [`Journal::register`].
#[derive(Debug)]
pub struct Resume {
    /// The tenant's stable resume token (mint or existing).
    pub token: u64,
    /// Journaled replies above the client's watermark, in `rseq` order —
    /// queue these to the session before processing anything else on it.
    pub replay: Vec<ServeMsg>,
}

/// Outcome of [`Journal::admit`].
#[derive(Debug)]
pub enum Admit {
    /// Journaled; hand the job to admission.
    New,
    /// Already admitted and still in flight — the reply will come; drop
    /// this duplicate on the floor.
    DuplicatePending,
    /// A terminal outcome is already journaled: resend it (original
    /// `rseq`, so the client's dedup decides) instead of re-executing.
    Replay(Box<ServeMsg>),
}

struct Inner {
    cfg: JournalConfig,
    state: State,
    file: File,
    seg_index: u64,
    seg_bytes: u64,
    token_nonce: u64,
}

/// The write-ahead journal. All methods are `&self`; one internal lock
/// orders appends from the reactor threads and the dispatcher.
pub struct Journal {
    inner: Mutex<Inner>,
}

fn seg_name(index: u64) -> String {
    format!("wal-{index:06}.seg")
}

fn seg_header() -> Vec<u8> {
    let mut h = Vec::with_capacity(8);
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    h
}

fn encode_record(u: &Unit) -> io::Result<Vec<u8>> {
    let payload = transport::encode_unit_vec(u)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("journal encode: {e}")))?;
    Ok(transport::frame_vec(&payload))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Journal {
    /// Open (or create) the journal in `cfg.dir`, replaying any existing
    /// segments. Returns the journal plus what it recovered.
    pub fn open(cfg: JournalConfig) -> io::Result<(Journal, Recovery)> {
        fs::create_dir_all(&cfg.dir)?;
        let mut segs: Vec<u64> = fs::read_dir(&cfg.dir)?
            .filter_map(|e| {
                let name = e.ok()?.file_name().to_string_lossy().into_owned();
                let idx = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
                idx.parse::<u64>().ok()
            })
            .collect();
        segs.sort_unstable();

        let mut state = State::default();
        let (file, seg_index, seg_bytes) = if segs.is_empty() {
            let index = 1;
            let path = cfg.dir.join(seg_name(index));
            let mut f = OpenOptions::new()
                .create(true)
                .truncate(true)
                .write(true)
                .open(&path)?;
            f.write_all(&seg_header())?;
            (f, index, 8u64)
        } else {
            let last = *segs.last().unwrap();
            for &idx in &segs {
                let path = cfg.dir.join(seg_name(idx));
                let bytes = fs::read(&path)?;
                let bad = |what: String| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("journal segment {}: {what}", path.display()),
                    )
                };
                if bytes.len() < 8 || &bytes[..4] != MAGIC {
                    return Err(bad("not a journal segment (bad magic)".into()));
                }
                let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
                if version != JOURNAL_VERSION {
                    return Err(bad(format!(
                        "layout version {version}, this build reads {JOURNAL_VERSION}"
                    )));
                }
                let mut cur = io::Cursor::new(&bytes[8..]);
                let mut valid = 0u64;
                loop {
                    match transport::read_frame(&mut cur) {
                        Ok(Some(payload)) => {
                            let unit = transport::decode_unit(&payload)
                                .map_err(|e| bad(format!("record decode: {e}")))?;
                            state
                                .apply(&unit)
                                .map_err(|e| bad(format!("record replay: {e}")))?;
                            valid = cur.position();
                        }
                        Ok(None) => break,
                        Err(e) if idx == last => {
                            // The one record a crash can tear is the last
                            // append of the final segment: drop it. The
                            // write it guarded was never acknowledged.
                            eprintln!(
                                "journal: truncating torn tail of {} at byte {} ({e})",
                                path.display(),
                                8 + valid
                            );
                            break;
                        }
                        Err(e) => {
                            return Err(bad(format!(
                                "corrupt record at byte {} of a non-final segment: {e}",
                                8 + valid
                            )))
                        }
                    }
                }
                if idx == last {
                    let f = OpenOptions::new().write(true).open(&path)?;
                    f.set_len(8 + valid)?;
                }
            }
            let path = cfg.dir.join(seg_name(last));
            let mut f = OpenOptions::new().append(true).open(&path)?;
            let len = f.seek(io::SeekFrom::End(0))?;
            (f, last, len)
        };

        let recovery = Recovery {
            tenants: state
                .tenants
                .iter()
                .map(|t| (t.name.clone(), t.weight, t.failed))
                .collect(),
            pending: state
                .jobs
                .iter()
                .filter_map(|(&(idx, seq), s)| match s {
                    JobState::Pending { root, level, tol } => Some(PendingJob {
                        tenant: state.tenants[idx].name.clone(),
                        seq,
                        root: *root,
                        level: *level,
                        tol: *tol,
                    }),
                    JobState::Outcome { .. } => None,
                })
                .collect(),
            unacked_outcomes: state
                .jobs
                .values()
                .filter(|s| matches!(s, JobState::Outcome { .. }))
                .count(),
        };
        let token_nonce = {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            t ^ ((std::process::id() as u64) << 32)
        };
        Ok((
            Journal {
                inner: Mutex::new(Inner {
                    cfg,
                    state,
                    file,
                    seg_index,
                    seg_bytes,
                    token_nonce,
                }),
            },
            recovery,
        ))
    }

    /// Register `tenant` (or resume it). A nonzero token must match the
    /// journal's record. `token == 0` means "fresh": it is honoured for
    /// an unknown tenant, and for a known tenant *only* while that
    /// tenant has no journaled activity — the interrupted-handshake
    /// window, where a crash between journaling the registration and
    /// delivering `Welcome` left the client tokenless. Once the tenant
    /// has any journaled job, outcome, or ack, a tokenless `Hello` is
    /// refused: handing out the real token (and the unacked replay)
    /// to any connection that merely knows the name would let it steal
    /// the session. `last_reply` acknowledges every reply at or below
    /// it, and must not exceed the highest reply sequence the daemon
    /// ever issued — a forged watermark would compact away replies the
    /// legitimate client never received.
    pub fn register(
        &self,
        tenant: &str,
        weight: u32,
        token: u64,
        last_reply: u64,
    ) -> Result<Resume, String> {
        let mut g = self.inner.lock().unwrap();
        let inner = &mut *g;
        match inner.state.by_name.get(tenant).copied() {
            Some(idx) => {
                let tn = &inner.state.tenants[idx];
                let known = tn.token;
                if token != 0 && token != known {
                    return Err(format!(
                        "resume token {token:#x} does not match the journal's record for \
                         tenant {tenant:?} — refusing to resume"
                    ));
                }
                if token == 0 {
                    let started = tn.next_rseq > 1
                        || tn.acked > 0
                        || inner
                            .state
                            .jobs
                            .range((idx, 0)..=(idx, u64::MAX))
                            .next()
                            .is_some();
                    if started {
                        return Err(format!(
                            "tenant {tenant:?} has journaled history; resuming it requires \
                             its token — refusing a tokenless hello"
                        ));
                    }
                }
                if last_reply >= inner.state.tenants[idx].next_rseq {
                    return Err(format!(
                        "last_reply {last_reply} acknowledges replies the daemon never \
                         issued (next reply sequence is {}) — refusing",
                        inner.state.tenants[idx].next_rseq
                    ));
                }
                if last_reply > inner.state.tenants[idx].acked {
                    inner
                        .append_ack(idx, last_reply)
                        .map_err(|e| format!("journal ack: {e}"))?;
                }
                let mut replay: Vec<(u64, ServeMsg)> = inner
                    .state
                    .jobs
                    .iter()
                    .filter_map(|(&(t, seq), s)| match s {
                        JobState::Outcome { rseq, body } if t == idx && *rseq > last_reply => {
                            Some((*rseq, body.to_msg(seq, *rseq)))
                        }
                        _ => None,
                    })
                    .collect();
                replay.sort_by_key(|(rseq, _)| *rseq);
                Ok(Resume {
                    token: known,
                    replay: replay.into_iter().map(|(_, m)| m).collect(),
                })
            }
            None => {
                if token != 0 {
                    return Err(format!(
                        "resume token {token:#x} presented for tenant {tenant:?}, but the \
                         journal has no record of it — refusing to resume"
                    ));
                }
                if last_reply != 0 {
                    return Err(format!(
                        "last_reply {last_reply} presented by a tenant the journal has \
                         never issued a reply to — refusing"
                    ));
                }
                let idx = inner.state.tenants.len();
                let minted =
                    (splitmix64(inner.token_nonce ^ (idx as u64)) & 0x7fff_ffff_ffff_ffff).max(1);
                let rec = Unit::tuple(vec![
                    Unit::int(R_REGISTER),
                    Unit::text(tenant),
                    Unit::int(weight as i64),
                    Unit::int(minted as i64),
                ]);
                inner
                    .append(&rec)
                    .map_err(|e| format!("journal register: {e}"))?;
                inner.state.apply(&rec).expect("self-built record");
                Ok(Resume {
                    token: minted,
                    replay: Vec::new(),
                })
            }
        }
    }

    /// Journal an admission *before* it enters the admission queue.
    pub fn admit(
        &self,
        tenant: &str,
        seq: u64,
        root: u32,
        level: u32,
        tol: f64,
    ) -> io::Result<Admit> {
        let mut g = self.inner.lock().unwrap();
        let inner = &mut *g;
        let idx = *inner.state.by_name.get(tenant).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("admit for unregistered tenant {tenant:?}"),
            )
        })?;
        match inner.state.jobs.get(&(idx, seq)) {
            Some(JobState::Pending { .. }) => return Ok(Admit::DuplicatePending),
            Some(JobState::Outcome { rseq, body }) if !body.is_reject() => {
                return Ok(Admit::Replay(Box::new(body.to_msg(seq, *rseq))));
            }
            // A journaled Reject is not terminal: the client is retrying
            // after backpressure, so fall through and re-admit.
            Some(JobState::Outcome { .. }) | None => {}
        }
        let rec = Unit::tuple(vec![
            Unit::int(R_ADMIT),
            Unit::text(tenant),
            Unit::int(seq as i64),
            Unit::int(root as i64),
            Unit::int(level as i64),
            Unit::real(tol),
        ]);
        inner.append(&rec)?;
        inner.state.apply(&rec).expect("self-built record");
        Ok(Admit::New)
    }

    /// Journal an outcome *before* it is sent, assigning and returning
    /// its reply sequence.
    pub fn record_outcome(&self, tenant: &str, seq: u64, body: &OutcomeBody) -> io::Result<u64> {
        let mut g = self.inner.lock().unwrap();
        let inner = &mut *g;
        let idx = *inner.state.by_name.get(tenant).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("outcome for unregistered tenant {tenant:?}"),
            )
        })?;
        let rseq = inner.state.tenants[idx].next_rseq;
        let rec = Unit::tuple(vec![
            Unit::int(R_OUTCOME),
            Unit::text(tenant),
            Unit::int(seq as i64),
            Unit::int(rseq as i64),
            body.to_unit(),
        ]);
        inner.append(&rec)?;
        inner.state.apply(&rec).expect("self-built record");
        Ok(rseq)
    }

    /// The client has durably consumed every reply with `rseq <= upto`.
    pub fn ack(&self, tenant: &str, upto: u64) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        let inner = &mut *g;
        let Some(idx) = inner.state.by_name.get(tenant).copied() else {
            return Ok(()); // unknown tenant's ack is a no-op, not an error
        };
        if upto > inner.state.tenants[idx].acked {
            inner.append_ack(idx, upto)?;
        }
        Ok(())
    }

    /// Jobs currently journaled without a terminal outcome (test hook and
    /// operator introspection).
    pub fn pending_count(&self) -> usize {
        let g = self.inner.lock().unwrap();
        g.state
            .jobs
            .values()
            .filter(|s| matches!(s, JobState::Pending { .. }))
            .count()
    }

    /// Current segment count on disk (1 except transiently; tests use
    /// this to observe rotation + compaction).
    pub fn segment_count(&self) -> usize {
        let g = self.inner.lock().unwrap();
        fs::read_dir(&g.cfg.dir)
            .map(|rd| {
                rd.filter(|e| {
                    e.as_ref()
                        .map(|e| {
                            let n = e.file_name().to_string_lossy().into_owned();
                            n.starts_with("wal-") && n.ends_with(".seg")
                        })
                        .unwrap_or(false)
                })
                .count()
            })
            .unwrap_or(0)
    }
}

impl Inner {
    fn append(&mut self, rec: &Unit) -> io::Result<()> {
        let bytes = encode_record(rec)?;
        self.file.write_all(&bytes)?;
        if self.cfg.fsync {
            self.file.sync_data()?;
        }
        self.seg_bytes += bytes.len() as u64;
        if self.seg_bytes >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    fn append_ack(&mut self, idx: usize, upto: u64) -> io::Result<()> {
        let rec = Unit::tuple(vec![
            Unit::int(R_ACK),
            Unit::text(&self.state.tenants[idx].name),
            Unit::int(upto as i64),
        ]);
        self.append(&rec)?;
        self.state.ack(idx, upto);
        Ok(())
    }

    /// Start a new segment headed by a snapshot of live state, then drop
    /// the older segments — compaction of everything already acked.
    fn rotate(&mut self) -> io::Result<()> {
        let next = self.seg_index + 1;
        let path = self.cfg.dir.join(seg_name(next));
        let mut bytes = seg_header();
        bytes.extend_from_slice(&encode_record(&self.state.snapshot_unit())?);
        renovation::atomic_replace(&path, &bytes, self.cfg.fsync)?;
        self.file = OpenOptions::new().append(true).open(&path)?;
        for old in 1..next {
            let _ = fs::remove_file(self.cfg.dir.join(seg_name(old)));
        }
        self.seg_index = next;
        self.seg_bytes = bytes.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mfsj-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn done(v: f64) -> OutcomeBody {
        OutcomeBody::Done {
            grids: 3,
            l2_error: 1e-4,
            combined: vec![v, v + 0.5],
        }
    }

    #[test]
    fn register_admit_outcome_survive_reopen() {
        let dir = tmp_dir("reopen");
        let (j, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert!(rec.tenants.is_empty());
        let r = j.register("acme", 2, 0, 0).unwrap();
        assert_ne!(r.token, 0);
        assert!(matches!(
            j.admit("acme", 1, 2, 1, 1e-3).unwrap(),
            Admit::New
        ));
        assert!(matches!(
            j.admit("acme", 2, 2, 1, 1e-3).unwrap(),
            Admit::New
        ));
        assert!(matches!(
            j.admit("acme", 1, 2, 1, 1e-3).unwrap(),
            Admit::DuplicatePending
        ));
        let rseq = j.record_outcome("acme", 1, &done(1.0)).unwrap();
        assert_eq!(rseq, 1);
        drop(j);

        // "Crash": reopen from disk. Seq 2 is pending, seq 1's outcome is
        // unacked, the tenant keeps its token.
        let (j2, rec2) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec2.tenants, vec![("acme".to_string(), 2, 0)]);
        assert_eq!(rec2.pending.len(), 1);
        assert_eq!(rec2.pending[0].seq, 2);
        assert_eq!(rec2.unacked_outcomes, 1);
        let r2 = j2.register("acme", 2, r.token, 0).unwrap();
        assert_eq!(r2.token, r.token);
        assert_eq!(r2.replay.len(), 1);
        match &r2.replay[0] {
            ServeMsg::Done {
                seq,
                rseq,
                combined,
                ..
            } => {
                assert_eq!((*seq, *rseq), (1, 1));
                assert_eq!(combined, &vec![1.0, 1.5]);
            }
            other => panic!("unexpected replay {other:?}"),
        }
        // Resubmitting the finished seq replays, not re-executes.
        assert!(matches!(
            j2.admit("acme", 1, 2, 1, 1e-3).unwrap(),
            Admit::Replay(_)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_tokens_are_refused() {
        let dir = tmp_dir("token");
        let (j, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
        let r = j.register("a", 1, 0, 0).unwrap();
        assert!(j
            .register("a", 1, r.token ^ 1, 0)
            .unwrap_err()
            .contains("does not match"));
        assert!(j
            .register("ghost", 1, 77, 0)
            .unwrap_err()
            .contains("no record"));
        // The interrupted-handshake window: no journaled activity yet, so
        // a tokenless re-registration recovers the existing token.
        assert_eq!(j.register("a", 1, 0, 0).unwrap().token, r.token);
        // Once the tenant has any journaled history, a tokenless hello
        // is a session-steal attempt and is refused.
        j.admit("a", 1, 2, 1, 1e-3).unwrap();
        assert!(j
            .register("a", 1, 0, 0)
            .unwrap_err()
            .contains("requires its token"));
        // The real token still resumes.
        assert_eq!(j.register("a", 1, r.token, 0).unwrap().token, r.token);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A `last_reply` above anything the daemon ever issued is a forged
    /// ack that would compact away undelivered replies — refused, both
    /// with a valid token and on first registration.
    #[test]
    fn inflated_last_reply_is_refused() {
        let dir = tmp_dir("inflate");
        let (j, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert!(j
            .register("a", 1, 0, 3)
            .unwrap_err()
            .contains("never issued a reply"));
        let tok = j.register("a", 1, 0, 0).unwrap().token;
        j.admit("a", 1, 2, 1, 1e-3).unwrap();
        let rseq = j.record_outcome("a", 1, &done(1.0)).unwrap();
        assert_eq!(rseq, 1);
        assert!(j
            .register("a", 1, tok, 2)
            .unwrap_err()
            .contains("never issued"));
        // The genuine watermark is accepted and acks the outcome.
        let r = j.register("a", 1, tok, 1).unwrap();
        assert!(r.replay.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn acked_replies_are_not_replayed_and_rejects_readmit() {
        let dir = tmp_dir("ack");
        let (j, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
        let tok = j.register("a", 1, 0, 0).unwrap().token;
        j.admit("a", 1, 2, 1, 1e-3).unwrap();
        j.admit("a", 2, 2, 1, 1e-3).unwrap();
        j.record_outcome("a", 1, &done(1.0)).unwrap(); // rseq 1
        j.record_outcome(
            "a",
            2,
            &OutcomeBody::Reject {
                retry_after_ms: 25,
                reason: RejectReason::QueueFull,
            },
        )
        .unwrap(); // rseq 2
        j.ack("a", 1).unwrap();
        let r = j.register("a", 1, tok, 1).unwrap();
        assert_eq!(r.replay.len(), 1, "only the unacked reject replays");
        assert!(matches!(
            r.replay[0],
            ServeMsg::Reject {
                seq: 2,
                rseq: 2,
                ..
            }
        ));
        // The rejected seq may be re-admitted (backpressure retry).
        assert!(matches!(j.admit("a", 2, 2, 1, 1e-3).unwrap(), Admit::New));
        // Hello's last_reply acks implicitly, and survives reopen.
        drop(j);
        let (j2, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec.pending.len(), 1); // the re-admitted seq 2
        let r2 = j2.register("a", 1, tok, 0).unwrap();
        assert!(
            r2.replay.is_empty(),
            "acked Done stays compacted: {:?}",
            r2.replay
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp_dir("torn");
        let (j, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
        j.register("a", 1, 0, 0).unwrap();
        j.admit("a", 1, 2, 1, 1e-3).unwrap();
        drop(j);
        let path = dir.join(seg_name(1));
        let bytes = fs::read(&path).unwrap();
        // Chop mid-record: recovery keeps the register, drops the admit.
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (_j2, rec) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(rec.tenants.len(), 1);
        assert!(rec.pending.is_empty(), "torn admit must not resurrect");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_compacts_acked_entries() {
        let dir = tmp_dir("rotate");
        let mut cfg = JournalConfig::new(&dir);
        cfg.segment_bytes = 2048; // rotate eagerly
        let (j, _) = Journal::open(cfg.clone()).unwrap();
        let tok = j.register("a", 1, 0, 0).unwrap().token;
        for seq in 1..=64u64 {
            j.admit("a", seq, 2, 1, 1e-3).unwrap();
            let rseq = j.record_outcome("a", seq, &done(seq as f64)).unwrap();
            j.ack("a", rseq).unwrap();
        }
        assert_eq!(j.segment_count(), 1, "old segments deleted after rotation");
        drop(j);
        // The compacted journal still knows the tenant and its watermark.
        let (j2, rec) = Journal::open(cfg).unwrap();
        assert_eq!(rec.tenants.len(), 1);
        assert!(rec.pending.is_empty());
        assert_eq!(rec.unacked_outcomes, 0);
        let r = j2.register("a", 1, tok, 0).unwrap();
        assert!(r.replay.is_empty());
        // rseq keeps counting from where it left off.
        j2.admit("a", 65, 2, 1, 1e-3).unwrap();
        assert_eq!(j2.record_outcome("a", 65, &done(0.0)).unwrap(), 65);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_non_final_segment_is_fatal() {
        let dir = tmp_dir("rot-corrupt");
        let mut cfg = JournalConfig::new(&dir);
        cfg.segment_bytes = 1024;
        let (j, _) = Journal::open(cfg.clone()).unwrap();
        j.register("a", 1, 0, 0).unwrap();
        for seq in 1..=32u64 {
            j.admit("a", seq, 2, 1, 1e-3).unwrap();
        }
        drop(j);
        // Plant a corrupt *earlier* segment alongside the live one.
        let live = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("wal-"))
            .unwrap();
        let live_name = live.file_name().to_string_lossy().into_owned();
        let idx: u64 = live_name
            .strip_prefix("wal-")
            .unwrap()
            .strip_suffix(".seg")
            .unwrap()
            .parse()
            .unwrap();
        assert!(idx >= 1);
        let mut earlier = fs::read(live.path()).unwrap();
        let last = earlier.len() - 1;
        earlier[last] ^= 0x10; // bit rot, not truncation
        fs::write(dir.join(seg_name(idx + 1)), fs::read(live.path()).unwrap()).unwrap();
        fs::write(live.path(), &earlier).unwrap();
        let err = match Journal::open(cfg) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("corrupt non-final segment must refuse to open"),
        };
        assert!(err.contains("non-final segment"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
