//! Jittered exponential backoff for retry loops.
//!
//! Two places retry against the daemon: a `Reject`ed submit (backpressure)
//! and a dropped connection (crash, restart, network blip). Retrying on a
//! fixed schedule is how a mass disconnect becomes a retry *storm* — every
//! bounced client sleeps the same interval and stampedes back in the same
//! millisecond. This module implements capped exponential backoff with
//! *full jitter* (AWS-style: sleep a uniform draw from `[0, ceil)`, ceil
//! doubling per attempt), floored at whatever `retry_after` hint the
//! server sent, from a deterministic seeded generator so tests and the
//! bench harness stay reproducible.

use std::time::Duration;

/// Deterministic jittered exponential backoff.
///
/// ```
/// use serve::backoff::Backoff;
/// use std::time::Duration;
/// let mut b = Backoff::new(42);
/// let d = b.next(None);              // uniform in [0, base)
/// assert!(d < Duration::from_millis(10));
/// let hinted = b.next(Some(Duration::from_millis(25)));
/// assert!(hinted >= Duration::from_millis(25)); // hint is a floor
/// b.reset();                         // success: start over
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Default shape: 10 ms base, 2 s cap. `seed` individualizes the
    /// jitter stream (use a per-client value).
    pub fn new(seed: u64) -> Backoff {
        Backoff::with(Duration::from_millis(10), Duration::from_secs(2), seed)
    }

    /// Custom base delay and cap.
    pub fn with(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            attempt: 0,
            // Avoid the all-zero fixed point of the xorshift step.
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Attempts since the last [`reset`](Backoff::reset).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The delay before the next retry: a uniform draw from
    /// `[0, min(cap, base·2^attempt))`, plus the server's `retry_after`
    /// hint (the hint is a floor — the server knows something the client
    /// does not, e.g. its drain grace or queue depth).
    pub fn next(&mut self, hint: Option<Duration>) -> Duration {
        let ceil = self
            .base
            .saturating_mul(1u32 << self.attempt.min(20))
            .min(self.cap)
            .max(Duration::from_micros(1));
        self.attempt = self.attempt.saturating_add(1);
        let jitter_ns = self.draw() % ceil.as_nanos().max(1) as u64;
        hint.unwrap_or(Duration::ZERO) + Duration::from_nanos(jitter_ns)
    }

    /// Call after a success so the next failure starts from the base.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    fn draw(&mut self) -> u64 {
        // xorshift64* — tiny, seedable, plenty for jitter.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_bounded_and_honor_the_hint() {
        let mut b = Backoff::with(Duration::from_millis(10), Duration::from_millis(500), 7);
        for attempt in 0..32 {
            let hint = Duration::from_millis(25);
            let d = b.next(Some(hint));
            assert!(d >= hint, "attempt {attempt}: {d:?} under the hint");
            assert!(
                d <= hint + Duration::from_millis(500),
                "attempt {attempt}: {d:?} over cap+hint"
            );
        }
        b.reset();
        assert!(
            b.next(None) < Duration::from_millis(10),
            "reset restores the base"
        );
    }

    /// The satellite requirement: after a mass disconnect the fleet's
    /// retries must not re-arrive in lockstep. Simulate 512 clients all
    /// bounced at t=0 and check that no narrow window captures more than
    /// a small fraction of any retry wave.
    #[test]
    fn mass_disconnect_storm_is_dispersed() {
        const CLIENTS: usize = 512;
        let mut backoffs: Vec<Backoff> = (0..CLIENTS)
            .map(|i| Backoff::new(0xC0FFEE ^ i as u64))
            .collect();
        for wave in 0..6 {
            let delays: Vec<Duration> = backoffs.iter_mut().map(|b| b.next(None)).collect();
            let ceil_ms = (10u64 << wave).min(2000);
            // Bucket the wave into 1 ms bins over its spread. A lockstep
            // schedule puts 100% in one bin; full jitter spreads ~uniform,
            // so even a generous 15% bound has a wide safety margin while
            // still failing any constant or coarsely-quantized schedule.
            let mut bins = vec![0usize; ceil_ms as usize + 1];
            for d in &delays {
                bins[(d.as_millis() as u64).min(ceil_ms) as usize] += 1;
            }
            let worst = *bins.iter().max().unwrap();
            assert!(
                worst <= CLIENTS * 15 / 100,
                "wave {wave}: {worst}/{CLIENTS} clients retry in the same millisecond"
            );
            // And the wave's spread actually widens as attempts mount.
            let max = delays.iter().max().unwrap();
            assert!(
                *max >= Duration::from_millis(ceil_ms / 2),
                "wave {wave}: max delay {max:?} suggests the ceiling is not growing"
            );
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules() {
        let mut a = Backoff::new(1);
        let mut b = Backoff::new(2);
        let sa: Vec<Duration> = (0..8).map(|_| a.next(None)).collect();
        let sb: Vec<Duration> = (0..8).map(|_| b.next(None)).collect();
        assert_ne!(sa, sb);
        // Same seed ⇒ same schedule (reproducible benches).
        let mut c = Backoff::new(1);
        let sc: Vec<Duration> = (0..8).map(|_| c.next(None)).collect();
        assert_eq!(sa, sc);
    }
}
