//! The tenant↔daemon session protocol.
//!
//! Tenants speak to `mf-served` the same way the coordinator speaks to its
//! remote task instances: every message is a [`Unit`] tuple with an
//! integer discriminant, encoded by [`transport::wire`] and shipped as one
//! CRC-framed [`transport::frame`]. Reusing that stack keeps the whole
//! system at exactly one binary format and gives served results the same
//! bit-exactness guarantee as worker payloads — the `combined` field in
//! [`ServeMsg::Done`] is the full solution vector, so a client can check
//! its reply bit-for-bit against a locally computed sequential oracle.
//!
//! Session shape (tenant side initiates):
//!
//! ```text
//! tenant                              daemon
//!   | -- Hello{ver,tenant,weight,token,last_reply} -->|
//!   |<-- Welcome{session,token} -------- |   (token resumes the session)
//!   |<-- Done{rseq,…} ------------------ |   (replay of unacked replies)
//!   | -- Submit{seq,root,level,tol} ---->|   (any number, pipelined)
//!   |<-- Done{seq,rseq,…,combined} ----- |   (or Fail{seq,rseq,error})
//!   |<-- Reject{seq,rseq,retry_after,…}- |   (backpressure: try later)
//!   | -- Ack{upto} --------------------->|   (replies ≤ upto delivered)
//!   | -- Drain ------------------------->|   (admin: finish and stop)
//!   |<-- Drained{served} --------------- |   (all accepted work done)
//!   | -- Bye --------------------------->|   (tenant departs)
//! ```
//!
//! `Submit`s are *pipelined*: a tenant may keep many in flight and replies
//! carry the request's `seq`, so one connection multiplexes a whole
//! closed-loop workload. A `Reject` is not an error — it is the admission
//! layer saying "my bounded queue for you is full (or I am draining, or
//! your fault budget is spent); come back in `retry_after_ms`".
//!
//! Version 2 adds crash-durable resume: against a journaled daemon every
//! reply additionally carries `rseq`, the tenant's monotonically increasing
//! *reply sequence*. A reconnecting tenant presents the `token` it was
//! issued in `Welcome` plus the highest `rseq` it has seen; the daemon
//! replays every journaled reply above that watermark (the client drops
//! anything at or below it, making delivery exactly-once), and `Ack{upto}`
//! lets the journal compact replies the client has durably consumed.
//! Against a journal-less daemon `rseq` and `token` are 0 and resume is
//! refused.

use manifold::Unit;
use transport::WireError;

/// Version of the tenant session protocol; peers with different versions
/// refuse the handshake. Version 2 added resume tokens and reply
/// sequences (crash-durable serving).
pub const SERVE_PROTOCOL_VERSION: i64 = 2;

const T_HELLO: i64 = 100;
const T_WELCOME: i64 = 101;
const T_SUBMIT: i64 = 102;
const T_DONE: i64 = 103;
const T_FAIL: i64 = 104;
const T_REJECT: i64 = 105;
const T_DRAIN: i64 = 106;
const T_DRAINED: i64 = 107;
const T_BYE: i64 = 108;
const T_ACK: i64 = 109;

/// Why the admission layer refused a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's bounded queue is at capacity.
    QueueFull,
    /// The daemon is draining: accepted work finishes, new work does not.
    Draining,
    /// The tenant spent its fault budget; the operator must re-admit it.
    FaultBudgetExhausted,
    /// The requested level exceeds the fleet's provisioned capacity.
    OverCapacity,
}

impl RejectReason {
    fn code(self) -> i64 {
        match self {
            RejectReason::QueueFull => 0,
            RejectReason::Draining => 1,
            RejectReason::FaultBudgetExhausted => 2,
            RejectReason::OverCapacity => 3,
        }
    }

    fn from_code(c: i64) -> Result<Self, String> {
        match c {
            0 => Ok(RejectReason::QueueFull),
            1 => Ok(RejectReason::Draining),
            2 => Ok(RejectReason::FaultBudgetExhausted),
            3 => Ok(RejectReason::OverCapacity),
            other => Err(format!("unknown reject reason {other}")),
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "queue full"),
            RejectReason::Draining => write!(f, "draining"),
            RejectReason::FaultBudgetExhausted => write!(f, "fault budget exhausted"),
            RejectReason::OverCapacity => write!(f, "over capacity"),
        }
    }
}

/// One tenant-session message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeMsg {
    /// Tenant → daemon, first message on a fresh connection.
    Hello {
        /// Must equal [`SERVE_PROTOCOL_VERSION`].
        version: i64,
        /// Self-chosen tenant name (fair-share identity; sessions with the
        /// same name share one queue and one budget).
        tenant: String,
        /// Requested fair-share weight (clamped by the daemon).
        weight: u32,
        /// Resume token from a previous `Welcome`, or 0 for a fresh
        /// session. A journaled daemon replays unacknowledged replies to
        /// a resuming tenant; presenting a token the daemon does not
        /// recognise fails the handshake.
        token: u64,
        /// Highest reply sequence this tenant has already seen (0 when
        /// fresh). Replies at or below this are acknowledged by the
        /// handshake itself and are not replayed.
        last_reply: u64,
    },
    /// Daemon → tenant: session admitted.
    Welcome {
        /// Daemon-assigned session id.
        session: u64,
        /// Resume token for this tenant (stable across reconnects and
        /// daemon restarts); 0 when the daemon runs without a journal.
        token: u64,
    },
    /// Tenant → daemon: solve this problem.
    Submit {
        /// Tenant-chosen sequence number; the reply echoes it.
        seq: u64,
        /// Root refinement level of the problem.
        root: u32,
        /// Additional refinement above the root level.
        level: u32,
        /// Integrator tolerance.
        tol: f64,
    },
    /// Daemon → tenant: job served.
    Done {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Per-tenant reply sequence (monotonic; 0 without a journal).
        rseq: u64,
        /// Number of component grids the combination visited.
        grids: u64,
        /// Discrete L2 error of the combined solution.
        l2_error: f64,
        /// The full combined solution field — bit-identical to a solo
        /// sequential run of the same (root, level, tol).
        combined: Vec<f64>,
    },
    /// Daemon → tenant: the job was accepted but failed in the engine.
    Fail {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Per-tenant reply sequence (monotonic; 0 without a journal).
        rseq: u64,
        /// Human-readable failure description.
        error: String,
    },
    /// Daemon → tenant: submission refused at admission.
    Reject {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Per-tenant reply sequence (monotonic; 0 without a journal).
        rseq: u64,
        /// Suggested back-off before retrying.
        retry_after_ms: u64,
        /// Why.
        reason: RejectReason,
    },
    /// Tenant → daemon: every reply with `rseq <= upto` has been durably
    /// consumed; the journal may compact them. Only meaningful against a
    /// journaled daemon (otherwise ignored).
    Ack {
        /// Highest consumed reply sequence.
        upto: u64,
    },
    /// Tenant → daemon: finish accepted work, then shut down. (The daemon
    /// honours SIGTERM identically.)
    Drain,
    /// Daemon → tenant: drain complete; connection closes after this.
    Drained {
        /// Jobs served over the daemon's whole life.
        served: u64,
    },
    /// Tenant → daemon: this session is leaving (its queued jobs are
    /// dropped, its in-flight jobs are discarded on completion).
    Bye,
}

impl ServeMsg {
    /// Lower to the unit representation.
    pub fn to_unit(&self) -> Unit {
        match self {
            ServeMsg::Hello {
                version,
                tenant,
                weight,
                token,
                last_reply,
            } => Unit::tuple(vec![
                Unit::int(T_HELLO),
                Unit::int(*version),
                Unit::text(tenant),
                Unit::int(*weight as i64),
                Unit::int(*token as i64),
                Unit::int(*last_reply as i64),
            ]),
            ServeMsg::Welcome { session, token } => Unit::tuple(vec![
                Unit::int(T_WELCOME),
                Unit::int(*session as i64),
                Unit::int(*token as i64),
            ]),
            ServeMsg::Submit {
                seq,
                root,
                level,
                tol,
            } => Unit::tuple(vec![
                Unit::int(T_SUBMIT),
                Unit::int(*seq as i64),
                Unit::int(*root as i64),
                Unit::int(*level as i64),
                Unit::real(*tol),
            ]),
            ServeMsg::Done {
                seq,
                rseq,
                grids,
                l2_error,
                combined,
            } => Unit::tuple(vec![
                Unit::int(T_DONE),
                Unit::int(*seq as i64),
                Unit::int(*rseq as i64),
                Unit::int(*grids as i64),
                Unit::real(*l2_error),
                Unit::reals(combined.clone()),
            ]),
            ServeMsg::Fail { seq, rseq, error } => Unit::tuple(vec![
                Unit::int(T_FAIL),
                Unit::int(*seq as i64),
                Unit::int(*rseq as i64),
                Unit::text(error),
            ]),
            ServeMsg::Reject {
                seq,
                rseq,
                retry_after_ms,
                reason,
            } => Unit::tuple(vec![
                Unit::int(T_REJECT),
                Unit::int(*seq as i64),
                Unit::int(*rseq as i64),
                Unit::int(*retry_after_ms as i64),
                Unit::int(reason.code()),
            ]),
            ServeMsg::Ack { upto } => Unit::tuple(vec![Unit::int(T_ACK), Unit::int(*upto as i64)]),
            ServeMsg::Drain => Unit::tuple(vec![Unit::int(T_DRAIN)]),
            ServeMsg::Drained { served } => {
                Unit::tuple(vec![Unit::int(T_DRAINED), Unit::int(*served as i64)])
            }
            ServeMsg::Bye => Unit::tuple(vec![Unit::int(T_BYE)]),
        }
    }

    /// Parse from the unit representation.
    pub fn from_unit(unit: &Unit) -> Result<ServeMsg, String> {
        let items = unit.as_tuple().ok_or("message is not a tuple")?;
        let tag = items
            .first()
            .and_then(Unit::as_int)
            .ok_or("message has no integer tag")?;
        let int = |i: usize| -> Result<i64, String> {
            items
                .get(i)
                .and_then(Unit::as_int)
                .ok_or_else(|| format!("field {i} is not an int"))
        };
        let real = |i: usize| -> Result<f64, String> {
            items
                .get(i)
                .and_then(Unit::as_real)
                .ok_or_else(|| format!("field {i} is not a real"))
        };
        let text = |i: usize| -> Result<String, String> {
            items
                .get(i)
                .and_then(Unit::as_text)
                .map(str::to_string)
                .ok_or_else(|| format!("field {i} is not text"))
        };
        let arity = |n: usize| -> Result<(), String> {
            if items.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "tag {tag}: expected arity {n}, got {}",
                    items.len()
                ))
            }
        };
        match tag {
            T_HELLO => {
                arity(6)?;
                Ok(ServeMsg::Hello {
                    version: int(1)?,
                    tenant: text(2)?,
                    weight: int(3)?.max(0) as u32,
                    token: int(4)? as u64,
                    last_reply: int(5)? as u64,
                })
            }
            T_WELCOME => {
                arity(3)?;
                Ok(ServeMsg::Welcome {
                    session: int(1)? as u64,
                    token: int(2)? as u64,
                })
            }
            T_SUBMIT => {
                arity(5)?;
                Ok(ServeMsg::Submit {
                    seq: int(1)? as u64,
                    root: int(2)?.max(0) as u32,
                    level: int(3)?.max(0) as u32,
                    tol: real(4)?,
                })
            }
            T_DONE => {
                arity(6)?;
                let combined = items
                    .get(5)
                    .and_then(Unit::as_reals)
                    .ok_or("field 5 is not a reals vector")?;
                Ok(ServeMsg::Done {
                    seq: int(1)? as u64,
                    rseq: int(2)? as u64,
                    grids: int(3)? as u64,
                    l2_error: real(4)?,
                    combined: combined.as_ref().clone(),
                })
            }
            T_FAIL => {
                arity(4)?;
                Ok(ServeMsg::Fail {
                    seq: int(1)? as u64,
                    rseq: int(2)? as u64,
                    error: text(3)?,
                })
            }
            T_REJECT => {
                arity(5)?;
                Ok(ServeMsg::Reject {
                    seq: int(1)? as u64,
                    rseq: int(2)? as u64,
                    retry_after_ms: int(3)? as u64,
                    reason: RejectReason::from_code(int(4)?)?,
                })
            }
            T_ACK => {
                arity(2)?;
                Ok(ServeMsg::Ack {
                    upto: int(1)? as u64,
                })
            }
            T_DRAIN => {
                arity(1)?;
                Ok(ServeMsg::Drain)
            }
            T_DRAINED => {
                arity(2)?;
                Ok(ServeMsg::Drained {
                    served: int(1)? as u64,
                })
            }
            T_BYE => {
                arity(1)?;
                Ok(ServeMsg::Bye)
            }
            other => Err(format!("unknown serve message tag {other}")),
        }
    }

    /// Encode to wire bytes (one frame payload).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        transport::wire::encode_unit_vec(&self.to_unit())
    }

    /// Decode from one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<ServeMsg, String> {
        let unit = transport::wire::decode_unit(bytes).map_err(|e| e.to_string())?;
        ServeMsg::from_unit(&unit)
    }

    /// Encode and frame in one step (header + payload bytes, ready for a
    /// socket write).
    pub fn to_frame(&self) -> Result<Vec<u8>, WireError> {
        Ok(transport::frame::frame_vec(&self.encode()?))
    }
}

/// FNV-1a over the bit patterns of a float field — the compact witness of
/// bit-identity used across the benches and the serve layer.
pub fn field_checksum(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_round_trip() {
        let msgs = vec![
            ServeMsg::Hello {
                version: SERVE_PROTOCOL_VERSION,
                tenant: "team-red".into(),
                weight: 4,
                token: 0xdead_beef,
                last_reply: 41,
            },
            ServeMsg::Welcome {
                session: 9,
                token: 0xdead_beef,
            },
            ServeMsg::Submit {
                seq: 17,
                root: 1,
                level: 3,
                tol: 1e-3,
            },
            ServeMsg::Done {
                seq: 17,
                rseq: 42,
                grids: 7,
                l2_error: 3.5e-4,
                combined: vec![0.0, -1.5, 2.25],
            },
            ServeMsg::Fail {
                seq: 18,
                rseq: 43,
                error: "engine: subsolve diverged".into(),
            },
            ServeMsg::Reject {
                seq: 19,
                rseq: 44,
                retry_after_ms: 25,
                reason: RejectReason::QueueFull,
            },
            ServeMsg::Ack { upto: 44 },
            ServeMsg::Drain,
            ServeMsg::Drained { served: 4096 },
            ServeMsg::Bye,
        ];
        for m in msgs {
            let bytes = m.encode().unwrap();
            assert_eq!(ServeMsg::decode(&bytes).unwrap(), m, "round trip {m:?}");
        }
    }

    #[test]
    fn reject_reasons_round_trip() {
        for r in [
            RejectReason::QueueFull,
            RejectReason::Draining,
            RejectReason::FaultBudgetExhausted,
            RejectReason::OverCapacity,
        ] {
            assert_eq!(RejectReason::from_code(r.code()).unwrap(), r);
        }
        assert!(RejectReason::from_code(77).is_err());
    }

    #[test]
    fn garbage_rejected_with_reason() {
        assert!(ServeMsg::decode(&[]).is_err());
        let bad_tag = ServeMsg::from_unit(&Unit::tuple(vec![Unit::int(55)]));
        assert!(bad_tag.unwrap_err().contains("55"));
        let bad_arity = ServeMsg::from_unit(&Unit::tuple(vec![Unit::int(102)]));
        assert!(bad_arity.unwrap_err().contains("arity"));
    }

    #[test]
    fn checksum_distinguishes_bit_patterns() {
        assert_ne!(field_checksum(&[0.0]), field_checksum(&[-0.0]));
        assert_eq!(field_checksum(&[1.5, 2.5]), field_checksum(&[1.5, 2.5]));
    }
}
