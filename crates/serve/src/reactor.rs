//! The readiness/reactor front end: many tenant connections, a few event
//! threads, zero threads per connection.
//!
//! The transport crate's coordinator↔worker path spends a thread per
//! connection — fine for 32 workers, a coordination-overhead cliff for
//! thousands of tenants. This reactor is the other shape: sockets are
//! nonblocking, each event thread (one per core by default) owns a slice
//! of the connections and sits in a hand-rolled [`poll(2)`][crate::poll]
//! loop, and all per-connection state is a [`FrameDecoder`] plus an
//! outbound byte queue. Thread 0 additionally owns the listener and deals
//! accepted connections round-robin to the event threads through
//! injector queues.
//!
//! The reactor knows nothing about admission or engines: it turns socket
//! bytes into [`ServeMsg`]s for a [`Service`] and flushes whatever the
//! service (or the dispatcher, via [`Session::send`]) queues on each
//! session's outbox. Lifecycle: `accepting` gates new connections
//! (cleared when a drain starts), `stop` asks the threads to flush every
//! outbox and exit (bounded by a grace period so a dead peer cannot wedge
//! shutdown).

use std::io::Read;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use transport::frame::FrameDecoder;
use transport::Addr;

use crate::poll::{poll_fds, PollFd, Waker, POLLIN, POLLOUT};
use crate::proto::ServeMsg;
use crate::registry::{Registry, Session};

/// What the service wants done with the connection after a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep serving it.
    Continue,
    /// Flush its outbox, then close it.
    Close,
}

/// The application half the reactor drives.
pub trait Service: Send + Sync + 'static {
    /// One decoded message arrived on `session`.
    fn on_message(&self, session: &Arc<Session>, msg: ServeMsg) -> Action;
    /// `session`'s connection is gone (EOF, error, or post-`Close`).
    fn on_disconnect(&self, session: &Arc<Session>);
}

/// A bound listening socket, either flavour.
enum Listener {
    Tcp(std::net::TcpListener),
    Unix(std::os::unix::net::UnixListener, std::path::PathBuf),
}

impl Listener {
    fn bind(addr: &Addr) -> std::io::Result<(Listener, Addr)> {
        match addr {
            Addr::Tcp(hp) => {
                let l = std::net::TcpListener::bind(hp.as_str())?;
                l.set_nonblocking(true)?;
                let local = Addr::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), local))
            }
            Addr::Unix(path) => {
                // A stale socket file from a dead daemon refuses binds.
                let _ = std::fs::remove_file(path);
                let l = std::os::unix::net::UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok((Listener::Unix(l, path.clone()), Addr::Unix(path.clone())))
            }
        }
    }

    fn fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                s.set_nonblocking(true)?;
                Ok(Stream::Tcp(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted, nonblocking tenant socket.
enum Stream {
    Tcp(std::net::TcpStream),
    Unix(std::os::unix::net::UnixStream),
}

impl Stream {
    fn fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Per-connection reactor state.
struct ConnState {
    stream: Stream,
    session: Arc<Session>,
    dec: FrameDecoder,
    /// Service asked for [`Action::Close`]: flush, then drop.
    closing: bool,
}

/// What one event thread shares with the acceptor and the outside world.
struct ThreadState {
    waker: Arc<Waker>,
    /// Freshly accepted connections awaiting adoption by the thread.
    injector: Mutex<Vec<(Stream, Arc<Session>)>>,
}

struct SharedState {
    service: Arc<dyn Service>,
    registry: Arc<Registry>,
    threads: Vec<ThreadState>,
    accepting: AtomicBool,
    stop: AtomicBool,
    next_session: AtomicU64,
    next_thread: AtomicU64,
}

/// The running front end.
pub struct Reactor {
    shared: Arc<SharedState>,
    joins: Vec<std::thread::JoinHandle<()>>,
    local: Addr,
}

impl Reactor {
    /// Bind `addr` and start `threads` event threads (0 = one per core).
    /// Thread 0 owns the listener.
    pub fn start(
        addr: &Addr,
        threads: usize,
        service: Arc<dyn Service>,
        registry: Arc<Registry>,
    ) -> std::io::Result<Reactor> {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            threads
        };
        let (listener, local) = Listener::bind(addr)?;
        let mut states = Vec::with_capacity(threads);
        for _ in 0..threads {
            states.push(ThreadState {
                waker: Arc::new(Waker::new()?),
                injector: Mutex::new(Vec::new()),
            });
        }
        let shared = Arc::new(SharedState {
            service,
            registry,
            threads: states,
            accepting: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            next_thread: AtomicU64::new(0),
        });
        let mut joins = Vec::with_capacity(threads);
        let mut listener = Some(listener);
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            let l = listener.take(); // thread 0 owns the listener
            joins.push(
                std::thread::Builder::new()
                    .name(format!("serve-reactor-{i}"))
                    .spawn(move || event_loop(i, l, shared))?,
            );
        }
        Ok(Reactor {
            shared,
            joins,
            local,
        })
    }

    /// The bound address (with the kernel-assigned port for `tcp:…:0`).
    pub fn local_addr(&self) -> &Addr {
        &self.local
    }

    /// Stop accepting new connections (existing ones keep being served).
    pub fn stop_accepting(&self) {
        self.shared.accepting.store(false, Ordering::Release);
        self.shared.threads[0].waker.wake();
    }

    /// Flush every outbox (within `grace`), close all connections, and
    /// join the event threads. Returns true when every outbox flushed
    /// completely before the grace expired.
    pub fn stop(self, grace: Duration) -> bool {
        self.shared.accepting.store(false, Ordering::Release);
        self.shared.stop.store(true, Ordering::Release);
        for t in &self.shared.threads {
            t.waker.wake();
        }
        let deadline = Instant::now() + grace;
        let mut clean = true;
        for j in self.joins {
            // The event threads bound their own exits by the same grace;
            // a join blocking past the deadline means a wedged thread.
            if Instant::now() > deadline + Duration::from_secs(5) {
                clean = false;
                break;
            }
            if j.join().is_err() {
                clean = false;
            }
        }
        clean && self.shared.registry.is_empty()
    }
}

const READ_CHUNK: usize = 64 * 1024;
const POLL_TICK_MS: i32 = 100;
const STOP_FLUSH_GRACE: Duration = Duration::from_secs(5);

fn event_loop(index: usize, listener: Option<Listener>, shared: Arc<SharedState>) {
    let me = &shared.threads[index];
    let mut conns: Vec<ConnState> = Vec::new();
    let mut stop_seen: Option<Instant> = None;
    loop {
        // Adopt injected connections.
        for (stream, session) in me.injector.lock().drain(..) {
            conns.push(ConnState {
                stream,
                session,
                dec: FrameDecoder::new(),
                closing: false,
            });
        }

        let stopping = shared.stop.load(Ordering::Acquire);
        if stopping && stop_seen.is_none() {
            stop_seen = Some(Instant::now());
        }
        if stopping {
            // Flush what we can, then leave. Outboxes that cannot flush
            // within the grace are abandoned (dead peers).
            let all_flushed = conns.iter().all(|c| c.session.outbox.is_empty());
            let expired = stop_seen.is_some_and(|t| t.elapsed() > STOP_FLUSH_GRACE);
            if all_flushed || expired {
                for c in conns.drain(..) {
                    c.session.mark_disconnected();
                    shared.registry.remove(c.session.id);
                }
                return;
            }
        }

        // Build the poll set: waker, listener (thread 0, while accepting),
        // then one entry per connection.
        let accepting = shared.accepting.load(Ordering::Acquire);
        let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd::new(me.waker.poll_fd(), POLLIN));
        let listener_slot = if let Some(l) = listener.as_ref().filter(|_| accepting) {
            fds.push(PollFd::new(l.fd(), POLLIN));
            Some(1)
        } else {
            None
        };
        let conn_base = fds.len();
        let n_polled = conns.len();
        for c in &conns {
            let mut ev = POLLIN;
            if !c.session.outbox.is_empty() {
                ev |= POLLOUT;
            }
            fds.push(PollFd::new(c.stream.fd(), ev));
        }

        if poll_fds(&mut fds, POLL_TICK_MS).is_err() {
            // EBADF from a racing close: rebuild the set next round.
            continue;
        }

        if fds[0].ready(POLLIN) {
            me.waker.drain();
        }

        // Accept burst (thread 0).
        if let (Some(slot), Some(l)) = (listener_slot, listener.as_ref()) {
            if fds[slot].ready(POLLIN) {
                loop {
                    match l.accept() {
                        Ok(stream) => {
                            let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
                            let t = (shared.next_thread.fetch_add(1, Ordering::Relaxed) as usize)
                                % shared.threads.len();
                            let session = Session::new(id, Arc::clone(&shared.threads[t].waker));
                            shared.registry.insert(Arc::clone(&session));
                            if t == index {
                                conns.push(ConnState {
                                    stream,
                                    session,
                                    dec: FrameDecoder::new(),
                                    closing: false,
                                });
                            } else {
                                shared.threads[t].injector.lock().push((stream, session));
                                shared.threads[t].waker.wake();
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => break, // transient accept error; retry next tick
                    }
                }
            }
        }

        // Service each polled connection: reads first (they can queue
        // writes), then writes, then reap the dead. Connections accepted
        // *this* round sit past `n_polled` and wait for the next poll.
        let mut dead: Vec<usize> = Vec::new();
        let mut buf = [0u8; READ_CHUNK];
        for (ci, c) in conns.iter_mut().take(n_polled).enumerate() {
            let pf = fds[conn_base + ci];
            if pf.ready(POLLIN) && !c.closing {
                match drain_reads(c, &mut buf, &shared) {
                    Ok(()) => {}
                    Err(_) => {
                        dead.push(ci);
                        continue;
                    }
                }
            }
            // Flush opportunistically whenever there is something queued:
            // level-triggered poll plus an immediate attempt keeps latency
            // down without spinning.
            if !c.session.outbox.is_empty() {
                match c.session.outbox.write_to(&mut c.stream) {
                    Ok(_flushed) => {}
                    Err(_) => {
                        dead.push(ci);
                        continue;
                    }
                }
            }
            if c.closing && c.session.outbox.is_empty() {
                dead.push(ci);
            }
        }

        // Reap in reverse index order so removals do not shift the rest.
        for &ci in dead.iter().rev() {
            let c = conns.swap_remove(ci);
            c.session.mark_disconnected();
            shared.registry.remove(c.session.id);
            shared.service.on_disconnect(&c.session);
        }
    }
}

/// Read until `WouldBlock`/EOF, decoding and dispatching every complete
/// frame. An `Err` return means the connection is dead.
fn drain_reads(c: &mut ConnState, buf: &mut [u8], shared: &Arc<SharedState>) -> Result<(), ()> {
    loop {
        match c.stream.read(buf) {
            Ok(0) => return Err(()), // EOF
            Ok(n) => {
                c.dec.push(&buf[..n]);
                loop {
                    match c.dec.next_frame() {
                        Ok(Some(payload)) => match ServeMsg::decode(&payload) {
                            Ok(msg) => match shared.service.on_message(&c.session, msg) {
                                Action::Continue => {}
                                Action::Close => {
                                    c.closing = true;
                                    return Ok(());
                                }
                            },
                            // Undecodable payload: protocol error, hang up.
                            Err(_) => return Err(()),
                        },
                        Ok(None) => break,
                        // Corrupt frame (bad CRC/length): poison the conn.
                        Err(_) => return Err(()),
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
}
