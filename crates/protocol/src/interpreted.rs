//! Running the paper's *source* protocol (`protocolMW.m`) over real master
//! and worker processes — through either coordinator executor.
//!
//! The hand-transliterated [`crate::protocol_mw`] is the native oracle;
//! this module is the other half of the fidelity story: the same §4.3
//! behavior interfaces ([`MasterHandle`], [`WorkerHandle`]) coordinated by
//! the `.m` source itself, executed by the tree-walking interpreter or the
//! compiled state-machine VM ([`CoordExec`]). Integration tests run all
//! three and demand identical results.

use std::rc::Rc;
use std::sync::Arc;

use manifold::lang::{expect_event_arg, AtomicFactory, CoordExec, Mc, Value};
use manifold::prelude::*;

use crate::{MasterHandle, WorkerHandle};

/// Run `ProtocolMW` from the paper's source under the selected executor.
///
/// `master_body` runs once as the master process (its handle pre-wired to
/// the coordinator); `worker_body` runs for every worker the protocol
/// creates. Workers are created by the interpreted/compiled `process
/// worker is Worker(death_worker).` declaration and — per §4.3 step 3(c) —
/// activated by the master, not here.
pub fn run_protocol_source<M, W>(
    env: &Environment,
    kind: CoordExec,
    master_body: M,
    worker_body: W,
) -> MfResult<()>
where
    M: FnOnce(MasterHandle) -> MfResult<()> + Send + 'static,
    W: Fn(WorkerHandle) -> MfResult<()> + Send + Sync + 'static,
{
    let mc = Mc::from_source(manifold::lang::PROTOCOL_MW_SOURCE)?;
    run_protocol_mc(env, &mc, kind, master_body, worker_body)
}

/// As [`run_protocol_source`], but over an already-built [`Mc`] artifact
/// (callers that run many jobs compile once and reuse it).
pub fn run_protocol_mc<M, W>(
    env: &Environment,
    mc: &Mc,
    kind: CoordExec,
    master_body: M,
    worker_body: W,
) -> MfResult<()>
where
    M: FnOnce(MasterHandle) -> MfResult<()> + Send + 'static,
    W: Fn(WorkerHandle) -> MfResult<()> + Send + Sync + 'static,
{
    env.run_manner(mc, kind, "protocolMW.m", "ProtocolMW", |coord| {
        let coord_ref = coord.self_ref();
        let env2 = coord.env().clone();
        let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
            master_body(MasterHandle::new(ctx, coord_ref, env2))
        });
        // Tune in before the master can raise anything.
        coord.watch(&master);
        coord.activate(&master)?;

        let worker = Arc::new(worker_body);
        let factory: AtomicFactory = Rc::new(move |coord, args| {
            let death = expect_event_arg(args, 0)?;
            let w = worker.clone();
            Ok(
                coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
                    w(WorkerHandle::new(ctx, death.clone()))
                }),
            )
        });

        Ok(vec![Value::Process(master), Value::Manifold(factory)])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    fn squares(kind: CoordExec, jobs: Vec<f64>) -> Vec<f64> {
        let env = Environment::new();
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = out.clone();
        let n = jobs.len();
        run_protocol_source(
            &env,
            kind,
            move |h: MasterHandle| {
                h.create_pool();
                for x in &jobs {
                    let _w = h.request_worker()?;
                    h.send_work(Unit::real(*x))?;
                }
                for _ in 0..n {
                    out2.lock().push(h.collect()?.expect_real()?);
                }
                h.rendezvous()?;
                h.finished();
                Ok(())
            },
            |h: WorkerHandle| {
                let x = h.receive()?.expect_real()?;
                h.submit(Unit::real(x * x))?;
                h.die();
                Ok(())
            },
        )
        .unwrap();
        env.shutdown();
        assert!(env.failures().is_empty());
        let mut v = out.lock().clone();
        v.sort_by(f64::total_cmp);
        v
    }

    #[test]
    fn source_protocol_squares_under_both_executors() {
        for kind in CoordExec::ALL {
            assert_eq!(
                squares(kind, vec![2.0, 3.0]),
                vec![4.0, 9.0],
                "executor {kind}"
            );
        }
    }
}
