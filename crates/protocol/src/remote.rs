//! Proxy workers: running the worker side of the protocol on a *remote*
//! task instance.
//!
//! [`remote_worker_factory`] produces workers that are, to
//! [`crate::protocol_mw`] and to the master, indistinguishable from local
//! ones — same ports, same death event, same protocol steps. Internally
//! each proxy checks a [`RemoteConduit`] out of a [`ConduitSource`],
//! ships its job across, and submits whatever comes back. The proxy also
//! adopts the conduit's [`RemoteIdentity`], so §6 trace lines it emits
//! carry the *real* host executing the work.
//!
//! ## Failure semantics
//!
//! If the conduit reports the remote instance lost (connection drop,
//! heartbeat silence, handshake failure), the proxy
//!
//! 1. raises [`WORKER_LOST`] (an ordinary MANIFOLD event — observers of
//!    the pool coordinator see it through the normal event mechanism), and
//! 2. submits a *lost-job marker* — a tagged tuple wrapping the original
//!    job — to its output port, which the `KK` stream of
//!    `Create_Worker_Pool` delivers to the master's `dataport`.
//!
//! Then it raises the death event and terminates like any worker, keeping
//! the pool's rendezvous arithmetic intact. The master recognizes the
//! marker with [`as_lost_job`] and re-dispatches the wrapped job to a
//! fresh worker (bounded by its retry budget), so a killed worker process
//! costs one round-trip, not the run.

use std::sync::Arc;

use manifold::mes;
use manifold::prelude::*;
use manifold::remote::ConduitSource;

use crate::WorkerHandle;

/// Event a proxy raises when its remote instance is declared dead.
pub const WORKER_LOST: &str = "worker_lost";

/// First element of a lost-job marker tuple.
const LOST_TAG: &str = "__worker_lost";

/// Wrap an undelivered job in a marker the master can recognize on its
/// `dataport`. `instance` is the dead remote instance (`u64::MAX` when no
/// conduit could be checked out at all).
pub fn lost_job_marker(job: Unit, instance: u64, reason: &str) -> Unit {
    Unit::tuple(vec![
        Unit::text(LOST_TAG),
        Unit::int(instance as i64),
        Unit::text(reason),
        job,
    ])
}

/// If `unit` is a lost-job marker, return `(instance, reason, job)`.
pub fn as_lost_job(unit: &Unit) -> Option<(u64, &str, &Unit)> {
    let items = unit.as_tuple()?;
    match items {
        [tag, instance, reason, job] if tag.as_text() == Some(LOST_TAG) => {
            Some((instance.as_int()? as u64, reason.as_text()?, job))
        }
        _ => None,
    }
}

/// Worker factory whose workers delegate their job to a remote task
/// instance obtained from `source` — the `--backend procs` counterpart of
/// a computing worker factory. Plug into [`crate::protocol_mw`] unchanged.
pub fn remote_worker_factory(
    source: Arc<dyn ConduitSource>,
) -> impl FnMut(&Coord, &Name) -> ProcessRef {
    move |coord, death_event| {
        let death = death_event.clone();
        let source = Arc::clone(&source);
        coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
            let h = WorkerHandle::new(ctx, death.clone());
            // Step 1: read the job from our own input port (before the
            // checkout: a conduit is only held while there is work).
            let job = h.receive()?;
            match source.checkout() {
                Ok(conduit) => {
                    // Trace lines from here on carry the remote identity.
                    h.ctx().set_remote_identity(conduit.identity());
                    mes!(h.ctx(), "Welcome");
                    // Steps 2+3: compute remotely, submit the answer.
                    match conduit.execute(job.clone()) {
                        Ok(result) => h.submit(result)?,
                        Err(err) => {
                            let instance = conduit.instance_id();
                            mes!(h.ctx(), "worker lost: instance {instance}: {err}");
                            h.ctx().raise(WORKER_LOST);
                            h.submit(lost_job_marker(job, instance, &err.to_string()))?;
                        }
                    }
                    mes!(h.ctx(), "Bye");
                }
                Err(err) => {
                    mes!(h.ctx(), "worker lost: no instance available: {err}");
                    h.ctx().raise(WORKER_LOST);
                    h.submit(lost_job_marker(job, u64::MAX, &err.to_string()))?;
                }
            }
            // Step 4: die like any worker, keeping rendezvous counting intact.
            h.die();
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{protocol_mw, MasterHandle};
    use manifold::config::HostName;
    use manifold::remote::{RemoteConduit, RemoteIdentity};
    use parking_lot::Mutex;

    #[test]
    fn lost_job_marker_round_trips() {
        let job = Unit::tuple(vec![Unit::int(3), Unit::real(0.5)]);
        let marker = lost_job_marker(job.clone(), 7, "connection closed");
        let (instance, reason, wrapped) = as_lost_job(&marker).unwrap();
        assert_eq!(instance, 7);
        assert_eq!(reason, "connection closed");
        assert_eq!(wrapped, &job);
        // Ordinary payloads are not markers.
        assert!(as_lost_job(&job).is_none());
        assert!(as_lost_job(&Unit::int(1)).is_none());
        assert!(as_lost_job(&Unit::tuple(vec![Unit::text("__worker_lost")])).is_none());
    }

    /// Conduit that squares reals, failing on the unlucky 13.
    struct Squarer {
        calls: Arc<Mutex<Vec<f64>>>,
    }
    impl RemoteConduit for Squarer {
        fn execute(&self, job: Unit) -> MfResult<Unit> {
            let x = job.expect_real()?;
            self.calls.lock().push(x);
            if x == 13.0 {
                return Err(MfError::App("instance crashed".into()));
            }
            Ok(Unit::real(x * x))
        }
        fn identity(&self) -> RemoteIdentity {
            RemoteIdentity {
                host: HostName::new("far-node"),
                task_uid: 9,
            }
        }
        fn instance_id(&self) -> u64 {
            4
        }
    }
    struct SquarerSource {
        calls: Arc<Mutex<Vec<f64>>>,
    }
    impl ConduitSource for SquarerSource {
        fn checkout(&self) -> MfResult<Arc<dyn RemoteConduit>> {
            Ok(Arc::new(Squarer {
                calls: self.calls.clone(),
            }))
        }
    }

    #[test]
    fn proxy_workers_run_the_protocol_end_to_end() {
        let calls = Arc::new(Mutex::new(Vec::new()));
        let source: Arc<dyn ConduitSource> = Arc::new(SquarerSource {
            calls: calls.clone(),
        });
        let collected = Arc::new(Mutex::new(Vec::new()));
        let collected2 = collected.clone();
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let coord_ref = coord.self_ref();
            let env2 = coord.env().clone();
            let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
                let h = MasterHandle::new(ctx, coord_ref, env2);
                h.create_pool();
                for x in [2.0, 3.0] {
                    let _w = h.request_worker()?;
                    h.send_work(Unit::real(x))?;
                }
                for _ in 0..2 {
                    collected2.lock().push(h.collect()?.expect_real()?);
                }
                h.rendezvous()?;
                h.finished();
                Ok(())
            });
            coord.activate(&master)?;
            protocol_mw(coord, &master, remote_worker_factory(source))
        })
        .unwrap();
        env.shutdown();
        assert!(env.failures().is_empty());

        let mut got = collected.lock().clone();
        got.sort_by(f64::total_cmp);
        assert_eq!(got, vec![4.0, 9.0]);
        assert_eq!(calls.lock().len(), 2);

        // The proxies' trace lines carry the remote identity.
        let remote_lines: Vec<_> = env
            .trace()
            .snapshot()
            .into_iter()
            .filter(|r| r.host.as_str() == "far-node")
            .collect();
        assert!(
            remote_lines.iter().any(|r| r.message == "Welcome"),
            "expected remote-labelled Welcome lines"
        );
        assert!(remote_lines.iter().all(|r| r.task_uid == 9));
    }

    #[test]
    fn lost_instance_surfaces_marker_and_event() {
        let calls = Arc::new(Mutex::new(Vec::new()));
        let source: Arc<dyn ConduitSource> = Arc::new(SquarerSource {
            calls: calls.clone(),
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let coord_ref = coord.self_ref();
            let env2 = coord.env().clone();
            let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
                let h = MasterHandle::new(ctx, coord_ref, env2);
                h.create_pool();
                let _w = h.request_worker()?;
                h.send_work(Unit::real(13.0))?;
                let unit = h.collect()?;
                let (instance, reason, job) = as_lost_job(&unit).expect("must be a marker");
                seen2
                    .lock()
                    .push((instance, reason.to_string(), job.clone()));
                // Re-dispatch the recovered job to a fresh worker.
                let _w = h.request_worker()?;
                h.send_work(Unit::real(job.expect_real()? + 1.0))?;
                let ok = h.collect()?.expect_real()?;
                assert_eq!(ok, 196.0);
                h.rendezvous()?;
                h.finished();
                Ok(())
            });
            coord.activate(&master)?;
            protocol_mw(coord, &master, remote_worker_factory(source))
        })
        .unwrap();
        env.shutdown();
        assert!(env.failures().is_empty());

        let seen = seen.lock();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, 4);
        assert!(seen[0].1.contains("crashed"));
        assert_eq!(seen[0].2, Unit::real(13.0));

        // The worker_lost event travelled through the event mechanism and
        // was observed (it shows up in the trace via the proxy's message).
        let msgs: Vec<String> = env
            .trace()
            .snapshot()
            .into_iter()
            .map(|r| r.message)
            .collect();
        assert!(msgs.iter().any(|m| m.starts_with("worker lost")));
    }
}
