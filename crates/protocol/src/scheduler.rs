//! Dispatch policies: the scheduling layer between a master and its
//! worker pool.
//!
//! The paper's `ProtocolMW` hard-codes one dispatch discipline: fork a
//! fresh worker per job, feed every job before draining any result. That
//! is exactly the "overparallelized protocol code" phenomenon later
//! literature diagnoses — the coordination layer, not the compute, decides
//! the scaling. This module turns the discipline into data: a
//! [`DispatchPolicy`] chooses the *order* jobs are handed out in and the
//! *in-flight window* (how many jobs may be outstanding before the master
//! must collect a result). Both the live threaded runtime
//! (`renovation::app`) and the discrete-event cluster simulator
//! (`cluster::sim`) consume the same trait, so a policy can be validated
//! bit-for-bit against the sequential solver in live mode and then
//! projected to 2004-era hardware in simulation.
//!
//! Policies are deliberately expressed over job *costs* (abstract flop
//! estimates), not over payloads: the protocol layer stays exogenous —
//! it never inspects what the jobs compute.
//!
//! Every policy here preserves the application's results bit-for-bit:
//! the master stores results by grid index and combines them in a fixed
//! order, so neither dispatch order nor window size can perturb the
//! floating-point sum.

use std::sync::Arc;

/// A dispatch discipline for one pool of independent jobs.
pub trait DispatchPolicy: Send + Sync {
    /// Short identifier (used in CLI flags, benches and reports).
    fn name(&self) -> &'static str;

    /// The order in which to dispatch jobs, as a permutation of
    /// `0..costs.len()`. `costs[i]` is the estimated compute cost of job
    /// `i` in the pool's natural (paper) order. The default is the
    /// natural order.
    fn order(&self, costs: &[f64]) -> Vec<usize> {
        (0..costs.len()).collect()
    }

    /// Maximum number of jobs in flight at once for a pool of `n_jobs`.
    /// The master must collect a result before exceeding this. The
    /// default — a window of `n_jobs` — reproduces the paper's
    /// feed-everything-then-drain behavior.
    fn window(&self, n_jobs: usize) -> usize {
        n_jobs.max(1)
    }
}

/// Shared, type-erased policy handle as passed through the runtimes.
pub type PolicyRef = Arc<dyn DispatchPolicy>;

/// The paper's discipline, verbatim: one worker forked per job, all jobs
/// fed in natural order before the first result is collected. Kept as
/// the default so the reproduction's verified bit-identical behavior is
/// the baseline every other policy is measured against.
#[derive(Clone, Copy, Debug, Default)]
pub struct PaperFaithful;

impl DispatchPolicy for PaperFaithful {
    fn name(&self) -> &'static str {
        "paper-faithful"
    }
}

/// Bounded pool with backpressure: at most `pool` jobs are in flight;
/// the master collects a finished result before dispatching the next
/// job. Caps the worker threads (live mode) and occupied machines /
/// task forks (simulated mode) at `pool` instead of one per job.
#[derive(Clone, Copy, Debug)]
pub struct BoundedReuse {
    /// Maximum concurrently outstanding jobs (≥ 1).
    pub pool: usize,
}

impl BoundedReuse {
    /// Policy with a pool of `pool` workers (clamped to ≥ 1).
    pub fn new(pool: usize) -> BoundedReuse {
        BoundedReuse { pool: pool.max(1) }
    }
}

impl DispatchPolicy for BoundedReuse {
    fn name(&self) -> &'static str {
        "bounded-reuse"
    }

    fn window(&self, _n_jobs: usize) -> usize {
        self.pool
    }
}

/// Longest-processing-time-first ordering: dispatch the most expensive
/// jobs first so the big diagonal grids are not the last to start —
/// the classic LPT heuristic for minimizing makespan. Uses the
/// solver-provided cost estimates; the window stays unbounded.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostAware;

impl DispatchPolicy for CostAware {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn order(&self, costs: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..costs.len()).collect();
        // Stable descending sort: ties keep natural order.
        idx.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]));
        idx
    }
}

/// Parse a policy name as accepted by the bench CLIs:
/// `paper-faithful`, `cost-aware`, `bounded-reuse` (default pool of 4)
/// or `bounded-reuse:N`.
pub fn parse_policy(spec: &str) -> Option<PolicyRef> {
    match spec {
        "paper-faithful" | "paper" => Some(Arc::new(PaperFaithful)),
        "cost-aware" | "lpt" => Some(Arc::new(CostAware)),
        "bounded-reuse" => Some(Arc::new(BoundedReuse::new(4))),
        other => {
            let (head, pool) = other.split_once(':')?;
            if head != "bounded-reuse" {
                return None;
            }
            Some(Arc::new(BoundedReuse::new(pool.parse().ok()?)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_faithful_is_identity_with_full_window() {
        let p = PaperFaithful;
        let costs = [3.0, 1.0, 2.0];
        assert_eq!(p.order(&costs), vec![0, 1, 2]);
        assert_eq!(p.window(31), 31);
        assert_eq!(p.window(0), 1);
        assert_eq!(p.name(), "paper-faithful");
    }

    #[test]
    fn bounded_reuse_caps_window() {
        let p = BoundedReuse::new(4);
        assert_eq!(p.order(&[5.0, 6.0]), vec![0, 1]);
        assert_eq!(p.window(31), 4);
        assert_eq!(BoundedReuse::new(0).window(31), 1);
    }

    #[test]
    fn cost_aware_is_lpt_with_stable_ties() {
        let p = CostAware;
        assert_eq!(p.order(&[1.0, 9.0, 4.0, 9.0]), vec![1, 3, 2, 0]);
        assert_eq!(p.window(31), 31);
        // A permutation, even with NaN-free degenerate input.
        let mut o = p.order(&[2.0; 7]);
        o.sort_unstable();
        assert_eq!(o, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn parse_round_trips() {
        for (spec, name, window) in [
            ("paper-faithful", "paper-faithful", 31),
            ("cost-aware", "cost-aware", 31),
            ("bounded-reuse", "bounded-reuse", 4),
            ("bounded-reuse:7", "bounded-reuse", 7),
        ] {
            let p = parse_policy(spec).unwrap();
            assert_eq!(p.name(), name);
            assert_eq!(p.window(31), window);
        }
        assert!(parse_policy("round-robin").is_none());
        assert!(parse_policy("bounded-reuse:x").is_none());
    }
}
