//! Sharded dispatch: partitioning one pool of jobs across a hierarchy of
//! shard masters, with work stealing and elastic membership.
//!
//! The paper's topology is one master feeding one worker pool; its §4.2
//! "more demanding master" ablation already shows that topology saturating
//! when the master's per-job feed time stops being negligible. This module
//! generalizes the dispatch spine into *S* shard masters coordinated by a
//! lightweight root:
//!
//! ```text
//!                      ┌──────┐
//!                      │ root │        partition (cost-aware, LPT)
//!                      └──┬───┘        re-home on shard-master death
//!             ┌───────────┼───────────┐
//!          ┌──┴───┐    ┌──┴───┐    ┌──┴───┐
//!          │ sm 0 │◄──►│ sm 1 │◄──►│ sm 2 │   work stealing (pop-two-merge)
//!          └──┬───┘    └──┬───┘    └──┬───┘
//!           pool 0      pool 1      pool 2    each runs DispatchPolicy
//!                                             unchanged over its slice
//! ```
//!
//! Everything here is *pure data*: the live master (`renovation::master`),
//! the procs fleet (`transport`) and the cluster DES (`cluster::shard`)
//! all consume the same [`ShardPlan`], [`StealQueues`] and [`Membership`]
//! types, so the dispatch sequence of a sharded run is identical across
//! backends by construction — and bit-identity of the numerical results is
//! inherited from the flat protocol (results are stored by grid index and
//! combined in a fixed order, so no topology can perturb the sum).

use std::collections::VecDeque;

/// How a run is sharded: number of shard masters and whether idle shards
/// steal queued work from loaded ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of shard masters (1 = the paper's flat topology).
    pub shards: usize,
    /// Work stealing between shard queues (pop-two-merge).
    pub steal: bool,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec {
            shards: 1,
            steal: true,
        }
    }
}

impl ShardSpec {
    /// A spec with `shards` masters (clamped to ≥ 1), stealing enabled.
    pub fn new(shards: usize) -> ShardSpec {
        ShardSpec {
            shards: shards.max(1),
            steal: true,
        }
    }

    /// Disable or enable stealing.
    pub fn with_steal(mut self, steal: bool) -> ShardSpec {
        self.steal = steal;
        self
    }

    /// True for the flat (single-master) topology.
    pub fn is_flat(&self) -> bool {
        self.shards <= 1
    }
}

/// The root's initial placement: an assignment of every job to a shard,
/// cost-aware so no shard starts with a disproportionate share of work.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// `assignment[j]` = shard owning job `j` (indices into the
    /// policy-ordered dispatch sequence, not the natural pool order).
    pub assignment: Vec<usize>,
    /// Number of shards planned over.
    pub shards: usize,
    /// Estimated total cost per shard after placement.
    pub shard_cost: Vec<f64>,
}

impl ShardPlan {
    /// Partition `costs` (one entry per job, in dispatch order) over
    /// `shards` shard masters with the LPT greedy rule: walk the jobs in
    /// descending cost and give each to the currently least-loaded shard.
    /// Deterministic — ties go to the lowest shard index — and for
    /// `shards == 1` every job lands on shard 0, reducing to the flat
    /// topology exactly.
    pub fn partition(costs: &[f64], shards: usize) -> ShardPlan {
        let shards = shards.max(1);
        let mut assignment = vec![0usize; costs.len()];
        let mut shard_cost = vec![0.0f64; shards];
        if shards > 1 {
            // Descending cost, stable on ties so the plan is a pure
            // function of the cost vector.
            let mut by_cost: Vec<usize> = (0..costs.len()).collect();
            by_cost.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
            for j in by_cost {
                let s = least_loaded(&shard_cost);
                assignment[j] = s;
                shard_cost[s] += costs[j];
            }
        } else {
            shard_cost[0] = costs.iter().sum();
        }
        ShardPlan {
            assignment,
            shards,
            shard_cost,
        }
    }

    /// The per-shard queues implied by this plan: job indices in dispatch
    /// order, filtered by owner.
    pub fn queues(&self) -> Vec<VecDeque<usize>> {
        let mut queues = vec![VecDeque::new(); self.shards];
        for (j, &s) in self.assignment.iter().enumerate() {
            queues[s].push_back(j);
        }
        queues
    }

    /// The global dispatch sequence of the sharded run: a round-robin
    /// interleave of the shard queues (shard 0 first). This is what both
    /// the live master and the DES walk, so traces agree line-for-line
    /// across backends; for one shard it is the identity.
    pub fn interleave(&self) -> Vec<usize> {
        let mut queues = self.queues();
        let mut out = Vec::with_capacity(self.assignment.len());
        while out.len() < self.assignment.len() {
            for q in queues.iter_mut() {
                if let Some(j) = q.pop_front() {
                    out.push(j);
                }
            }
        }
        out
    }
}

fn least_loaded(costs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &c) in costs.iter().enumerate().skip(1) {
        if c < costs[best] {
            best = i;
        }
    }
    best
}

/// One work-stealing transfer: shard `thief` took `jobs` from the tail of
/// shard `victim`'s queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StealEvent {
    /// The idle shard that initiated the steal.
    pub thief: usize,
    /// The loaded shard the work came from.
    pub victim: usize,
    /// The job indices that moved (most-recently-queued first).
    pub jobs: Vec<usize>,
}

/// The shard masters' pending-work queues with the pop-two-merge stealing
/// discipline: an idle shard pops *two* items off the tail of the most
/// loaded queue and merges them into its own — taking a pair per trip
/// halves the number of coordination round-trips a drain needs, the same
/// shape as the pop-two/push-one merge worklist in the snippet literature.
#[derive(Clone, Debug)]
pub struct StealQueues {
    queues: Vec<VecDeque<usize>>,
    steals: Vec<StealEvent>,
}

impl StealQueues {
    /// Queues as planned by the root.
    pub fn new(plan: &ShardPlan) -> StealQueues {
        StealQueues {
            queues: plan.queues(),
            steals: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Jobs still queued on shard `s`.
    pub fn pending(&self, s: usize) -> usize {
        self.queues[s].len()
    }

    /// Total jobs still queued anywhere.
    pub fn total_pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Next job for shard `s` from its own queue.
    pub fn pop_own(&mut self, s: usize) -> Option<usize> {
        self.queues[s].pop_front()
    }

    /// Shard `s` ran dry: steal up to two jobs from the tail of the most
    /// loaded other queue (ties to the lowest index). Returns the recorded
    /// [`StealEvent`], or `None` when no other shard has more than one job
    /// queued — stealing a victim's *last* queued job would just move the
    /// starvation around.
    pub fn steal_into(&mut self, s: usize) -> Option<StealEvent> {
        let victim = self
            .queues
            .iter()
            .enumerate()
            .filter(|&(i, q)| i != s && q.len() > 1)
            .max_by(|a, b| a.1.len().cmp(&b.1.len()).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)?;
        // Pop two off the victim's tail (the jobs it would reach last)...
        let mut jobs = Vec::with_capacity(2);
        for _ in 0..2 {
            if self.queues[victim].len() > 1 {
                if let Some(j) = self.queues[victim].pop_back() {
                    jobs.push(j);
                }
            }
        }
        // ...and merge them into the thief's queue in dispatch order, so
        // the thief works the earliest-planned job first.
        let mut merged: Vec<usize> = jobs.to_vec();
        merged.sort_unstable();
        for &j in merged.iter().rev() {
            self.queues[s].push_front(j);
        }
        let ev = StealEvent {
            thief: s,
            victim,
            jobs,
        };
        self.steals.push(ev.clone());
        Some(ev)
    }

    /// Re-home every job still queued on `dead` onto the surviving shards
    /// (round-robin over the least-loaded ones). Returns how many jobs
    /// moved. Used by the root when a shard master dies (`poolkill`).
    pub fn rehome(&mut self, dead: usize) -> usize {
        let orphans: Vec<usize> = self.queues[dead].drain(..).collect();
        let moved = orphans.len();
        for j in orphans {
            let target = self
                .queues
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != dead)
                .min_by(|a, b| a.1.len().cmp(&b.1.len()).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .unwrap_or(dead);
            self.queues[target].push_back(j);
        }
        moved
    }

    /// Put `job` back at the end of shard `s`'s queue — used by the root
    /// to re-dispatch work a dead shard master was holding in flight.
    pub fn requeue(&mut self, s: usize, job: usize) {
        self.queues[s].push_back(job);
    }

    /// All steals recorded so far.
    pub fn steals(&self) -> &[StealEvent] {
        &self.steals
    }
}

/// A membership churn plan for the live procs backend: worker joins and
/// leaves keyed by *dispatch ordinal* (the fleet-wide count of jobs handed
/// out), so a plan replays identically under any timing.
///
/// Grammar: comma-separated `join@N` / `leave@N` tokens, e.g.
/// `join@3,leave@6`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Dispatch ordinals at which one worker joins the fleet.
    pub joins: Vec<u64>,
    /// Dispatch ordinals at which one worker leaves the fleet.
    pub leaves: Vec<u64>,
}

impl ChurnPlan {
    /// Parse the `join@N,leave@M` grammar. Empty input is an empty plan.
    pub fn parse(spec: &str) -> Result<ChurnPlan, String> {
        let mut plan = ChurnPlan::default();
        for token in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let token = token.trim();
            let (kind, at) = token
                .split_once('@')
                .ok_or_else(|| format!("churn token `{token}`: expected kind@N"))?;
            let at: u64 = at
                .parse()
                .map_err(|_| format!("churn token `{token}`: `{at}` is not a count"))?;
            match kind {
                "join" => plan.joins.push(at),
                "leave" => plan.leaves.push(at),
                other => return Err(format!("churn token `{token}`: unknown kind `{other}`")),
            }
        }
        plan.joins.sort_unstable();
        plan.leaves.sort_unstable();
        Ok(plan)
    }

    /// True when no churn is scheduled.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty() && self.leaves.is_empty()
    }
}

impl std::fmt::Display for ChurnPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for &n in &self.joins {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "join@{n}")?;
            first = false;
        }
        for &n in &self.leaves {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "leave@{n}")?;
            first = false;
        }
        Ok(())
    }
}

/// Lifecycle of one fleet member, as the root sees it.
///
/// ```text
///            HelloAck{pool}            Leave/retire
///  Joining ───────────────► Active ───────────────► Left
///                              │
///                              │ shard master died (poolkill)
///                              ▼
///                           Rehomed ──► Active (new pool)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Membership {
    /// Hello received, pool assignment pending.
    Joining,
    /// Assigned to a pool and serving.
    Active {
        /// The pool (shard) this member serves.
        pool: usize,
    },
    /// Departed cleanly (Leave exchanged); never respawned.
    Left,
}

/// The root's membership directory: which worker serves which pool, with
/// balanced assignment on join and re-homing when a pool's master dies.
#[derive(Clone, Debug, Default)]
pub struct MembershipDirectory {
    pools: usize,
    members: Vec<(u64, Membership)>,
    rehomes: usize,
}

impl MembershipDirectory {
    /// A directory over `pools` shard pools.
    pub fn new(pools: usize) -> MembershipDirectory {
        MembershipDirectory {
            pools: pools.max(1),
            members: Vec::new(),
            rehomes: 0,
        }
    }

    /// Number of pools.
    pub fn pools(&self) -> usize {
        self.pools
    }

    /// Admit `member`, assigning the least-populated pool (ties to the
    /// lowest pool index). Returns the assignment. Re-joining a departed
    /// member re-admits it fresh.
    pub fn join(&mut self, member: u64) -> usize {
        let mut counts = vec![0usize; self.pools];
        for (_, m) in &self.members {
            if let Membership::Active { pool } = m {
                counts[*pool] += 1;
            }
        }
        let pool = least_loaded(&counts.iter().map(|&c| c as f64).collect::<Vec<_>>());
        match self.members.iter_mut().find(|(id, _)| *id == member) {
            Some(entry) => entry.1 = Membership::Active { pool },
            None => self.members.push((member, Membership::Active { pool })),
        }
        pool
    }

    /// Admit `member` into a *specific* pool — used when the topology is
    /// fixed externally (the DES's contiguous host slices, or a test
    /// constructing a known-asymmetric fleet). Out-of-range pools are
    /// clamped. Re-joining a known member reassigns it.
    pub fn join_to(&mut self, member: u64, pool: usize) -> usize {
        let pool = pool.min(self.pools - 1);
        match self.members.iter_mut().find(|(id, _)| *id == member) {
            Some(entry) => entry.1 = Membership::Active { pool },
            None => self.members.push((member, Membership::Active { pool })),
        }
        pool
    }

    /// Mark `member` departed. No-op for unknown members.
    pub fn leave(&mut self, member: u64) {
        if let Some(entry) = self.members.iter_mut().find(|(id, _)| *id == member) {
            entry.1 = Membership::Left;
        }
    }

    /// The pool `member` currently serves, if active.
    pub fn pool_of(&self, member: u64) -> Option<usize> {
        self.members.iter().find_map(|(id, m)| match m {
            Membership::Active { pool } if *id == member => Some(*pool),
            _ => None,
        })
    }

    /// Active member count per pool.
    pub fn census(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.pools];
        for (_, m) in &self.members {
            if let Membership::Active { pool } = m {
                counts[*pool] += 1;
            }
        }
        counts
    }

    /// Pool `dead`'s master died: move every active member of that pool to
    /// the least-populated surviving pool. Counts as ONE re-home event
    /// regardless of the number of workers moved (the supervisor contract:
    /// a poolkill triggers exactly one re-home). Returns the number of
    /// workers moved.
    pub fn rehome_pool(&mut self, dead: usize) -> usize {
        if self.pools <= 1 {
            return 0;
        }
        let mut moved = 0;
        loop {
            let mut counts = vec![0usize; self.pools];
            for (_, m) in &self.members {
                if let Membership::Active { pool } = m {
                    counts[*pool] += 1;
                }
            }
            let target = counts
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != dead)
                .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .unwrap_or(dead);
            let Some(entry) = self
                .members
                .iter_mut()
                .find(|(_, m)| matches!(m, Membership::Active { pool } if *pool == dead))
            else {
                break;
            };
            entry.1 = Membership::Active { pool: target };
            moved += 1;
        }
        if moved > 0 {
            self.rehomes += 1;
        }
        moved
    }

    /// Number of re-home events so far.
    pub fn rehomes(&self) -> usize {
        self.rehomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_plan_is_identity() {
        let plan = ShardPlan::partition(&[3.0, 1.0, 2.0], 1);
        assert_eq!(plan.assignment, vec![0, 0, 0]);
        assert_eq!(plan.interleave(), vec![0, 1, 2]);
        assert_eq!(plan.shard_cost, vec![6.0]);
    }

    #[test]
    fn lpt_partition_balances_costs() {
        // Costs 8,7,6,5,4,3,2,1 over 2 shards: LPT gives 8+5+4+1 = 18
        // and 7+6+3+2 = 18 — a perfect split.
        let costs = [8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let plan = ShardPlan::partition(&costs, 2);
        assert_eq!(plan.shard_cost[0], 18.0);
        assert_eq!(plan.shard_cost[1], 18.0);
        // Every job assigned exactly once.
        let mut per_shard = plan.queues();
        let mut all: Vec<usize> = per_shard.iter_mut().flat_map(|q| q.drain(..)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn interleave_is_deterministic_round_robin() {
        let costs = [8.0, 7.0, 6.0, 5.0];
        let plan = ShardPlan::partition(&costs, 2);
        // Shard 0 gets {0, 3}, shard 1 gets {1, 2} under LPT.
        assert_eq!(plan.assignment, vec![0, 1, 1, 0]);
        assert_eq!(plan.interleave(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn steal_pops_two_off_the_loaded_tail() {
        let costs = [1.0; 8];
        let mut plan = ShardPlan::partition(&costs, 2);
        // Force an unbalanced plan: all jobs on shard 0.
        plan.assignment = vec![0; 8];
        let mut q = StealQueues::new(&plan);
        assert_eq!(q.pending(0), 8);
        assert_eq!(q.pending(1), 0);
        let ev = q.steal_into(1).expect("steal must fire");
        assert_eq!(ev.thief, 1);
        assert_eq!(ev.victim, 0);
        assert_eq!(ev.jobs, vec![7, 6]); // tail of the victim's queue
        assert_eq!(q.pending(0), 6);
        assert_eq!(q.pending(1), 2);
        // The thief dispatches the earlier-planned job first.
        assert_eq!(q.pop_own(1), Some(6));
        assert_eq!(q.pop_own(1), Some(7));
        assert_eq!(q.steals().len(), 1);
    }

    #[test]
    fn steal_never_takes_a_last_job() {
        let plan = ShardPlan::partition(&[1.0, 1.0], 2);
        let mut q = StealQueues::new(&plan);
        // Each shard has exactly one job; nothing is stealable.
        assert!(q.steal_into(0).is_none());
        assert!(q.steal_into(1).is_none());
    }

    #[test]
    fn rehome_moves_all_orphans() {
        let mut plan = ShardPlan::partition(&[1.0; 6], 3);
        plan.assignment = vec![1, 1, 1, 1, 0, 2];
        let mut q = StealQueues::new(&plan);
        let moved = q.rehome(1);
        assert_eq!(moved, 4);
        assert_eq!(q.pending(1), 0);
        assert_eq!(q.pending(0) + q.pending(2), 6);
    }

    #[test]
    fn churn_plan_parses_and_round_trips() {
        let plan = ChurnPlan::parse("join@3,leave@6,join@9").unwrap();
        assert_eq!(plan.joins, vec![3, 9]);
        assert_eq!(plan.leaves, vec![6]);
        assert_eq!(plan.to_string(), "join@3,join@9,leave@6");
        assert_eq!(ChurnPlan::parse("").unwrap(), ChurnPlan::default());
        assert!(ChurnPlan::parse("join@x").is_err());
        assert!(ChurnPlan::parse("evict@3").is_err());
        assert!(ChurnPlan::parse("join3").is_err());
    }

    #[test]
    fn membership_balances_joins_and_rehomes_once() {
        let mut dir = MembershipDirectory::new(2);
        assert_eq!(dir.join(10), 0);
        assert_eq!(dir.join(11), 1);
        assert_eq!(dir.join(12), 0);
        assert_eq!(dir.census(), vec![2, 1]);
        dir.leave(12);
        assert_eq!(dir.census(), vec![1, 1]);
        assert_eq!(dir.pool_of(12), None);
        assert_eq!(dir.pool_of(10), Some(0));
        // Kill pool 0's master: its one worker moves, one re-home event.
        let moved = dir.rehome_pool(0);
        assert_eq!(moved, 1);
        assert_eq!(dir.rehomes(), 1);
        assert_eq!(dir.census(), vec![0, 2]);
        // A second kill of an empty pool is not a re-home.
        assert_eq!(dir.rehome_pool(0), 0);
        assert_eq!(dir.rehomes(), 1);
        // Explicit placement overrides balancing (and clamps).
        assert_eq!(dir.join_to(13, 0), 0);
        assert_eq!(dir.join_to(14, 99), 1);
        assert_eq!(dir.census(), vec![1, 3]);
    }

    #[test]
    fn requeue_appends_to_the_named_shard() {
        let plan = ShardPlan::partition(&[1.0, 1.0], 2);
        let mut q = StealQueues::new(&plan);
        q.requeue(1, 7);
        assert_eq!(q.pending(1), 2);
        assert_eq!(q.pop_own(1), Some(1));
        assert_eq!(q.pop_own(1), Some(7));
    }

    #[test]
    fn shard_spec_parses_flatness() {
        assert!(ShardSpec::default().is_flat());
        assert!(ShardSpec::new(0).is_flat());
        assert!(!ShardSpec::new(4).is_flat());
        assert!(!ShardSpec::new(2).with_steal(false).steal);
    }
}
