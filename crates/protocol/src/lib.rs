//! # protocol — the generic master/worker coordination protocol
//!
//! This crate is the Rust transliteration of the paper's `protocolMW.m`:
//! a *generic* master/worker protocol in which the master and the worker
//! are parameters. The protocol only prescribes how instances of the master
//! and worker definitions communicate; what they compute is irrelevant to
//! it — the hallmark of exogenous coordination.
//!
//! The pieces, with their §4 counterparts:
//!
//! * [`protocol_mw`] — the `ProtocolMW` manner (lines 54–64): reacts to the
//!   master's `create_pool` requests by running a worker pool, and to
//!   `finished` by returning.
//! * [`create_worker_pool`] — the `Create_Worker_Pool` manner (lines
//!   11–51): creates one worker per `create_worker` event, wires the three
//!   streams of line 36 (`&worker -> master`, `master -> worker`,
//!   `worker -> master.dataport`, the last one `KK` so it survives
//!   preemption), and organizes the rendezvous by counting `death_worker`
//!   events.
//! * [`MasterHandle`] / [`WorkerHandle`] — the behavior interfaces of §4.3,
//!   step by step.
//! * [`scheduler`] — dispatch policies layered over the protocol: the
//!   paper's fork-per-job discipline ([`PaperFaithful`]), a bounded pool
//!   with backpressure ([`BoundedReuse`]), and longest-job-first ordering
//!   ([`CostAware`]). Both the live runtime and the cluster simulator
//!   consume the same [`DispatchPolicy`] trait.
//! * [`shard`] — the sharded dispatch layer above the policies: cost-aware
//!   partition of one pool across several shard masters ([`ShardPlan`]),
//!   pop-two-merge work stealing between their queues ([`StealQueues`]),
//!   and elastic fleet membership ([`MembershipDirectory`]). Each shard
//!   runs its [`DispatchPolicy`] unchanged over its slice.
//!
//! The event vocabulary matches the paper exactly: [`CREATE_POOL`],
//! [`CREATE_WORKER`], [`RENDEZVOUS`], [`A_RENDEZVOUS`], [`FINISHED`],
//! [`DEATH_WORKER`].

pub mod handles;
pub mod interpreted;
pub mod mw;
pub mod remote;
pub mod scheduler;
pub mod shard;

pub use handles::{MasterHandle, WorkerHandle};
pub use interpreted::{run_protocol_mc, run_protocol_source};
pub use mw::{create_worker_pool, protocol_mw, PerpetualPool, PoolStats, ProtocolOutcome};
pub use remote::{as_lost_job, lost_job_marker, remote_worker_factory, WORKER_LOST};
pub use scheduler::{
    parse_policy, BoundedReuse, CostAware, DispatchPolicy, PaperFaithful, PolicyRef,
};
pub use shard::{
    ChurnPlan, Membership, MembershipDirectory, ShardPlan, ShardSpec, StealEvent, StealQueues,
};

/// Master → coordinator: "I need a workers-pool to delegate work to"
/// (handled at line 61 of `protocolMW.m`).
pub const CREATE_POOL: &str = "create_pool";
/// Master → coordinator: "create one more worker in the pool" (line 27).
pub const CREATE_WORKER: &str = "create_worker";
/// Master → coordinator: "organize a rendezvous" (line 39).
pub const RENDEZVOUS: &str = "rendezvous";
/// Coordinator → master: "rendezvous acknowledged" (line 50).
pub const A_RENDEZVOUS: &str = "a_rendezvous";
/// Master → coordinator: "I do not need workers anymore" (line 63).
pub const FINISHED: &str = "finished";
/// Worker → coordinator: "I am done and going to die" (line 42).
pub const DEATH_WORKER: &str = "death_worker";
