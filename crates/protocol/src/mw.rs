//! The `ProtocolMW` and `Create_Worker_Pool` manners.
//!
//! A transliteration of `protocolMW.m` (§4.2) into the `manifold` crate's
//! embedded DSL. Comments quote the original line numbers so the two can be
//! read side by side.

use manifold::builtin::Variable;
use manifold::mes;
use manifold::prelude::*;

use crate::{A_RENDEZVOUS, CREATE_POOL, CREATE_WORKER, DEATH_WORKER, FINISHED, RENDEZVOUS};

/// Why [`protocol_mw`] returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolOutcome {
    /// The master raised `finished` (line 63: `finished: halt.`).
    Finished {
        /// Pool statistics, one entry per pool that was run.
        pools: Vec<PoolStats>,
    },
    /// The master terminated without raising `finished` (the `begin` state's
    /// `terminated(master)` completed).
    MasterTerminated {
        /// Pool statistics, one entry per pool that was run.
        pools: Vec<PoolStats>,
    },
}

impl ProtocolOutcome {
    /// Statistics for every pool run by the protocol.
    pub fn pools(&self) -> &[PoolStats] {
        match self {
            ProtocolOutcome::Finished { pools } => pools,
            ProtocolOutcome::MasterTerminated { pools } => pools,
        }
    }
}

/// Statistics of one `Create_Worker_Pool` invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers created in this pool (the final value of `now`).
    pub workers_created: usize,
    /// `death_worker` events counted at the rendezvous (the final `t`).
    pub deaths_counted: usize,
}

/// The fleet-lifetime side of `Create_Worker_Pool`: pool statistics that
/// outlive any single master.
///
/// The paper's manner binds the pool loop to one master for the whole
/// application; a perpetual fleet instead runs the same loop once *per
/// job*, each time with a fresh job-scoped master rendezvousing against
/// the shared pool machinery. `PerpetualPool` is that shared half: it
/// accumulates statistics across every master served, while each
/// [`PerpetualPool::serve`] call returns a per-job [`ProtocolOutcome`]
/// carrying only that job's pools (so single-job callers still see
/// `pools().len() == 1` per `create_pool`).
#[derive(Debug, Default)]
pub struct PerpetualPool {
    pools: Vec<PoolStats>,
    jobs_served: usize,
}

impl PerpetualPool {
    /// A pool that has served no masters yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many masters this pool has served to completion.
    pub fn jobs_served(&self) -> usize {
        self.jobs_served
    }

    /// Statistics of every pool run across the fleet's whole life, in
    /// creation order (spanning all jobs).
    pub fn fleet_pools(&self) -> &[PoolStats] {
        &self.pools
    }

    /// Total workers created across the fleet's whole life.
    pub fn fleet_workers_created(&self) -> usize {
        self.pools.iter().map(|p| p.workers_created).sum()
    }

    /// Serve one master to completion: the `ProtocolMW` begin loop
    /// (lines 54–64), scoped to this job. The returned outcome carries
    /// only the pools created by *this* master; they are also appended to
    /// the fleet-lifetime statistics.
    pub fn serve(
        &mut self,
        coord: &Coord,
        master: &ProcessRef,
        worker_factory: &mut dyn FnMut(&Coord, &Name) -> ProcessRef,
    ) -> MfResult<ProtocolOutcome> {
        // Entering the manner's block makes the coordinator sensitive to
        // the master's events (the `terminated(master)` in the begin
        // state body).
        coord.watch(master);
        let mut pools = Vec::new();
        let outcome = loop {
            // begin: terminated(master).           (line 59)
            let st = coord.state();
            match st.until_terminated(master, &[CREATE_POOL.into(), FINISHED.into()])? {
                // create_pool: Create_Worker_Pool(master, Worker); post(begin).
                StateExit::Event(e) if e.name().is_some_and(|n| n == CREATE_POOL) => {
                    let stats = create_worker_pool(coord, master, &mut &mut *worker_factory)?;
                    pools.push(stats);
                    // `post(begin)` — the loop continues back to the begin wait.
                }
                // finished: halt.                   (line 63)
                StateExit::Event(_) => break ProtocolOutcome::Finished { pools },
                StateExit::Terminated(_) => break ProtocolOutcome::MasterTerminated { pools },
            }
        };
        self.pools.extend_from_slice(outcome.pools());
        self.jobs_served += 1;
        Ok(outcome)
    }
}

/// `export manner ProtocolMW(process master, manifold Worker(event))` —
/// lines 54–64.
///
/// `worker_factory` plays the role of the `Worker` manifold parameter: it
/// must *create* (not activate) a fresh worker instance; the death event it
/// receives is the one the worker must raise when done (line 30:
/// `process worker is Worker(death_worker)`).
///
/// One-shot form: serves a single master over a throwaway
/// [`PerpetualPool`]. Multi-job callers hold a `PerpetualPool` themselves
/// and call [`PerpetualPool::serve`] once per master.
pub fn protocol_mw(
    coord: &Coord,
    master: &ProcessRef,
    mut worker_factory: impl FnMut(&Coord, &Name) -> ProcessRef,
) -> MfResult<ProtocolOutcome> {
    PerpetualPool::new().serve(coord, master, &mut worker_factory)
}

/// `manner Create_Worker_Pool(process master, manifold Worker(event))` —
/// lines 11–51.
pub fn create_worker_pool(
    coord: &Coord,
    master: &ProcessRef,
    worker_factory: &mut impl FnMut(&Coord, &Name) -> ProcessRef,
) -> MfResult<PoolStats> {
    let death_event = Name::new(DEATH_WORKER);
    // Block declarations (lines 15–23): `save *.` is implicit in our event
    // memory (unhandled events stay saved); `ignore death.` is applied on
    // exit by `with_ignore`; `now` and `t` are instances of the predefined
    // `variable` manifold (lines 18–19); the priority declaration
    // `create_worker > rendezvous` (line 23) becomes pattern order.
    coord.with_ignore(&[DEATH_WORKER], |coord| {
        let now = Variable::spawn(coord, "now", Unit::int(0))?;
        let t = Variable::spawn(coord, "t", Unit::int(0))?;

        // Every wait inside the pool is also sensitive to the master's
        // termination: a master that *fails* mid-pool (e.g. its lost-worker
        // retry budget runs out) must abort the pool instead of leaving the
        // coordinator idling forever on events no one will raise. In the
        // normal course the master cannot terminate here — it is blocked on
        // `a_rendezvous` until the pool ends — so this changes nothing for
        // a healthy run. Pending events still take precedence.
        fn master_died() -> MfError {
            MfError::App("master terminated inside an active worker pool".into())
        }

        // begin: (MES("begin"), preemptall, IDLE).          (line 25)
        mes!(coord.ctx(), "begin");
        let mut pending = {
            let st = coord.state();
            match st.until_terminated(master, &[CREATE_WORKER.into(), RENDEZVOUS.into()])? {
                StateExit::Event(e) => e,
                StateExit::Terminated(_) => return Err(master_died()),
            }
        };

        loop {
            match pending.name().map(Name::as_str) {
                // create_worker: (lines 27–37)
                Some(CREATE_WORKER) => {
                    // hold worker. / process worker is Worker(death_worker).
                    let worker = worker_factory(coord, &death_event);
                    // stream KK worker -> master.dataport.    (line 32)
                    // begin: now = now + 1;                    (line 34)
                    now.add(1);
                    mes!(coord.ctx(), "create_worker: begin");
                    // &worker -> master -> worker -> master.dataport, IDLE.
                    let mut st = coord.state();
                    st.send_ref(&worker, master, "input")?;
                    st.connect(master, "output", &worker, "input", StreamType::BK)?;
                    st.connect(&worker, "output", master, "dataport", StreamType::KK)?;
                    pending = match st
                        .until_terminated(master, &[CREATE_WORKER.into(), RENDEZVOUS.into()])?
                    {
                        StateExit::Event(e) => e,
                        StateExit::Terminated(_) => return Err(master_died()),
                    };
                    // Preemption dismantled the BK streams; the KK result
                    // stream stays intact (it must survive to transport a
                    // remote worker's results to the master).
                }
                // rendezvous: (lines 39–48)
                Some(RENDEZVOUS) => {
                    // The guard runs *before* the first wait: a pool that
                    // created no workers (e.g. a resumed run whose
                    // checkpoint already held every result) must
                    // acknowledge at once instead of idling on a
                    // death_worker no one will raise.
                    while t.get_int() < now.get_int() {
                        // begin: (preemptall, IDLE) — wait for death_worker.
                        let st = coord.state();
                        let _death = match st.until_terminated(master, &[DEATH_WORKER.into()])? {
                            StateExit::Event(e) => e,
                            StateExit::Terminated(_) => return Err(master_died()),
                        };
                        // death_worker: t = t + 1; post(begin).
                        t.add(1);
                    }
                    // end: (MES(...), raise(a_rendezvous)).    (line 50)
                    mes!(coord.ctx(), "rendezvous acknowledged");
                    coord.raise(A_RENDEZVOUS);
                    return Ok(PoolStats {
                        workers_created: now.get_int() as usize,
                        deaths_counted: t.get_int() as usize,
                    });
                }
                other => {
                    return Err(MfError::App(format!(
                        "Create_Worker_Pool: unexpected event {other:?}"
                    )))
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handles::{MasterHandle, WorkerHandle};
    use std::time::Duration;

    /// A toy worker: reads one number, squares it, submits, dies.
    fn squaring_worker(coord: &Coord, death: &Name) -> ProcessRef {
        let death = death.clone();
        coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
            let w = WorkerHandle::new(ctx, death);
            let x = w.receive()?.expect_real()?;
            w.submit(Unit::real(x * x))?;
            w.die();
            Ok(())
        })
    }

    /// Drive a master through `jobs` squaring jobs in one pool and return
    /// the collected results.
    fn run_squares(env: &Environment, jobs: Vec<f64>) -> Vec<f64> {
        let n = jobs.len();
        let out = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let out2 = out.clone();
        let result = env.run_coordinator("Main", |coord| {
            let env2 = coord.env().clone();
            let coord_ref = coord.self_ref();
            let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
                let h = MasterHandle::new(ctx, coord_ref, env2);
                h.create_pool();
                // §4.3 step 3(e): repeat request + send *per worker* — the
                // master's output stream is re-routed to the newest worker
                // at every create_worker, so work must be sent before the
                // next worker is requested.
                for x in &jobs {
                    let _w = h.request_worker()?;
                    h.send_work(Unit::real(*x))?;
                }
                for _ in 0..n {
                    out2.lock().push(h.collect()?.expect_real()?);
                }
                h.rendezvous()?;
                h.finished();
                Ok(())
            });
            coord.activate(&master)?;
            protocol_mw(coord, &master, squaring_worker)
        });
        let outcome = result.unwrap();
        assert_eq!(outcome.pools().len(), 1);
        assert_eq!(outcome.pools()[0].workers_created, n);
        assert_eq!(outcome.pools()[0].deaths_counted, n);
        let mut v = out.lock().clone();
        v.sort_by(f64::total_cmp);
        v
    }

    #[test]
    fn single_pool_squares_numbers() {
        let env = Environment::new();
        let got = run_squares(&env, vec![2.0, 3.0, 4.0]);
        assert_eq!(got, vec![4.0, 9.0, 16.0]);
        env.shutdown();
        assert!(env.failures().is_empty());
    }

    #[test]
    fn empty_jobs_pool_never_created() {
        // A master that immediately raises finished.
        let env = Environment::new();
        let outcome = env
            .run_coordinator("Main", |coord| {
                let coord_ref = coord.self_ref();
                let env2 = coord.env().clone();
                let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
                    let h = MasterHandle::new(ctx, coord_ref, env2);
                    h.finished();
                    Ok(())
                });
                coord.activate(&master)?;
                protocol_mw(coord, &master, squaring_worker)
            })
            .unwrap();
        assert_eq!(outcome, ProtocolOutcome::Finished { pools: vec![] });
        env.shutdown();
    }

    #[test]
    fn empty_pool_rendezvous_acknowledges_immediately() {
        // A pool with zero workers (a fully-resumed run dispatches
        // nothing) must not wait for death_worker events.
        let env = Environment::new();
        let outcome = env
            .run_coordinator("Main", |coord| {
                let coord_ref = coord.self_ref();
                let env2 = coord.env().clone();
                let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
                    let h = MasterHandle::new(ctx, coord_ref, env2);
                    h.create_pool();
                    h.rendezvous()?;
                    h.finished();
                    Ok(())
                });
                coord.activate(&master)?;
                protocol_mw(coord, &master, squaring_worker)
            })
            .unwrap();
        assert_eq!(outcome.pools().len(), 1);
        assert_eq!(outcome.pools()[0].workers_created, 0);
        assert_eq!(outcome.pools()[0].deaths_counted, 0);
        env.shutdown();
        assert!(env.failures().is_empty());
    }

    #[test]
    fn master_termination_ends_protocol() {
        // A master that dies without raising finished.
        let env = Environment::new();
        let outcome = env
            .run_coordinator("Main", |coord| {
                let master = coord.create_atomic("Master(port in)", move |_ctx: ProcessCtx| Ok(()));
                coord.activate(&master)?;
                protocol_mw(coord, &master, squaring_worker)
            })
            .unwrap();
        assert!(matches!(outcome, ProtocolOutcome::MasterTerminated { .. }));
        env.shutdown();
    }

    #[test]
    fn demanding_master_runs_multiple_pools() {
        // The §4.2 note: a master may raise create_pool again instead of
        // finished, and the protocol must serve another pool.
        let env = Environment::new();
        let outcome = env
            .run_coordinator("Main", |coord| {
                let coord_ref = coord.self_ref();
                let env2 = coord.env().clone();
                let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
                    let h = MasterHandle::new(ctx, coord_ref, env2);
                    for round in 1..=3 {
                        h.create_pool();
                        for i in 0..round {
                            let _w = h.request_worker()?;
                            h.send_work(Unit::real(i as f64))?;
                        }
                        for _ in 0..round {
                            let _ = h.collect()?;
                        }
                        h.rendezvous()?;
                    }
                    h.finished();
                    Ok(())
                });
                coord.activate(&master)?;
                protocol_mw(coord, &master, squaring_worker)
            })
            .unwrap();
        let pools = outcome.pools();
        assert_eq!(pools.len(), 3);
        assert_eq!(
            pools.iter().map(|p| p.workers_created).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        env.shutdown();
        assert!(env.failures().is_empty());
    }

    #[test]
    fn many_workers_single_pool() {
        let env = Environment::new();
        let jobs: Vec<f64> = (1..=16).map(|i| i as f64).collect();
        let got = run_squares(&env, jobs.clone());
        let want: Vec<f64> = jobs.iter().map(|x| x * x).collect();
        assert_eq!(got, want);
        env.shutdown();
    }

    #[test]
    fn workers_all_die_before_acknowledgement() {
        // After rendezvous() returns, every worker must have terminated.
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let coord_ref = coord.self_ref();
            let env2 = coord.env().clone();
            let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
                let h = MasterHandle::new(ctx, coord_ref, env2);
                h.create_pool();
                let w1 = h.request_worker()?;
                h.send_work(Unit::real(1.0))?;
                let w2 = h.request_worker()?;
                h.send_work(Unit::real(2.0))?;
                let _ = h.collect()?;
                let _ = h.collect()?;
                h.rendezvous()?;
                // Workers raised death_worker before dying; the coordinator
                // acknowledged only after counting all of them. The workers
                // may still be a few instructions from actually exiting, so
                // join with a timeout.
                w1.core().wait_terminated(Duration::from_secs(5))?;
                w2.core().wait_terminated(Duration::from_secs(5))?;
                h.finished();
                Ok(())
            });
            coord.activate(&master)?;
            protocol_mw(coord, &master, squaring_worker)
        })
        .unwrap();
        env.shutdown();
        assert!(env.failures().is_empty());
    }

    #[test]
    fn trace_contains_protocol_messages() {
        let env = Environment::new();
        run_squares(&env, vec![5.0]);
        let msgs: Vec<String> = env
            .trace()
            .snapshot()
            .into_iter()
            .map(|r| r.message)
            .collect();
        assert!(msgs.iter().any(|m| m == "begin"));
        assert!(msgs.iter().any(|m| m == "create_worker: begin"));
        assert!(msgs.iter().any(|m| m == "rendezvous acknowledged"));
        env.shutdown();
    }
}
