//! Behavior interfaces of the master and the worker (§4.3), codified.
//!
//! The paper specifies the protocol compliance of the two computational
//! parties as numbered steps. These handles make each step a method, so a
//! master or worker wrapper (the "C wrapper" around legacy code) cannot get
//! the protocol wrong structurally — it can only call the steps in the
//! wrong order, which the tests in `mw.rs` and the renovation crate guard.

use manifold::prelude::*;

use crate::{A_RENDEZVOUS, CREATE_POOL, CREATE_WORKER, FINISHED, RENDEZVOUS};

/// The master's view of the protocol (behavior interface steps 1–5).
///
/// Wraps the master's own [`ProcessCtx`] plus the two capabilities the
/// environment granted it at creation: observing the coordinator (to
/// receive `a_rendezvous`) and activating workers whose references it
/// receives (§4.3 step 3c).
pub struct MasterHandle {
    ctx: ProcessCtx,
    env: Environment,
}

impl MasterHandle {
    /// Step 1: make the extern protocol events available to the master.
    /// `coordinator` is the process running [`crate::protocol_mw`]; the
    /// master starts observing it so `a_rendezvous` reaches its memory.
    pub fn new(ctx: ProcessCtx, coordinator: ProcessRef, env: Environment) -> Self {
        ctx.watch(&coordinator);
        MasterHandle { ctx, env }
    }

    /// The master's own process context.
    pub fn ctx(&self) -> &ProcessCtx {
        &self.ctx
    }

    /// Step 3(a): request an empty pool of workers.
    pub fn create_pool(&self) {
        self.ctx.raise(CREATE_POOL);
    }

    /// Steps 3(b)+(c): request a worker, read its reference from our own
    /// input port, and activate it.
    pub fn request_worker(&self) -> MfResult<ProcessRef> {
        self.ctx.raise(CREATE_WORKER);
        let worker = self.ctx.read("input")?.expect_process_ref()?;
        self.env.activate(&worker)?;
        Ok(worker)
    }

    /// Step 3(d): write the information a worker needs onto our own output
    /// port (the coordinator has connected it to the worker's input).
    pub fn send_work(&self, unit: Unit) -> MfResult<()> {
        self.ctx.write("output", unit)
    }

    /// Step 3(f): collect one computational result from our own `dataport`.
    pub fn collect(&self) -> MfResult<Unit> {
        self.ctx.read("dataport")
    }

    /// Steps 3(g)+(h): request the rendezvous and wait for the
    /// acknowledgement.
    pub fn rendezvous(&self) -> MfResult<()> {
        self.ctx.raise(RENDEZVOUS);
        self.ctx.wait_event(&[A_RENDEZVOUS.into()])?;
        Ok(())
    }

    /// Step 4 (end): tell the coordinator no more workers are needed.
    pub fn finished(&self) {
        self.ctx.raise(FINISHED);
    }
}

/// The worker's view of the protocol (behavior interface steps 1–4, plus
/// the death event received "via the first argument of the worker").
pub struct WorkerHandle {
    ctx: ProcessCtx,
    death_event: Name,
}

impl WorkerHandle {
    /// Wrap a worker context with the death event it must raise when done.
    pub fn new(ctx: ProcessCtx, death_event: Name) -> Self {
        WorkerHandle { ctx, death_event }
    }

    /// The worker's own process context.
    pub fn ctx(&self) -> &ProcessCtx {
        &self.ctx
    }

    /// Step 1: read the information needed to do the job from our own
    /// input port.
    pub fn receive(&self) -> MfResult<Unit> {
        self.ctx.read("input")
    }

    /// Step 3: write the computed results to our own output port.
    pub fn submit(&self, unit: Unit) -> MfResult<()> {
        self.ctx.write("output", unit)
    }

    /// Step 4: signal the coordinator that we are done and going to die.
    pub fn die(&self) {
        self.ctx.raise(self.death_event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_handle_watches_coordinator() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let coord_ref = coord.self_ref();
            let env2 = coord.env().clone();
            let master = coord.create_atomic("Master", move |ctx: ProcessCtx| {
                let h = MasterHandle::new(ctx, coord_ref, env2);
                // The coordinator raises a_rendezvous below; rendezvous()
                // must see it even though we raise `rendezvous` first.
                h.ctx().raise(RENDEZVOUS);
                h.ctx().wait_event(&[A_RENDEZVOUS.into()])?;
                Ok(())
            });
            coord.activate(&master)?;
            // React to the master's rendezvous and acknowledge.
            coord.wait_events(&[RENDEZVOUS.into()])?;
            coord.raise(A_RENDEZVOUS);
            let st = coord.state();
            st.until_terminated(&master, &[])?;
            Ok(())
        })
        .unwrap();
        env.shutdown();
        assert!(env.failures().is_empty());
    }

    #[test]
    fn worker_handle_raises_custom_death_event() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let w = coord.create_atomic("W", |ctx: ProcessCtx| {
                let h = WorkerHandle::new(ctx, Name::new("my_death"));
                h.die();
                Ok(())
            });
            coord.activate(&w)?;
            coord.wait_events(&["my_death".into()])?;
            Ok(())
        })
        .unwrap();
        env.shutdown();
    }
}
