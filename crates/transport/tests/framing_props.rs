//! Property tests for the wire codec + framing stack: arbitrary `Unit`
//! trees survive encode → frame → split-at-arbitrary-byte-boundaries →
//! reassemble → decode, bit for bit.

use manifold::Unit;
use proptest::collection;
use proptest::prelude::*;
use proptest::strategy::{BoxedStrategy, Just};
use transport::{
    decode_unit, encode_unit_vec, frame_vec, FrameDecoder, WireError, HEADER_LEN, MAX_DEPTH,
};

/// f64 values including everything the solver can produce plus the
/// pathological cases a codec must not normalize away.
fn tricky_f64() -> BoxedStrategy<f64> {
    prop_oneof![
        any::<f64>(),
        Just(0.0),
        Just(-0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MIN_POSITIVE),
        Just(f64::MAX),
    ]
    .boxed()
}

fn unit_leaf() -> BoxedStrategy<Unit> {
    prop_oneof![
        any::<i64>().prop_map(Unit::int),
        tricky_f64().prop_map(Unit::real),
        "[ -~]{0,12}".prop_map(Unit::text),
        collection::vec(any::<u8>(), 0..24).prop_map(Unit::bytes),
        collection::vec(tricky_f64(), 0..48).prop_map(Unit::reals),
        Just(Unit::tuple(vec![])),
    ]
    .boxed()
}

fn unit_tree() -> BoxedStrategy<Unit> {
    unit_leaf().prop_recursive(4, 32, 4, |inner| {
        collection::vec(inner, 0..5).prop_map(Unit::tuple)
    })
}

/// Bit-exact structural equality (`==` treats NaN != NaN and -0.0 == 0.0,
/// which is exactly what a codec test must NOT use).
fn bit_equal(a: &Unit, b: &Unit) -> bool {
    match (a, b) {
        (Unit::Int(x), Unit::Int(y)) => x == y,
        (Unit::Real(x), Unit::Real(y)) => x.to_bits() == y.to_bits(),
        (Unit::Text(x), Unit::Text(y)) => x == y,
        (Unit::Bytes(x), Unit::Bytes(y)) => x.as_ref() == y.as_ref(),
        (Unit::Reals(x), Unit::Reals(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        }
        (Unit::Tuple(x), Unit::Tuple(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(p, q)| bit_equal(p, q))
        }
        _ => false,
    }
}

/// Feed `stream` into a decoder in chunks whose sizes cycle through
/// `sizes` (empty = one big chunk), returning every recovered frame.
fn reassemble(stream: &[u8], sizes: &[usize]) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < stream.len() {
        let take = if sizes.is_empty() {
            stream.len()
        } else {
            sizes[i % sizes.len()].max(1)
        };
        let end = (pos + take).min(stream.len());
        dec.push(&stream[pos..end]);
        pos = end;
        i += 1;
        while let Some(f) = dec.next_frame().expect("valid stream must decode") {
            frames.push(f);
        }
    }
    assert_eq!(dec.pending(), 0, "no bytes may be left over");
    frames
}

proptest! {
    #[test]
    fn single_unit_survives_any_chunking(
        unit in unit_tree(),
        sizes in collection::vec(1usize..17, 0..8),
    ) {
        let encoded = encode_unit_vec(&unit).unwrap();
        let frames = reassemble(&frame_vec(&encoded), &sizes);
        prop_assert_eq!(frames.len(), 1);
        let decoded = decode_unit(&frames[0]).unwrap();
        prop_assert!(bit_equal(&unit, &decoded), "{:?} != {:?}", unit, decoded);
    }

    #[test]
    fn unit_sequence_survives_any_chunking(
        units in collection::vec(unit_tree(), 1..6),
        sizes in collection::vec(1usize..33, 0..6),
    ) {
        let mut stream = Vec::new();
        for u in &units {
            stream.extend(frame_vec(&encode_unit_vec(u).unwrap()));
        }
        let frames = reassemble(&stream, &sizes);
        prop_assert_eq!(frames.len(), units.len());
        for (u, f) in units.iter().zip(&frames) {
            let decoded = decode_unit(f).unwrap();
            prop_assert!(bit_equal(u, &decoded), "{:?} != {:?}", u, decoded);
        }
    }

    #[test]
    fn max_depth_nesting_survives_byte_at_a_time(leaf in unit_leaf()) {
        let mut unit = leaf;
        for _ in 0..MAX_DEPTH {
            unit = Unit::tuple(vec![unit]);
        }
        let stream = frame_vec(&encode_unit_vec(&unit).unwrap());
        let frames = reassemble(&stream, &[1]);
        prop_assert_eq!(frames.len(), 1);
        prop_assert!(bit_equal(&unit, &decode_unit(&frames[0]).unwrap()));
    }

    #[test]
    fn truncated_streams_never_yield_frames_or_panic(
        unit in unit_tree(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let stream = frame_vec(&encode_unit_vec(&unit).unwrap());
        let cut = ((stream.len() as f64) * cut_fraction) as usize;
        let cut = cut.min(stream.len().saturating_sub(1));
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..cut]);
        // A strict prefix of one frame must never produce a frame.
        prop_assert_eq!(dec.next_frame().unwrap(), None);
    }

    /// Flipping *any single bit* of the CRC or payload region must surface
    /// as a checksum rejection — never as a silently different unit and
    /// never as a panic. (Bits of the length field may instead starve the
    /// decoder or trip the size cap; those are covered below.)
    #[test]
    fn any_payload_bit_flip_is_detected(
        unit in unit_tree(),
        flip_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let stream = frame_vec(&encode_unit_vec(&unit).unwrap());
        let region = stream.len() - 4; // skip the 4 length bytes
        let byte = 4 + ((region as f64 * flip_fraction) as usize).min(region - 1);
        let mut corrupt = stream;
        corrupt[byte] ^= 1 << bit;
        let mut dec = FrameDecoder::new();
        dec.push(&corrupt);
        prop_assert_eq!(dec.next_frame(), Err(WireError::BadCrc));
    }

    /// A flipped length-field bit must never yield a frame either: it
    /// either starves the decoder (longer length), trips the cap, or —
    /// when the truncated payload happens to be consumed — fails the CRC.
    #[test]
    fn length_bit_flips_never_yield_the_frame(
        unit in unit_tree(),
        byte in 0usize..4,
        bit in 0u8..8,
    ) {
        let payload = encode_unit_vec(&unit).unwrap();
        let stream = frame_vec(&payload);
        let mut corrupt = stream;
        corrupt[byte] ^= 1 << bit;
        let mut dec = FrameDecoder::new();
        dec.push(&corrupt);
        match dec.next_frame() {
            Ok(None) | Err(_) => {}
            Ok(Some(frame)) => {
                // A shorter declared length re-frames a payload prefix; the
                // CRC must have caught that, so reaching here is a failure.
                prop_assert!(false, "corrupt length accepted a frame of {} bytes", frame.len());
            }
        }
        // HEADER_LEN stays the wire constant the flips were aimed at.
        prop_assert_eq!(HEADER_LEN, 8);
    }
}
