//! Corruption robustness for the coordinator↔child session protocol: a
//! hostile (or just unlucky) byte stream must surface as a typed decode
//! error — never a panic, and never a *silently wrong* message. The v4
//! membership frames (`HelloAck` with its pool assignment, `Leave`) are
//! attacked alongside the originals: an elastic fleet that adds and
//! retires workers mid-run leans on these frames for correctness, so a
//! corrupted `Leave` must never retire the wrong instance silently.
//!
//! The seed corpus lives in `fuzz/corpus/transport_msg/` (one framed
//! message per file, covering every `Message` variant). Regenerate it
//! after an intentional protocol change with:
//!
//! ```text
//! MC_BLESS=1 cargo test -p transport --test msg_robustness
//! ```

use std::path::PathBuf;

use manifold::Unit;
use transport::msg::{Message, PROTOCOL_VERSION};
use transport::{frame_vec, FrameDecoder};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../fuzz/corpus/transport_msg")
        .canonicalize()
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus/transport_msg")
        })
}

/// One exemplar per variant, fields chosen to exercise every scalar
/// width, an empty payload, a nested payload, and non-trivial strings.
fn exemplars() -> Vec<(&'static str, Message)> {
    vec![
        (
            "hello",
            Message::Hello {
                version: PROTOCOL_VERSION,
                instance: 3,
                host: "node7.cluster-α".into(),
                task_uid: (4u64 + 1) << 18 | 2,
            },
        ),
        (
            "hello-ack",
            Message::HelloAck {
                instance: 3,
                pool: 2,
            },
        ),
        (
            "job",
            Message::Job {
                seq: 17,
                job: 4,
                payload: Unit::tuple(vec![Unit::int(5), Unit::reals(vec![1.0, -0.5])]),
            },
        ),
        (
            "done",
            Message::Done {
                seq: 17,
                job: 4,
                payload: Unit::reals(vec![0.25, f64::MIN_POSITIVE, -1234.5678]),
            },
        ),
        (
            "done-empty",
            Message::Done {
                seq: 18,
                job: 0,
                payload: Unit::reals(vec![]),
            },
        ),
        (
            "fail",
            Message::Fail {
                seq: 19,
                job: 4,
                error: "subsolve diverged: chaos".into(),
            },
        ),
        ("heartbeat", Message::Heartbeat),
        ("shutdown", Message::Shutdown),
        (
            "trace",
            Message::Trace {
                text: "host task 1 2 3 4\n    t m f 1 -> Welcome\n".into(),
            },
        ),
        (
            "leave",
            Message::Leave {
                instance: 3,
                reason: "retired".into(),
            },
        ),
    ]
}

/// Load (or, under `MC_BLESS=1`, regenerate) the corpus and check every
/// file still decodes to its exemplar.
fn corpus() -> Vec<(String, Vec<u8>, Message)> {
    let dir = corpus_dir();
    let bless = std::env::var_os("MC_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut out = Vec::new();
    for (name, msg) in exemplars() {
        let path = dir.join(format!("{name}.bin"));
        let frame = frame_vec(&msg.encode().unwrap());
        if bless {
            std::fs::write(&path, &frame).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing corpus seed {} ({e}); run with MC_BLESS=1",
                path.display()
            )
        });
        assert_eq!(
            bytes, frame,
            "corpus seed {name} drifted from the current encoding; regenerate with \
             MC_BLESS=1 if the protocol change was intentional"
        );
        out.push((name.to_string(), bytes, msg));
    }
    out
}

fn deframe_one(bytes: &[u8]) -> Result<Option<Vec<u8>>, String> {
    let mut dec = FrameDecoder::new();
    dec.push(bytes);
    match dec.next_frame() {
        Err(e) => Err(e.to_string()),
        Ok(p) => Ok(p),
    }
}

/// Layer 1: every single-bit flip of every framed seed either fails (at
/// the deframe CRC or the decode) or yields the original message — a
/// corrupted frame must never decode to something *else*. For membership
/// frames "something else" means joining the wrong pool or retiring the
/// wrong worker.
#[test]
fn single_bit_flips_never_smuggle_a_different_message() {
    let mut flips = 0u64;
    let mut caught = 0u64;
    for (name, frame, msg) in corpus() {
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut evil = frame.clone();
                evil[byte] ^= 1 << bit;
                flips += 1;
                let survived = std::panic::catch_unwind(|| {
                    match deframe_one(&evil) {
                        Err(_) => None,   // CRC / header caught it
                        Ok(None) => None, // length field now asks for more
                        Ok(Some(payload)) => Message::decode(&payload).ok(),
                    }
                })
                .unwrap_or_else(|_| {
                    panic!("{name}: byte {byte} bit {bit} flip PANICKED the decoder")
                });
                match survived {
                    None => caught += 1,
                    Some(decoded) => assert_eq!(
                        decoded, msg,
                        "{name}: byte {byte} bit {bit} flip decoded to a DIFFERENT message"
                    ),
                }
            }
        }
    }
    assert!(
        caught * 100 >= flips * 99,
        "only {caught}/{flips} flips were caught — frame integrity checking looks disabled"
    );
}

/// Layer 2: `Message::decode` on corrupted *bare payloads* (CRC layer
/// presumed defeated) returns `Ok`/`Err`, never panics — under single-bit
/// flips, truncations, and garbage extensions.
#[test]
fn payload_corruption_never_panics_the_decoder() {
    for (name, frame, _) in corpus() {
        let payload = deframe_one(&frame).unwrap().unwrap();
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut evil = payload.clone();
                evil[byte] ^= 1 << bit;
                std::panic::catch_unwind(|| {
                    let _ = Message::decode(&evil);
                })
                .unwrap_or_else(|_| {
                    panic!("{name}: payload byte {byte} bit {bit} flip panicked decode")
                });
            }
        }
        for cut in 0..payload.len() {
            std::panic::catch_unwind(|| {
                let _ = Message::decode(&payload[..cut]);
            })
            .unwrap_or_else(|_| panic!("{name}: truncation to {cut} bytes panicked decode"));
        }
        let mut extended = payload.clone();
        extended.extend_from_slice(&[0xFF; 16]);
        std::panic::catch_unwind(|| {
            let _ = Message::decode(&extended);
        })
        .unwrap_or_else(|_| panic!("{name}: garbage extension panicked decode"));
    }
}

/// Layer 2, shotgun: deterministic xorshift-driven multi-bit mangling of
/// frames — thousands of corruptions, zero panics required.
#[test]
fn random_mangling_never_panics() {
    let mut state: u64 = 0xB1AC_5EA1_ED5E_ED00;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let seeds = corpus();
    for round in 0..4_000u32 {
        let (name, frame, _) = &seeds[(rng() as usize) % seeds.len()];
        let mut evil = frame.clone();
        let flips = 1 + (rng() as usize) % 8;
        for _ in 0..flips {
            let pos = (rng() as usize) % evil.len();
            evil[pos] ^= (rng() % 255 + 1) as u8;
        }
        if rng() % 4 == 0 {
            let keep = (rng() as usize) % evil.len();
            evil.truncate(keep);
        }
        std::panic::catch_unwind(|| match deframe_one(&evil) {
            Err(_) | Ok(None) => {}
            Ok(Some(payload)) => {
                let _ = Message::decode(&payload);
            }
        })
        .unwrap_or_else(|_| panic!("{name}: mangling round {round} panicked"));
    }
}

/// Cross-variant confusion: re-tagging one variant's fields as another
/// variant (same arity) must either fail the arity/type checks or decode
/// to a well-formed message of the *claimed* tag — never corrupt state by
/// half-parsing. This is the membership-specific attack: `HelloAck` and
/// `Leave` share arity 3, so a flipped tag bit must not silently turn a
/// pool assignment into a retirement order.
#[test]
fn retagged_membership_frames_decode_cleanly_or_not_at_all() {
    let ack = Message::HelloAck {
        instance: 7,
        pool: 1,
    };
    let items = match ack.to_unit().as_tuple() {
        Some(items) => items.to_vec(),
        None => unreachable!("messages encode as tuples"),
    };
    // Swap the tag for every known and several unknown tags.
    for tag in 0..16i64 {
        let mut forged = items.clone();
        forged[0] = Unit::int(tag);
        let result = std::panic::catch_unwind(|| Message::from_unit(&Unit::tuple(forged)))
            .expect("retagging must not panic");
        if let Ok(msg) = result {
            // Arity-3 tags: HelloAck and Leave. Leave's field 2 is text,
            // so an all-int HelloAck body must NOT parse as Leave.
            match msg {
                Message::HelloAck { instance, pool } => {
                    assert_eq!((instance, pool), (7, 1));
                }
                other => panic!("HelloAck body decoded as {other:?}"),
            }
        }
    }
}
