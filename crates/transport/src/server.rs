//! Child-side serve loop: what a remote task instance runs.
//!
//! The child connects back to the coordinator (with bounded backoff — the
//! listener may not be up yet when the child execs), introduces itself
//! with `Hello`, then executes jobs one at a time until told to shut down.
//! A background thread emits [`Message::Heartbeat`] at a fixed cadence for
//! the life of the session, so the coordinator can tell a slow job from a
//! dead child.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use manifold::Unit;
use parking_lot::Mutex;

use crate::conn::{connect_with_backoff, Addr};
use crate::frame::frame_vec;
use crate::msg::{Message, PROTOCOL_VERSION};

/// Transport-level fault injection for a serving session — the *mechanism*
/// half of a chaos schedule. Callers (the chaos layer above this crate)
/// decide *which* jobs get which fault; this struct only says how each is
/// realized on the wire. Job ordinals are 1-based and count the jobs this
/// session received.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeFaults {
    /// Compute the n-th job normally, then ship the reply in a frame with
    /// one payload bit flipped — the coordinator's CRC check must reject
    /// the connection.
    pub corrupt_reply_on_job: Option<u64>,
    /// Sleep `(job, delay)` before computing that job; heartbeats continue,
    /// so the coordinator must not declare this instance dead.
    pub stall_on_job: Option<(u64, Duration)>,
    /// Close the connection upon *receiving* the n-th job, no reply.
    pub drop_conn_on_job: Option<u64>,
    /// Stretch the heartbeat cadence by this much.
    pub heartbeat_delay: Option<Duration>,
}

impl ServeFaults {
    /// True when no fault is configured.
    pub fn is_empty(&self) -> bool {
        *self == ServeFaults::default()
    }
}

/// Parameters of one serving session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where the coordinator is listening.
    pub addr: Addr,
    /// The task-instance slot this child fills.
    pub instance: u64,
    /// The machine's real hostname, reported in `Hello`.
    pub host: String,
    /// The task-instance uid for §6 trace labelling.
    pub task_uid: u64,
    /// Heartbeat cadence.
    pub heartbeat: Duration,
    /// Connection attempts before giving up on startup.
    pub connect_attempts: usize,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Injected transport faults (none by default).
    pub faults: ServeFaults,
}

impl ServeConfig {
    /// Sensible defaults for a localhost deployment.
    pub fn new(addr: Addr, instance: u64, host: String, task_uid: u64) -> Self {
        Self {
            addr,
            instance,
            host,
            task_uid,
            heartbeat: Duration::from_millis(250),
            connect_attempts: 20,
            connect_timeout: Duration::from_secs(5),
            faults: ServeFaults::default(),
        }
    }
}

/// What happened over the session, for the child's exit diagnostics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs answered with `Done`.
    pub jobs_done: u64,
    /// Jobs answered with `Fail`.
    pub jobs_failed: u64,
    /// Whether the coordinator sent an orderly `Shutdown` (vs. EOF).
    pub clean_shutdown: bool,
    /// Pool (shard) assigned by the coordinator in the handshake.
    pub pool: u64,
    /// Whether the coordinator retired this worker with `Leave` (an
    /// orderly mid-run departure rather than an end-of-run shutdown).
    pub retired: bool,
}

/// Run the serve loop until shutdown or connection loss.
///
/// `handler` executes one job payload; an `Err` string becomes a `Fail`
/// reply (the session continues). `trace_dump` is invoked once at orderly
/// shutdown; a `Some` result is shipped back as a `Trace` message.
pub fn serve<H, T>(cfg: ServeConfig, mut handler: H, trace_dump: T) -> std::io::Result<ServeSummary>
where
    H: FnMut(Unit) -> Result<Unit, String>,
    T: FnOnce() -> Option<String>,
{
    let mut reader = connect_with_backoff(
        &cfg.addr,
        cfg.connect_attempts,
        Duration::from_millis(20),
        cfg.connect_timeout,
    )?;
    let writer = Arc::new(Mutex::new(reader.try_clone()?));
    // A full socket buffer must not wedge the heartbeat thread while it
    // holds the writer lock.
    writer
        .lock()
        .set_write_timeout(Some(Duration::from_secs(2)))?;

    writer.lock().send_msg(&Message::Hello {
        version: PROTOCOL_VERSION,
        instance: cfg.instance,
        host: cfg.host.clone(),
        task_uid: cfg.task_uid,
    })?;
    reader.set_read_timeout(Some(cfg.connect_timeout))?;
    let pool = match reader.recv_msg()? {
        Some(Message::HelloAck { instance, pool }) if instance == cfg.instance => pool,
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("handshake failed: expected HelloAck, got {other:?}"),
            ))
        }
    };
    // Jobs may be minutes apart; liveness flows the other way (our
    // heartbeats), so block indefinitely waiting for work.
    reader.set_read_timeout(None)?;

    let beating = Arc::new(AtomicBool::new(true));
    let heartbeat = {
        let writer = Arc::clone(&writer);
        let beating = Arc::clone(&beating);
        let period = cfg.heartbeat + cfg.faults.heartbeat_delay.unwrap_or(Duration::ZERO);
        std::thread::spawn(move || {
            while beating.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                if !beating.load(Ordering::Relaxed) {
                    break;
                }
                if writer.lock().send_msg(&Message::Heartbeat).is_err() {
                    break;
                }
            }
        })
    };

    let mut summary = ServeSummary {
        pool,
        ..ServeSummary::default()
    };
    let mut jobs_seen = 0u64;
    let outcome = loop {
        match reader.recv_msg() {
            Ok(Some(Message::Job { seq, job, payload })) => {
                jobs_seen += 1;
                if cfg.faults.drop_conn_on_job == Some(jobs_seen) {
                    // Fault injection: the session dies mid-protocol, the
                    // way a cable pull looks from the coordinator's side.
                    break Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "fault injection: connection dropped on job",
                    ));
                }
                if let Some((job, delay)) = cfg.faults.stall_on_job {
                    if job == jobs_seen {
                        // Heartbeats keep flowing from the background
                        // thread; only the reply is late.
                        std::thread::sleep(delay);
                    }
                }
                // The engine-job id is echoed verbatim: the child does not
                // interpret it, it only lets the coordinator attribute this
                // reply to the job that issued the request.
                let reply = match handler(payload) {
                    Ok(result) => {
                        summary.jobs_done += 1;
                        Message::Done {
                            seq,
                            job,
                            payload: result,
                        }
                    }
                    Err(error) => {
                        summary.jobs_failed += 1;
                        Message::Fail { seq, job, error }
                    }
                };
                if cfg.faults.corrupt_reply_on_job == Some(jobs_seen) {
                    // Fault injection: a well-formed frame whose last
                    // payload bit was flipped in transit. The CRC header
                    // still describes the *original* payload, so the
                    // coordinator must detect the corruption and poison
                    // the connection.
                    if let Err(e) = (|| {
                        let encoded = reply.encode().map_err(std::io::Error::from)?;
                        let mut bytes = frame_vec(&encoded);
                        let last = bytes.len() - 1;
                        bytes[last] ^= 0x01;
                        let mut w = writer.lock();
                        std::io::Write::write_all(&mut *w, &bytes)?;
                        std::io::Write::flush(&mut *w)
                    })() {
                        break Err(e);
                    }
                    continue;
                }
                if let Err(e) = writer.lock().send_msg(&reply) {
                    break Err(e);
                }
            }
            Ok(Some(Message::Shutdown)) => {
                summary.clean_shutdown = true;
                if let Some(text) = trace_dump() {
                    let _ = writer.lock().send_msg(&Message::Trace { text });
                }
                break Ok(());
            }
            Ok(Some(Message::Leave { instance, reason })) if instance == cfg.instance => {
                // Coordinator-initiated retirement: acknowledge with our
                // own Leave, ship the trace, and exit as cleanly as a
                // Shutdown — but mid-run, with the fleet still serving.
                summary.retired = true;
                summary.clean_shutdown = true;
                let _ = writer.lock().send_msg(&Message::Leave {
                    instance: cfg.instance,
                    reason,
                });
                if let Some(text) = trace_dump() {
                    let _ = writer.lock().send_msg(&Message::Trace { text });
                }
                break Ok(());
            }
            Ok(Some(Message::Heartbeat)) => {} // tolerated, not expected
            Ok(Some(other)) => {
                break Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected message from coordinator: {other:?}"),
                ))
            }
            Ok(None) => break Ok(()), // coordinator went away
            Err(e) => break Err(e),
        }
    };

    beating.store(false, Ordering::Relaxed);
    reader.shutdown();
    let _ = heartbeat.join();
    outcome.map(|()| summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::Conn;

    fn coordinator_side(listener: std::net::TcpListener) -> std::thread::JoinHandle<Vec<Message>> {
        std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut conn = Conn::Tcp(s);
            let mut seen = Vec::new();
            // Handshake.
            match conn.recv_msg().unwrap().unwrap() {
                Message::Hello {
                    version, instance, ..
                } => {
                    assert_eq!(version, PROTOCOL_VERSION);
                    conn.send_msg(&Message::HelloAck { instance, pool: 0 })
                        .unwrap();
                }
                other => panic!("expected Hello, got {other:?}"),
            }
            // One good job, one failing job.
            conn.send_msg(&Message::Job {
                seq: 1,
                job: 7,
                payload: Unit::real(21.0),
            })
            .unwrap();
            loop {
                match conn.recv_msg().unwrap().unwrap() {
                    Message::Heartbeat => continue,
                    m => {
                        seen.push(m);
                        break;
                    }
                }
            }
            conn.send_msg(&Message::Job {
                seq: 2,
                job: 7,
                payload: Unit::text("boom"),
            })
            .unwrap();
            loop {
                match conn.recv_msg().unwrap().unwrap() {
                    Message::Heartbeat => continue,
                    m => {
                        seen.push(m);
                        break;
                    }
                }
            }
            conn.send_msg(&Message::Shutdown).unwrap();
            loop {
                match conn.recv_msg().unwrap() {
                    Some(Message::Heartbeat) => continue,
                    Some(m) => {
                        seen.push(m);
                        break;
                    }
                    None => break,
                }
            }
            seen
        })
    }

    #[test]
    fn serve_session_with_heartbeats_failures_and_trace() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = Addr::Tcp(listener.local_addr().unwrap().to_string());
        let coord = coordinator_side(listener);

        let mut cfg = ServeConfig::new(addr, 4, "childhost".into(), 99);
        cfg.heartbeat = Duration::from_millis(10); // force heartbeats to appear
        let summary = serve(
            cfg,
            |payload| match payload.as_real() {
                Some(x) => Ok(Unit::real(2.0 * x)),
                None => Err("not a real".into()),
            },
            || Some("TRACE-BLOCK".into()),
        )
        .unwrap();

        assert_eq!(summary.jobs_done, 1);
        assert_eq!(summary.jobs_failed, 1);
        assert!(summary.clean_shutdown);

        let seen = coord.join().unwrap();
        assert_eq!(
            seen[0],
            Message::Done {
                seq: 1,
                job: 7,
                payload: Unit::real(42.0)
            }
        );
        match &seen[1] {
            Message::Fail {
                seq: 2,
                job: 7,
                error,
            } => assert!(error.contains("not a real")),
            other => panic!("expected Fail, got {other:?}"),
        }
        assert_eq!(
            seen[2],
            Message::Trace {
                text: "TRACE-BLOCK".into()
            }
        );
    }

    #[test]
    fn serve_survives_coordinator_eof() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = Addr::Tcp(listener.local_addr().unwrap().to_string());
        let coord = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut conn = Conn::Tcp(s);
            match conn.recv_msg().unwrap().unwrap() {
                Message::Hello { instance, .. } => conn
                    .send_msg(&Message::HelloAck { instance, pool: 0 })
                    .unwrap(),
                other => panic!("{other:?}"),
            }
            // Drop without Shutdown: abrupt coordinator death.
        });
        let summary = serve(ServeConfig::new(addr, 0, "h".into(), 1), Ok, || None).unwrap();
        assert!(!summary.clean_shutdown);
        assert_eq!(summary.jobs_done, 0);
        coord.join().unwrap();
    }

    #[test]
    fn corrupt_reply_fault_poisons_the_connection() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = Addr::Tcp(listener.local_addr().unwrap().to_string());
        let coord = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut conn = Conn::Tcp(s);
            match conn.recv_msg().unwrap().unwrap() {
                Message::Hello { instance, .. } => conn
                    .send_msg(&Message::HelloAck { instance, pool: 0 })
                    .unwrap(),
                other => panic!("{other:?}"),
            }
            conn.send_msg(&Message::Job {
                seq: 1,
                job: 0,
                payload: Unit::real(1.0),
            })
            .unwrap();
            loop {
                match conn.recv_msg() {
                    Ok(Some(Message::Heartbeat)) => continue,
                    Ok(other) => panic!("corrupt frame decoded as {other:?}"),
                    Err(e) => {
                        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
                        assert!(e.to_string().contains("checksum"), "got: {e}");
                        break;
                    }
                }
            }
        });
        let mut cfg = ServeConfig::new(addr, 0, "h".into(), 1);
        cfg.faults.corrupt_reply_on_job = Some(1);
        let summary = serve(cfg, Ok, || None).unwrap();
        // The child computed the job; only the wire bytes were damaged.
        assert_eq!(summary.jobs_done, 1);
        coord.join().unwrap();
    }

    #[test]
    fn drop_conn_fault_ends_the_session_without_a_reply() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = Addr::Tcp(listener.local_addr().unwrap().to_string());
        let coord = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut conn = Conn::Tcp(s);
            match conn.recv_msg().unwrap().unwrap() {
                Message::Hello { instance, .. } => conn
                    .send_msg(&Message::HelloAck { instance, pool: 0 })
                    .unwrap(),
                other => panic!("{other:?}"),
            }
            conn.send_msg(&Message::Job {
                seq: 1,
                job: 0,
                payload: Unit::real(1.0),
            })
            .unwrap();
            loop {
                match conn.recv_msg() {
                    Ok(Some(Message::Heartbeat)) => continue,
                    Ok(Some(other)) => panic!("unexpected reply {other:?}"),
                    Ok(None) | Err(_) => break, // EOF or reset: session died
                }
            }
        });
        let mut cfg = ServeConfig::new(addr, 0, "h".into(), 1);
        cfg.faults.drop_conn_on_job = Some(1);
        let err = serve(cfg, Ok, || None).unwrap_err();
        assert!(err.to_string().contains("fault injection"), "got: {err}");
        coord.join().unwrap();
    }

    #[test]
    fn serve_fails_fast_when_nobody_listens() {
        let mut cfg = ServeConfig::new(Addr::Tcp("127.0.0.1:1".into()), 0, "h".into(), 1);
        cfg.connect_attempts = 2;
        let err = serve(cfg, Ok, || None);
        assert!(err.is_err());
    }
}
