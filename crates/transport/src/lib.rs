//! # transport — real multi-process task instances over sockets
//!
//! The `manifold` crate runs every process instance as a thread and keeps
//! task instances as bookkeeping entities. This crate supplies the missing
//! half of the paper's deployment story: task instances as *separate
//! operating-system processes*, connected to the coordinator's process over
//! TCP or Unix-domain sockets, placed on hosts according to the CONFIG
//! host map.
//!
//! The stack, bottom up:
//!
//! * [`wire`] — exact binary encoding of [`manifold::Unit`] values
//!   (little-endian, IEEE-754 bit patterns for reals);
//! * [`frame`] — length-prefixed, CRC-32-guarded framing with an
//!   incremental decoder;
//! * [`msg`] — the session protocol (`Hello`/`HelloAck` handshake, `Job`/
//!   `Done`/`Fail` request-response, `Heartbeat`, `Shutdown`, `Trace`);
//! * [`conn`] — one connection (TCP or Unix socket) with timeouts and
//!   bounded reconnect-with-backoff;
//! * [`spawn`] — launching child task-instance processes: a local
//!   `fork/exec` spawner plus an ssh-style remote spawner stub behind the
//!   same trait;
//! * [`server`] — the child-side serve loop (handshake, job execution,
//!   heartbeats while computing, trace shipping at shutdown);
//! * [`launcher`] — the coordinator-side pool: spawns instances from the
//!   CONFIG host map, hands out [`manifold::remote::RemoteConduit`]s,
//!   detects dead instances (EOF, heartbeat silence) and respawns them
//!   under a bounded budget.
//!
//! Nothing above this crate handles sockets: `protocol` and the
//! application layers talk to [`manifold::remote`] traits only, so the
//! threads backend and this process backend are interchangeable by
//! configuration.

pub mod conn;
pub mod frame;
pub mod launcher;
pub mod msg;
pub mod server;
pub mod spawn;
pub mod wire;

use std::fmt;

pub use conn::{connect_with_backoff, Addr, Backoff, Conn};
pub use frame::{crc32, frame_vec, read_frame, write_frame, FrameDecoder, HEADER_LEN, MAX_FRAME};
pub use launcher::{BindMode, PoolConfig, RemoteWorkerPool};
pub use msg::{Message, PROTOCOL_VERSION};
pub use server::{serve, ServeConfig, ServeFaults, ServeSummary};
pub use spawn::{ChildHandle, LocalSpawner, SpawnSpec, Spawner, SshSpawner};
pub use wire::{decode_unit, encode_unit, encode_unit_vec, MAX_DEPTH};

/// Errors from the wire codec and the incremental frame decoder.
///
/// These all mean "the peer (or the medium) produced bytes we refuse to
/// interpret"; the connection carrying them is considered poisoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Tuple nesting beyond [`MAX_DEPTH`].
    TooDeep,
    /// A length does not fit the `u32` wire field, or a frame exceeds
    /// [`MAX_FRAME`].
    TooLong,
    /// Attempt to encode a [`manifold::Unit::ProcessRef`], which has no
    /// meaning outside its own environment.
    ProcessRef,
    /// Input ended (or a declared length overran the buffer) mid-value.
    Truncated,
    /// A frame contained the given number of bytes after a complete unit.
    Trailing(usize),
    /// A text field was not valid UTF-8.
    BadUtf8,
    /// Unknown type tag.
    BadTag(u8),
    /// A frame's payload did not match the CRC-32 in its header.
    BadCrc,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TooDeep => write!(f, "tuple nesting exceeds {MAX_DEPTH}"),
            WireError::TooLong => write!(f, "length exceeds wire limits"),
            WireError::ProcessRef => write!(f, "process references cannot cross the wire"),
            WireError::Truncated => write!(f, "input truncated mid-value"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after value"),
            WireError::BadUtf8 => write!(f, "text field is not valid utf-8"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            WireError::BadCrc => write!(f, "frame payload fails its crc-32 checksum"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// The machine's real hostname, as the paper's §6 trace reports it.
///
/// Reads `/proc/sys/kernel/hostname`, falling back to the `HOSTNAME`
/// environment variable, then to `"localhost"`.
pub fn real_hostname() -> String {
    if let Ok(h) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let h = h.trim();
        if !h.is_empty() {
            return h.to_string();
        }
    }
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.trim().is_empty() {
            return h.trim().to_string();
        }
    }
    "localhost".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_error_displays() {
        assert!(WireError::TooDeep.to_string().contains("64"));
        assert!(WireError::Trailing(3).to_string().contains('3'));
        assert!(WireError::BadTag(9).to_string().contains('9'));
    }

    #[test]
    fn hostname_is_nonempty() {
        assert!(!real_hostname().is_empty());
    }
}
