//! The session protocol between a coordinator and one remote task
//! instance.
//!
//! Every message is a [`Unit`] tuple whose first element is an integer
//! discriminant, encoded with [`crate::wire`] and shipped as one frame.
//! Reusing the unit codec keeps the protocol at exactly one binary format
//! and gives messages the same bit-exactness guarantees as payloads.
//!
//! Session shape:
//!
//! ```text
//! child                         coordinator
//!   | -- Hello{ver,inst,host,uid} -->|   (child connects, introduces itself)
//!   |<-- HelloAck{inst,pool} ------- |   (identity accepted, pool assigned)
//!   |<-- Job{seq,payload} ---------- |
//!   | -- Heartbeat ----------------->|   (periodic while computing)
//!   | -- Done{seq,payload} --------->|   (or Fail{seq,error})
//!   |            ...                 |
//!   |<-- Leave{inst,reason} -------- |   (optional: retire this worker...)
//!   | -- Leave{inst,reason} -------->|   (...acknowledged, then Trace+exit)
//!   |<-- Shutdown ------------------ |
//!   | -- Trace{text} --------------->|   (per-process trace, then close)
//! ```

use manifold::Unit;

use crate::WireError;

/// Version of this session protocol; peers with different versions refuse
/// the handshake. Version 2 added the CRC-32 field to the frame header,
/// which is incompatible with version-1 framing on the wire. Version 3
/// added the job id to `Job`/`Done`/`Fail`, so one long-lived session can
/// carry work for many engine jobs and replies are attributable to the job
/// that issued them. Version 4 made membership elastic: `HelloAck` gained
/// the worker's pool (shard) assignment and `Leave` lets either side
/// retire a worker cleanly mid-run.
pub const PROTOCOL_VERSION: i64 = 4;

const T_HELLO: i64 = 0;
const T_HELLO_ACK: i64 = 1;
const T_JOB: i64 = 2;
const T_DONE: i64 = 3;
const T_FAIL: i64 = 4;
const T_HEARTBEAT: i64 = 5;
const T_SHUTDOWN: i64 = 6;
const T_TRACE: i64 = 7;
const T_LEAVE: i64 = 8;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Child → coordinator, first message on a fresh connection.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: i64,
        /// The task-instance slot this child was spawned for.
        instance: u64,
        /// The machine's real hostname (for §6 trace labels).
        host: String,
        /// The child's task-instance uid in the trace encoding.
        task_uid: u64,
    },
    /// Coordinator → child: handshake accepted.
    HelloAck {
        /// Echo of the instance slot.
        instance: u64,
        /// The pool (shard) this worker is assigned to serve. Flat
        /// (single-master) fleets always assign pool 0.
        pool: u64,
    },
    /// Coordinator → child: execute this job.
    Job {
        /// Request sequence number; the matching `Done`/`Fail` echoes it.
        seq: u64,
        /// Engine job this unit of work belongs to. A session survives
        /// across jobs, so every unit on the wire is tagged; the matching
        /// `Done`/`Fail` echoes it. One-shot runs use job 0.
        job: u64,
        /// Application payload (e.g. an encoded `subsolve` request).
        payload: Unit,
    },
    /// Child → coordinator: job finished.
    Done {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Echo of the request's engine-job id.
        job: u64,
        /// Application result payload.
        payload: Unit,
    },
    /// Child → coordinator: job failed on the far side.
    Fail {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Echo of the request's engine-job id.
        job: u64,
        /// Human-readable failure description.
        error: String,
    },
    /// Child → coordinator: still alive (sent periodically while a job
    /// computes, so slow jobs are distinguishable from dead children).
    Heartbeat,
    /// Coordinator → child: finish up and exit cleanly.
    Shutdown,
    /// Child → coordinator: the child's accumulated trace text, sent in
    /// response to `Shutdown` just before closing.
    Trace {
        /// Concatenated §6 trace records from the child's environment.
        text: String,
    },
    /// Membership departure, either direction. Coordinator → child: retire
    /// this worker (the child acknowledges with its own `Leave`, then its
    /// `Trace`, and exits). Child → coordinator: the worker is departing
    /// voluntarily; the coordinator removes it from the rotation without
    /// respawning it.
    Leave {
        /// The departing instance slot.
        instance: u64,
        /// Why (e.g. `retired`, `drain`, `host shutdown`) — for traces.
        reason: String,
    },
}

impl Message {
    /// Lower to the unit representation.
    pub fn to_unit(&self) -> Unit {
        match self {
            Message::Hello {
                version,
                instance,
                host,
                task_uid,
            } => Unit::tuple(vec![
                Unit::int(T_HELLO),
                Unit::int(*version),
                Unit::int(*instance as i64),
                Unit::text(host),
                Unit::int(*task_uid as i64),
            ]),
            Message::HelloAck { instance, pool } => Unit::tuple(vec![
                Unit::int(T_HELLO_ACK),
                Unit::int(*instance as i64),
                Unit::int(*pool as i64),
            ]),
            Message::Job { seq, job, payload } => Unit::tuple(vec![
                Unit::int(T_JOB),
                Unit::int(*seq as i64),
                Unit::int(*job as i64),
                payload.clone(),
            ]),
            Message::Done { seq, job, payload } => Unit::tuple(vec![
                Unit::int(T_DONE),
                Unit::int(*seq as i64),
                Unit::int(*job as i64),
                payload.clone(),
            ]),
            Message::Fail { seq, job, error } => Unit::tuple(vec![
                Unit::int(T_FAIL),
                Unit::int(*seq as i64),
                Unit::int(*job as i64),
                Unit::text(error),
            ]),
            Message::Heartbeat => Unit::tuple(vec![Unit::int(T_HEARTBEAT)]),
            Message::Shutdown => Unit::tuple(vec![Unit::int(T_SHUTDOWN)]),
            Message::Trace { text } => Unit::tuple(vec![Unit::int(T_TRACE), Unit::text(text)]),
            Message::Leave { instance, reason } => Unit::tuple(vec![
                Unit::int(T_LEAVE),
                Unit::int(*instance as i64),
                Unit::text(reason),
            ]),
        }
    }

    /// Parse from the unit representation.
    pub fn from_unit(unit: &Unit) -> Result<Message, String> {
        let items = unit.as_tuple().ok_or("message is not a tuple")?;
        let tag = items
            .first()
            .and_then(Unit::as_int)
            .ok_or("message has no integer tag")?;
        let int = |i: usize| -> Result<i64, String> {
            items
                .get(i)
                .and_then(Unit::as_int)
                .ok_or_else(|| format!("field {i} is not an int"))
        };
        let text = |i: usize| -> Result<String, String> {
            items
                .get(i)
                .and_then(Unit::as_text)
                .map(str::to_string)
                .ok_or_else(|| format!("field {i} is not text"))
        };
        let payload = |i: usize| -> Result<Unit, String> {
            items
                .get(i)
                .cloned()
                .ok_or_else(|| format!("field {i} missing"))
        };
        let arity = |n: usize| -> Result<(), String> {
            if items.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "tag {tag}: expected arity {n}, got {}",
                    items.len()
                ))
            }
        };
        match tag {
            T_HELLO => {
                arity(5)?;
                Ok(Message::Hello {
                    version: int(1)?,
                    instance: int(2)? as u64,
                    host: text(3)?,
                    task_uid: int(4)? as u64,
                })
            }
            T_HELLO_ACK => {
                arity(3)?;
                Ok(Message::HelloAck {
                    instance: int(1)? as u64,
                    pool: int(2)? as u64,
                })
            }
            T_JOB => {
                arity(4)?;
                Ok(Message::Job {
                    seq: int(1)? as u64,
                    job: int(2)? as u64,
                    payload: payload(3)?,
                })
            }
            T_DONE => {
                arity(4)?;
                Ok(Message::Done {
                    seq: int(1)? as u64,
                    job: int(2)? as u64,
                    payload: payload(3)?,
                })
            }
            T_FAIL => {
                arity(4)?;
                Ok(Message::Fail {
                    seq: int(1)? as u64,
                    job: int(2)? as u64,
                    error: text(3)?,
                })
            }
            T_HEARTBEAT => {
                arity(1)?;
                Ok(Message::Heartbeat)
            }
            T_SHUTDOWN => {
                arity(1)?;
                Ok(Message::Shutdown)
            }
            T_TRACE => {
                arity(2)?;
                Ok(Message::Trace { text: text(1)? })
            }
            T_LEAVE => {
                arity(3)?;
                Ok(Message::Leave {
                    instance: int(1)? as u64,
                    reason: text(2)?,
                })
            }
            other => Err(format!("unknown message tag {other}")),
        }
    }

    /// Encode to wire bytes (one frame payload).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        crate::wire::encode_unit_vec(&self.to_unit())
    }

    /// Decode from one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Message, String> {
        let unit = crate::wire::decode_unit(bytes).map_err(|e| e.to_string())?;
        Message::from_unit(&unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_round_trip() {
        let msgs = vec![
            Message::Hello {
                version: PROTOCOL_VERSION,
                instance: 3,
                host: "node7.cluster".into(),
                task_uid: (4u64 + 1) << 18 | 2,
            },
            Message::HelloAck {
                instance: 3,
                pool: 1,
            },
            Message::Job {
                seq: 17,
                job: 4,
                payload: Unit::tuple(vec![Unit::int(5), Unit::reals(vec![1.0, -0.5])]),
            },
            Message::Done {
                seq: 17,
                job: 4,
                payload: Unit::reals(vec![0.25; 33]),
            },
            Message::Fail {
                seq: 18,
                job: 4,
                error: "subsolve diverged".into(),
            },
            Message::Heartbeat,
            Message::Shutdown,
            Message::Trace {
                text: "host task 1 2 3 4\n    t m f 1 -> Welcome\n".into(),
            },
            Message::Leave {
                instance: 3,
                reason: "retired".into(),
            },
        ];
        for m in msgs {
            let bytes = m.encode().unwrap();
            assert_eq!(Message::decode(&bytes).unwrap(), m, "round trip {m:?}");
        }
    }

    #[test]
    fn garbage_rejected_with_reason() {
        assert!(Message::decode(&[]).is_err());
        let not_tuple = crate::wire::encode_unit_vec(&Unit::int(2)).unwrap();
        assert!(Message::decode(&not_tuple).unwrap_err().contains("tuple"));
        let bad_tag = Message::from_unit(&Unit::tuple(vec![Unit::int(99)]));
        assert!(bad_tag.unwrap_err().contains("99"));
        let bad_arity = Message::from_unit(&Unit::tuple(vec![Unit::int(T_JOB)]));
        assert!(bad_arity.unwrap_err().contains("arity"));
    }
}
