//! Coordinator-side pool of remote task instances.
//!
//! [`RemoteWorkerPool::launch`] binds a listener (TCP loopback or a Unix
//! socket), spawns one child process per task instance through a
//! [`Spawner`] using the CONFIG host list for placement, and completes the
//! `Hello`/`HelloAck` handshake with each. It then implements
//! [`ConduitSource`]: proxy processes check out conduits round-robin and
//! drive jobs through them.
//!
//! Failure handling: any I/O error, EOF, or heartbeat silence beyond the
//! job timeout marks the instance dead (its child is killed, the conduit
//! errors out). The next checkout of a dead slot respawns it, under a
//! bounded per-slot budget with exponential backoff, so a crashing child
//! cannot put the pool into a spawn loop.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use manifold::config::HostName;
use manifold::remote::{ConduitSource, RemoteConduit, RemoteIdentity};
use manifold::{MfError, MfResult, Unit};
use parking_lot::{Mutex, RwLock};

use crate::conn::{Addr, Backoff, Conn};
use crate::msg::{Message, PROTOCOL_VERSION};
use crate::spawn::{ChildHandle, SpawnSpec, Spawner};

/// How the pool listens for its children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindMode {
    /// TCP on `127.0.0.1`, ephemeral port. Works for any child that can
    /// reach loopback; the shape a real cross-host deployment uses.
    Tcp,
    /// Unix-domain socket in the temp directory (same-host only, lower
    /// latency).
    Unix,
}

/// Pool parameters.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of task instances (child processes).
    pub instances: usize,
    /// Listener flavour.
    pub bind: BindMode,
    /// Worker executable for children.
    pub program: PathBuf,
    /// Extra command-line arguments for children.
    pub args: Vec<String>,
    /// CONFIG host labels, cycled over instances (`hosts[i % len]`).
    /// Empty means every instance is placed on `localhost`.
    pub hosts: Vec<HostName>,
    /// Environment variables added to every child.
    pub base_env: Vec<(String, String)>,
    /// Additional per-instance environment (indexed by slot; missing
    /// entries mean "nothing extra").
    pub per_instance_env: Vec<Vec<(String, String)>>,
    /// Time allowed for a child to connect and complete the handshake.
    pub handshake_timeout: Duration,
    /// Maximum silence (no `Done`/`Fail`/`Heartbeat`) during a job before
    /// the instance is declared dead.
    pub job_timeout: Duration,
    /// Respawns allowed per slot over the pool's lifetime.
    pub respawn_budget: usize,
    /// Number of shard pools the fleet is partitioned into. Each slot is
    /// assigned pool `index % shards` in its `HelloAck`; checkouts can
    /// prefer a pool with [`RemoteWorkerPool::checkout_pool`]. 1 (the
    /// default) is the flat fleet.
    pub shards: usize,
}

impl PoolConfig {
    /// Defaults for a localhost deployment of `program`.
    pub fn new(program: PathBuf) -> Self {
        Self {
            instances: 2,
            bind: BindMode::Tcp,
            program,
            args: Vec::new(),
            hosts: Vec::new(),
            base_env: Vec::new(),
            per_instance_env: Vec::new(),
            handshake_timeout: Duration::from_secs(20),
            job_timeout: Duration::from_secs(10),
            respawn_budget: 3,
            shards: 1,
        }
    }

    fn host_for(&self, slot: usize) -> HostName {
        if self.hosts.is_empty() {
            HostName::new("localhost")
        } else {
            self.hosts[slot % self.hosts.len()].clone()
        }
    }
}

enum Listener {
    Tcp(std::net::TcpListener),
    Unix(std::os::unix::net::UnixListener, PathBuf),
}

static UNIX_SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

impl Listener {
    fn bind(mode: BindMode) -> std::io::Result<(Listener, Addr)> {
        match mode {
            BindMode::Tcp => {
                let l = std::net::TcpListener::bind("127.0.0.1:0")?;
                let addr = Addr::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), addr))
            }
            BindMode::Unix => {
                let path = std::env::temp_dir().join(format!(
                    "mf-pool-{}-{}.sock",
                    std::process::id(),
                    UNIX_SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let _ = std::fs::remove_file(&path);
                let l = std::os::unix::net::UnixListener::bind(&path)?;
                let addr = Addr::Unix(path.clone());
                Ok((Listener::Unix(l, path), addr))
            }
        }
    }

    /// Accept one connection within `timeout` (polling, so a child that
    /// never connects cannot hang the pool).
    fn accept_within(&self, timeout: Duration) -> std::io::Result<Conn> {
        let deadline = Instant::now() + timeout;
        loop {
            let conn = match self {
                Listener::Tcp(l) => {
                    l.set_nonblocking(true)?;
                    match l.accept() {
                        Ok((s, _)) => {
                            s.set_nonblocking(false)?;
                            s.set_nodelay(true)?;
                            Some(Conn::Tcp(s))
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                        Err(e) => return Err(e),
                    }
                }
                Listener::Unix(l, _) => {
                    l.set_nonblocking(true)?;
                    match l.accept() {
                        Ok((s, _)) => {
                            s.set_nonblocking(false)?;
                            Some(Conn::Unix(s))
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                        Err(e) => return Err(e),
                    }
                }
            };
            if let Some(c) = conn {
                return Ok(c);
            }
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no child connected within handshake timeout",
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path.as_path());
        }
    }
}

struct SlotState {
    conn: Option<Conn>,
    identity: RemoteIdentity,
    child: Option<ChildHandle>,
    respawns_left: usize,
    backoff: Backoff,
    /// Departed cleanly (`Leave` exchanged). A departed slot is out of the
    /// rotation for good: it is never handed out and never respawned —
    /// that is what distinguishes an orderly retirement from a crash.
    departed: bool,
}

impl SlotState {
    fn mark_dead(&mut self) {
        self.conn = None;
        if let Some(child) = self.child.as_mut() {
            child.kill();
        }
        self.child = None;
    }
}

struct Slot {
    index: u64,
    /// Shard pool this slot serves (assigned in its `HelloAck`).
    pool: u64,
    job_timeout: Duration,
    state: Mutex<SlotState>,
    seq: AtomicU64,
}

struct PoolInner {
    cfg: PoolConfig,
    addr: Addr,
    // Spawn+accept+handshake is serialized through this lock so racing
    // respawns cannot cross-wire two children's connections.
    listener: Mutex<Listener>,
    spawner: Arc<dyn Spawner>,
    // Membership is elastic: joins append, so the vector is behind a
    // read-write lock. Retired slots stay in place (marked departed)
    // so indices remain stable.
    slots: RwLock<Vec<Arc<Slot>>>,
    next: AtomicUsize,
    // Monotonic instance-index source; never reused, so a joined worker
    // can never be confused with a departed one.
    next_index: AtomicU64,
    // Engine-job id stamped on every Job frame; replies must echo it.
    // One-shot pools leave it at 0 for their whole life.
    current_job: Arc<AtomicU64>,
}

/// A pool of remote task instances implementing [`ConduitSource`].
pub struct RemoteWorkerPool {
    inner: Arc<PoolInner>,
}

fn app_err(msg: impl std::fmt::Display) -> MfError {
    MfError::App(msg.to_string())
}

impl RemoteWorkerPool {
    /// Bind, spawn `cfg.instances` children through `spawner`, and
    /// complete every handshake. Fails (killing whatever was spawned) if
    /// any instance cannot be brought up.
    pub fn launch(cfg: PoolConfig, spawner: Arc<dyn Spawner>) -> MfResult<RemoteWorkerPool> {
        if cfg.instances == 0 {
            return Err(app_err("pool needs at least one instance"));
        }
        let (listener, addr) = Listener::bind(cfg.bind).map_err(app_err)?;
        let instances = cfg.instances as u64;
        let shards = cfg.shards.max(1) as u64;
        let inner = Arc::new(PoolInner {
            addr,
            listener: Mutex::new(listener),
            spawner,
            slots: RwLock::new(
                (0..instances)
                    .map(|index| new_slot(&cfg, index, index % shards))
                    .collect(),
            ),
            next: AtomicUsize::new(0),
            next_index: AtomicU64::new(instances),
            current_job: Arc::new(AtomicU64::new(0)),
            cfg,
        });
        let slots: Vec<Arc<Slot>> = inner.slots.read().clone();
        for slot in &slots {
            let mut st = slot.state.lock();
            bring_up(&inner, slot.index, slot.pool, &mut st)?;
        }
        Ok(RemoteWorkerPool { inner })
    }

    /// The address children connect back to (`tcp:…` / `unix:…`).
    pub fn addr(&self) -> Addr {
        self.inner.addr.clone()
    }

    /// Tag every subsequent `Job` frame with this engine-job id. The pool
    /// (children, connections, respawn budgets) survives across jobs; the
    /// tag is what keeps a stale reply from a previous job from being
    /// mistaken for this one's.
    pub fn set_current_job(&self, job: u64) {
        self.inner.current_job.store(job, Ordering::Relaxed);
    }

    /// The engine-job id currently stamped on outgoing work.
    pub fn current_job(&self) -> u64 {
        self.inner.current_job.load(Ordering::Relaxed)
    }

    /// Number of slots with a live connection right now.
    pub fn live_count(&self) -> usize {
        self.inner
            .slots
            .read()
            .iter()
            .filter(|s| s.state.lock().conn.is_some())
            .count()
    }

    /// Trace identities of all slots (index, identity).
    pub fn identities(&self) -> Vec<(u64, RemoteIdentity)> {
        self.inner
            .slots
            .read()
            .iter()
            .map(|s| (s.index, s.state.lock().identity.clone()))
            .collect()
    }

    /// Instance indices still in the membership (not departed), ascending.
    pub fn member_indices(&self) -> Vec<u64> {
        self.inner
            .slots
            .read()
            .iter()
            .filter(|s| !s.state.lock().departed)
            .map(|s| s.index)
            .collect()
    }

    /// Dynamic membership: admit one more worker into the fleet mid-run.
    /// The new slot gets a fresh (never reused) instance index, a pool
    /// assignment, and the full spawn + `Hello`/`HelloAck` handshake
    /// before this returns; on success it is immediately in the checkout
    /// rotation. `pool` of `None` balances by `index % shards`.
    pub fn add_instance(&self, pool: Option<u64>) -> MfResult<u64> {
        let index = self.inner.next_index.fetch_add(1, Ordering::Relaxed);
        let shards = self.inner.cfg.shards.max(1) as u64;
        let pool = pool.unwrap_or(index % shards).min(shards - 1);
        let slot = new_slot(&self.inner.cfg, index, pool);
        {
            let mut st = slot.state.lock();
            bring_up(&self.inner, index, pool, &mut st)?;
        }
        self.inner.slots.write().push(slot);
        Ok(index)
    }

    /// Dynamic membership: retire the worker in slot `index` with the
    /// bidirectional `Leave` exchange. Holding the slot's state lock for
    /// the whole exchange means no job can be in flight on the connection,
    /// so retirement is deterministic and loses nothing: the worker either
    /// finished its previous job (reply already collected) or never saw
    /// one. Returns the child's final trace block, if it sent one. The
    /// departed slot never respawns and is skipped by checkouts.
    pub fn retire_instance(&self, index: u64) -> MfResult<Option<String>> {
        let slot = self
            .inner
            .slots
            .read()
            .iter()
            .find(|s| s.index == index)
            .cloned()
            .ok_or_else(|| app_err(format!("no slot with instance index {index}")))?;
        let mut st = slot.state.lock();
        if st.departed {
            return Err(app_err(format!("instance {index} already departed")));
        }
        let mut trace = None;
        if let Some(mut conn) = st.conn.take() {
            let leave = Message::Leave {
                instance: index,
                reason: "retired".into(),
            };
            if conn.send_msg(&leave).is_ok() {
                let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
                // The child acknowledges with its own Leave, then ships its
                // trace and exits; tolerate heartbeats racing in between.
                loop {
                    match conn.recv_msg() {
                        Ok(Some(Message::Heartbeat)) => continue,
                        Ok(Some(Message::Leave { .. })) => continue,
                        Ok(Some(Message::Trace { text })) => {
                            trace = Some(text);
                            break;
                        }
                        Ok(Some(_)) | Ok(None) | Err(_) => break,
                    }
                }
            }
        }
        if let Some(child) = st.child.as_mut() {
            // A clean child has already exited; kill() just reaps it.
            child.kill();
        }
        st.child = None;
        st.departed = true;
        Ok(trace)
    }

    /// Orderly shutdown: ask every live child to finish, collect the
    /// trace block each sends back, and reap the processes. Returns
    /// `(slot, identity, trace)` per instance.
    pub fn shutdown(&self) -> Vec<(u64, RemoteIdentity, Option<String>)> {
        let mut out = Vec::new();
        let slots: Vec<Arc<Slot>> = self.inner.slots.read().clone();
        for slot in &slots {
            let mut st = slot.state.lock();
            let identity = st.identity.clone();
            let mut trace = None;
            if let Some(mut conn) = st.conn.take() {
                if conn.send_msg(&Message::Shutdown).is_ok() {
                    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
                    loop {
                        match conn.recv_msg() {
                            Ok(Some(Message::Heartbeat)) => continue,
                            Ok(Some(Message::Trace { text })) => {
                                trace = Some(text);
                                break;
                            }
                            Ok(Some(_)) | Ok(None) | Err(_) => break,
                        }
                    }
                }
            }
            if let Some(child) = st.child.as_mut() {
                // A clean child has already exited; kill() just reaps it.
                child.kill();
            }
            st.child = None;
            out.push((slot.index, identity, trace));
        }
        out
    }
}

/// Build a cold slot with the standard respawn budget and backoff.
fn new_slot(cfg: &PoolConfig, index: u64, pool: u64) -> Arc<Slot> {
    Arc::new(Slot {
        index,
        pool,
        job_timeout: cfg.job_timeout,
        state: Mutex::new(SlotState {
            conn: None,
            identity: RemoteIdentity {
                host: cfg.host_for(index as usize),
                task_uid: 0,
            },
            child: None,
            respawns_left: cfg.respawn_budget,
            backoff: Backoff::new(Duration::from_millis(50), Duration::from_secs(2)),
            departed: false,
        }),
        seq: AtomicU64::new(1),
    })
}

/// Spawn a child for `slot`, accept its connection and handshake.
/// The caller holds the slot's state lock; the listener lock is taken
/// here, serializing concurrent bring-ups.
fn bring_up(inner: &PoolInner, slot_index: u64, pool: u64, st: &mut SlotState) -> MfResult<()> {
    let cfg = &inner.cfg;
    let host = cfg.host_for(slot_index as usize);
    let mut env = cfg.base_env.clone();
    env.push(("MF_WORKER_ADDR".into(), inner.addr.to_string()));
    env.push(("MF_WORKER_INSTANCE".into(), slot_index.to_string()));
    if let Some(extra) = cfg.per_instance_env.get(slot_index as usize) {
        env.extend(extra.iter().cloned());
    }
    let spec = SpawnSpec {
        program: cfg.program.clone(),
        args: cfg.args.clone(),
        env,
        host,
    };

    let listener = inner.listener.lock();
    let child = inner
        .spawner
        .spawn(&spec)
        .map_err(|e| app_err(format!("spawn instance {slot_index}: {e}")))?;

    let deadline = Instant::now() + cfg.handshake_timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(app_err(format!(
                "instance {slot_index}: handshake timed out"
            )));
        }
        let mut conn = listener
            .accept_within(remaining)
            .map_err(|e| app_err(format!("instance {slot_index}: {e}")))?;
        conn.set_read_timeout(Some(cfg.handshake_timeout))
            .map_err(app_err)?;
        match conn.recv_msg() {
            Ok(Some(Message::Hello {
                version,
                instance,
                host,
                task_uid,
            })) => {
                if version != PROTOCOL_VERSION {
                    return Err(app_err(format!(
                        "instance {slot_index}: protocol version {version} != {PROTOCOL_VERSION}"
                    )));
                }
                if instance != slot_index {
                    // A late straggler from an earlier attempt; drop it
                    // and keep waiting for the child we just spawned.
                    continue;
                }
                conn.send_msg(&Message::HelloAck { instance, pool })
                    .map_err(app_err)?;
                st.conn = Some(conn);
                st.identity = RemoteIdentity {
                    host: HostName::new(host),
                    task_uid,
                };
                st.child = Some(child);
                return Ok(());
            }
            other => {
                return Err(app_err(format!(
                    "instance {slot_index}: bad handshake: {other:?}"
                )))
            }
        }
    }
}

impl RemoteWorkerPool {
    /// Check out a conduit, preferring workers assigned to `pool`. This is
    /// the sharded fleet's locality hint: a shard master asks for its own
    /// pool first and falls back to any live worker — worker-level work
    /// stealing — when its pool is busy, dead, or departed. `None` is the
    /// flat round-robin.
    pub fn checkout_pool(&self, pool: Option<u64>) -> MfResult<Arc<dyn RemoteConduit>> {
        let slots: Vec<Arc<Slot>> = self.inner.slots.read().clone();
        let n = slots.len();
        if n == 0 {
            return Err(app_err("pool has no slots"));
        }
        let start = self.inner.next.fetch_add(1, Ordering::Relaxed) % n;
        // Walk from the round-robin cursor; first pass prefers the hinted
        // pool, the second takes any live worker.
        let passes: &[Option<u64>] = match pool {
            Some(p) => &[Some(p), None],
            None => &[None],
        };
        for &want in passes {
            for i in 0..n {
                let slot = &slots[(start + i) % n];
                if want.is_some_and(|p| slot.pool != p) {
                    continue;
                }
                let mut st = slot.state.lock();
                if st.departed {
                    continue;
                }
                if st.conn.is_none() && st.respawns_left > 0 {
                    st.respawns_left -= 1;
                    let delay = st.backoff.step();
                    std::thread::sleep(delay);
                    if let Err(e) = bring_up(&self.inner, slot.index, slot.pool, &mut st) {
                        st.mark_dead();
                        // Keep scanning for another live slot.
                        let _ = e;
                    }
                }
                if st.conn.is_some() {
                    return Ok(Arc::new(SlotConduit {
                        slot: Arc::clone(slot),
                        job: Arc::clone(&self.inner.current_job),
                    }));
                }
            }
        }
        Err(app_err(
            "no live remote instances (respawn budget exhausted)",
        ))
    }
}

impl ConduitSource for RemoteWorkerPool {
    fn checkout(&self) -> MfResult<Arc<dyn RemoteConduit>> {
        self.checkout_pool(None)
    }
}

struct SlotConduit {
    slot: Arc<Slot>,
    job: Arc<AtomicU64>,
}

impl RemoteConduit for SlotConduit {
    fn execute(&self, job: Unit) -> MfResult<Unit> {
        let seq = self.slot.seq.fetch_add(1, Ordering::Relaxed);
        let engine_job = self.job.load(Ordering::Relaxed);
        let mut st = self.slot.state.lock();
        let index = self.slot.index;
        let conn = st
            .conn
            .as_mut()
            .ok_or_else(|| app_err(format!("instance {index} is dead")))?;
        if conn.set_read_timeout(Some(self.slot.job_timeout)).is_err() {
            st.mark_dead();
            return Err(app_err(format!("instance {index} lost (socket error)")));
        }
        if let Err(e) = conn.send_msg(&Message::Job {
            seq,
            job: engine_job,
            payload: job,
        }) {
            st.mark_dead();
            return Err(app_err(format!("instance {index} lost on send: {e}")));
        }
        loop {
            match conn.recv_msg() {
                // Heartbeats reset the liveness window: each `recv_msg`
                // gets the full job timeout of silence.
                Ok(Some(Message::Heartbeat)) => continue,
                // A reply counts only when it echoes both the sequence
                // number and the engine-job tag; anything else on a
                // long-lived connection is a stale frame from an earlier
                // job and poisons the slot below.
                Ok(Some(Message::Done {
                    seq: s,
                    job: j,
                    payload,
                })) if s == seq && j == engine_job => return Ok(payload),
                Ok(Some(Message::Fail {
                    seq: s,
                    job: j,
                    error,
                })) if s == seq && j == engine_job => {
                    // The far side survived; only the job failed.
                    return Err(MfError::App(error));
                }
                Ok(Some(other)) => {
                    st.mark_dead();
                    return Err(app_err(format!(
                        "instance {index} lost (protocol confusion: {other:?})"
                    )));
                }
                Ok(None) => {
                    st.mark_dead();
                    return Err(app_err(format!(
                        "instance {index} lost (connection closed)"
                    )));
                }
                Err(e) => {
                    st.mark_dead();
                    return Err(app_err(format!("instance {index} lost: {e}")));
                }
            }
        }
    }

    fn identity(&self) -> RemoteIdentity {
        self.slot.state.lock().identity.clone()
    }

    fn instance_id(&self) -> u64 {
        self.slot.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServeConfig};

    /// Test double: "children" are threads speaking the real protocol
    /// over real sockets. `die_after` makes each child drop its
    /// connection upon receiving its nth job, mid-flight.
    struct ThreadSpawner {
        die_on_job: Option<u64>,
        spawned: AtomicUsize,
    }

    impl ThreadSpawner {
        fn new(die_on_job: Option<u64>) -> Self {
            Self {
                die_on_job,
                spawned: AtomicUsize::new(0),
            }
        }
    }

    fn env_of(spec: &SpawnSpec, key: &str) -> String {
        spec.env
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    }

    impl Spawner for ThreadSpawner {
        fn spawn(&self, spec: &SpawnSpec) -> std::io::Result<ChildHandle> {
            self.spawned.fetch_add(1, Ordering::Relaxed);
            let addr = Addr::parse(&env_of(spec, "MF_WORKER_ADDR")).unwrap();
            let instance: u64 = env_of(spec, "MF_WORKER_INSTANCE").parse().unwrap();
            let die_on_job = self.die_on_job;
            std::thread::spawn(move || match die_on_job {
                None => {
                    let cfg = ServeConfig::new(
                        addr,
                        instance,
                        format!("thread-host-{instance}"),
                        1000 + instance,
                    );
                    let _ = serve(
                        cfg,
                        |u| Ok(Unit::tuple(vec![Unit::int(instance as i64), u])),
                        || Some(format!("trace-of-{instance}")),
                    );
                }
                Some(nth) => {
                    // Handshake by hand, then die mid-job n.
                    let mut conn = Conn::connect(&addr, Duration::from_secs(5)).unwrap();
                    conn.send_msg(&Message::Hello {
                        version: PROTOCOL_VERSION,
                        instance,
                        host: "dying-host".into(),
                        task_uid: 1000 + instance,
                    })
                    .unwrap();
                    let _ = conn.recv_msg().unwrap();
                    let mut jobs = 0u64;
                    loop {
                        match conn.recv_msg() {
                            Ok(Some(Message::Job { seq, job, payload })) => {
                                jobs += 1;
                                if jobs >= nth {
                                    return; // crash: connection drops mid-job
                                }
                                conn.send_msg(&Message::Done { seq, job, payload }).unwrap();
                            }
                            _ => return,
                        }
                    }
                }
            });
            Ok(ChildHandle::detached())
        }
    }

    fn quick_cfg(instances: usize, bind: BindMode) -> PoolConfig {
        let mut cfg = PoolConfig::new(PathBuf::from("unused-by-thread-spawner"));
        cfg.instances = instances;
        cfg.bind = bind;
        cfg.handshake_timeout = Duration::from_secs(10);
        cfg.job_timeout = Duration::from_secs(5);
        cfg.hosts = vec![HostName::new("cfg-host-a"), HostName::new("cfg-host-b")];
        cfg
    }

    #[test]
    fn pool_round_robins_live_instances_and_collects_traces() {
        let spawner = Arc::new(ThreadSpawner::new(None));
        let pool = RemoteWorkerPool::launch(quick_cfg(2, BindMode::Tcp), spawner.clone()).unwrap();
        assert_eq!(pool.live_count(), 2);

        let a = pool.checkout().unwrap();
        let b = pool.checkout().unwrap();
        assert_ne!(a.instance_id(), b.instance_id());
        // Identity comes from the child's Hello, not the CONFIG label.
        assert!(a.identity().host.as_str().starts_with("thread-host-"));
        assert_eq!(a.identity().task_uid, 1000 + a.instance_id());

        let out = a.execute(Unit::real(2.5)).unwrap();
        assert_eq!(
            out,
            Unit::tuple(vec![Unit::int(a.instance_id() as i64), Unit::real(2.5)])
        );

        let traces = pool.shutdown();
        assert_eq!(traces.len(), 2);
        for (slot, _id, trace) in traces {
            assert_eq!(trace.as_deref(), Some(format!("trace-of-{slot}").as_str()));
        }
        assert_eq!(spawner.spawned.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_works_over_unix_sockets() {
        let spawner = Arc::new(ThreadSpawner::new(None));
        let pool = RemoteWorkerPool::launch(quick_cfg(1, BindMode::Unix), spawner).unwrap();
        assert!(matches!(pool.addr(), Addr::Unix(_)));
        let c = pool.checkout().unwrap();
        let out = c.execute(Unit::text("via unix")).unwrap();
        assert_eq!(out, Unit::tuple(vec![Unit::int(0), Unit::text("via unix")]));
        pool.shutdown();
    }

    #[test]
    fn dead_instance_is_respawned_on_next_checkout() {
        // Every child dies when it receives its first job.
        let spawner = Arc::new(ThreadSpawner::new(Some(1)));
        let mut cfg = quick_cfg(1, BindMode::Tcp);
        cfg.respawn_budget = 2;
        let pool = RemoteWorkerPool::launch(cfg, spawner.clone()).unwrap();

        let c = pool.checkout().unwrap();
        let err = c.execute(Unit::int(1)).unwrap_err();
        assert!(err.to_string().contains("lost"), "got: {err}");
        assert_eq!(pool.live_count(), 0);

        // Next checkout burns one respawn and hands out a live conduit.
        let c2 = pool.checkout().unwrap();
        assert_eq!(pool.live_count(), 1);
        assert!(c2.execute(Unit::int(2)).is_err()); // dies again
        let _c3 = pool.checkout().unwrap(); // second (last) respawn
        assert_eq!(spawner.spawned.load(Ordering::Relaxed), 3);
        pool.shutdown();
    }

    /// "Children" that echo a *stale* engine-job tag on every reply, the
    /// way a delayed frame from a previous job would look.
    struct StaleTagSpawner;

    impl Spawner for StaleTagSpawner {
        fn spawn(&self, spec: &SpawnSpec) -> std::io::Result<ChildHandle> {
            let addr = Addr::parse(&env_of(spec, "MF_WORKER_ADDR")).unwrap();
            let instance: u64 = env_of(spec, "MF_WORKER_INSTANCE").parse().unwrap();
            std::thread::spawn(move || {
                let mut conn = Conn::connect(&addr, Duration::from_secs(5)).unwrap();
                conn.send_msg(&Message::Hello {
                    version: PROTOCOL_VERSION,
                    instance,
                    host: "stale-host".into(),
                    task_uid: 1,
                })
                .unwrap();
                let _ = conn.recv_msg().unwrap();
                while let Ok(Some(Message::Job { seq, job, payload })) = conn.recv_msg() {
                    conn.send_msg(&Message::Done {
                        seq,
                        job: job.wrapping_add(1),
                        payload,
                    })
                    .unwrap();
                }
            });
            Ok(ChildHandle::detached())
        }
    }

    #[test]
    fn job_tag_is_stamped_and_stale_replies_poison_the_slot() {
        let spawner = Arc::new(ThreadSpawner::new(None));
        let pool = RemoteWorkerPool::launch(quick_cfg(1, BindMode::Tcp), spawner).unwrap();
        assert_eq!(pool.current_job(), 0);
        pool.set_current_job(5);
        assert_eq!(pool.current_job(), 5);
        // The serve loop echoes whatever tag the Job carried, so a healthy
        // child still round-trips under a nonzero tag.
        let c = pool.checkout().unwrap();
        let out = c.execute(Unit::real(3.0)).unwrap();
        assert_eq!(out, Unit::tuple(vec![Unit::int(0), Unit::real(3.0)]));
        pool.shutdown();

        // A child that echoes the wrong tag is indistinguishable from a
        // stale frame of an earlier job: the conduit must not hand its
        // payload to the current job.
        let mut cfg = quick_cfg(1, BindMode::Tcp);
        cfg.respawn_budget = 0;
        let pool = RemoteWorkerPool::launch(cfg, Arc::new(StaleTagSpawner)).unwrap();
        pool.set_current_job(9);
        let c = pool.checkout().unwrap();
        let err = c.execute(Unit::int(1)).unwrap_err();
        assert!(err.to_string().contains("protocol confusion"), "got: {err}");
        assert_eq!(pool.live_count(), 0, "stale reply must poison the slot");
    }

    #[test]
    fn membership_join_and_retire_mid_run() {
        let spawner = Arc::new(ThreadSpawner::new(None));
        let mut cfg = quick_cfg(2, BindMode::Tcp);
        cfg.shards = 2;
        let pool = RemoteWorkerPool::launch(cfg, spawner.clone()).unwrap();
        assert_eq!(pool.live_count(), 2);

        // Join: a third worker handshakes and serves immediately.
        let idx = pool.add_instance(None).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(pool.live_count(), 3);

        // Retire instance 0: Leave exchange, trace shipped, out of the
        // rotation for good.
        let trace = pool.retire_instance(0).unwrap();
        assert_eq!(trace.as_deref(), Some("trace-of-0"));
        assert_eq!(pool.live_count(), 2);

        // Checkouts keep working and never hand out the departed slot —
        // and a departed slot is never respawned (zero lost jobs, zero
        // zombie spawns).
        for k in 0..6 {
            let c = pool.checkout().unwrap();
            assert_ne!(c.instance_id(), 0, "departed slot handed out");
            let out = c.execute(Unit::int(k)).unwrap();
            assert_eq!(
                out,
                Unit::tuple(vec![Unit::int(c.instance_id() as i64), Unit::int(k)])
            );
        }
        assert!(pool.retire_instance(0).is_err(), "double retirement");
        assert_eq!(spawner.spawned.load(Ordering::Relaxed), 3);
        pool.shutdown();
    }

    #[test]
    fn checkout_pool_prefers_the_hinted_shard_and_steals_on_famine() {
        let spawner = Arc::new(ThreadSpawner::new(None));
        let mut cfg = quick_cfg(4, BindMode::Tcp);
        cfg.shards = 2;
        let pool = RemoteWorkerPool::launch(cfg, spawner).unwrap();
        // Pool assignment is index % shards: slots 1 and 3 serve pool 1.
        for _ in 0..4 {
            let c = pool.checkout_pool(Some(1)).unwrap();
            assert_eq!(c.instance_id() % 2, 1, "hint not honoured");
        }
        // Retire pool 1 entirely: the hint falls back to any live worker
        // (worker-level stealing) instead of failing.
        pool.retire_instance(1).unwrap();
        pool.retire_instance(3).unwrap();
        let c = pool.checkout_pool(Some(1)).unwrap();
        assert_eq!(c.instance_id() % 2, 0);
        assert!(c.execute(Unit::int(7)).is_ok());
        pool.shutdown();
    }

    #[test]
    fn respawn_budget_exhaustion_surfaces_as_error() {
        let spawner = Arc::new(ThreadSpawner::new(Some(1)));
        let mut cfg = quick_cfg(1, BindMode::Tcp);
        cfg.respawn_budget = 1;
        let pool = RemoteWorkerPool::launch(cfg, spawner).unwrap();

        let c = pool.checkout().unwrap();
        assert!(c.execute(Unit::int(1)).is_err());
        let c2 = pool.checkout().unwrap(); // uses the only respawn
        assert!(c2.execute(Unit::int(2)).is_err());
        match pool.checkout() {
            Err(err) => assert!(err.to_string().contains("respawn budget"), "got: {err}"),
            Ok(_) => panic!("checkout should fail once the budget is gone"),
        }
    }
}
