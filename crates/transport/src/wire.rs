//! Binary wire encoding of [`Unit`] values.
//!
//! The shapes the renovation codec produces (tuples of ints, reals, texts
//! and `Reals` bulk vectors) must cross a task-instance boundary byte for
//! byte. The encoding is little-endian, self-describing, and *exact*:
//! reals travel as their IEEE-754 bit patterns, so a value decoded on the
//! far side compares `==` (including signed zeros; NaNs compare by bits).
//!
//! ```text
//! unit   := tag:u8 body
//! tag 0  Bytes  body := len:u32  raw bytes
//! tag 1  Int    body := i64
//! tag 2  Real   body := f64 bits (u64)
//! tag 3  Text   body := len:u32  utf-8 bytes
//! tag 4  Reals  body := count:u32  f64 bits ×count
//! tag 5  Tuple  body := count:u32  unit ×count
//! ```
//!
//! [`Unit::ProcessRef`] deliberately has no encoding: a process reference
//! is only meaningful inside one environment. Trying to ship one is a
//! programming error and fails loudly.
//!
//! Nesting is bounded by [`MAX_DEPTH`] on both encode and decode, so a
//! hostile or corrupt peer cannot drive the decoder into unbounded
//! recursion.

use std::sync::Arc;

use manifold::Unit;

use crate::WireError;

/// Maximum tuple nesting depth accepted on the wire.
pub const MAX_DEPTH: usize = 64;

const TAG_BYTES: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_REAL: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_REALS: u8 = 4;
const TAG_TUPLE: u8 = 5;

/// Encode a unit into `out`.
pub fn encode_unit(unit: &Unit, out: &mut Vec<u8>) -> Result<(), WireError> {
    encode_at(unit, out, 0)
}

/// Encode a unit into a fresh buffer.
pub fn encode_unit_vec(unit: &Unit) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(64);
    encode_unit(unit, &mut out)?;
    Ok(out)
}

fn encode_at(unit: &Unit, out: &mut Vec<u8>, depth: usize) -> Result<(), WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::TooDeep);
    }
    match unit {
        Unit::Bytes(b) => {
            out.push(TAG_BYTES);
            put_len(out, b.len())?;
            out.extend_from_slice(b.as_ref());
        }
        Unit::Int(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Unit::Real(v) => {
            out.push(TAG_REAL);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Unit::Text(s) => {
            out.push(TAG_TEXT);
            put_len(out, s.len())?;
            out.extend_from_slice(s.as_bytes());
        }
        Unit::Reals(v) => {
            out.push(TAG_REALS);
            put_len(out, v.len())?;
            out.reserve(v.len() * 8);
            for x in v.iter() {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        Unit::Tuple(items) => {
            out.push(TAG_TUPLE);
            put_len(out, items.len())?;
            for item in items.iter() {
                encode_at(item, out, depth + 1)?;
            }
        }
        Unit::ProcessRef(_) => return Err(WireError::ProcessRef),
    }
    Ok(())
}

fn put_len(out: &mut Vec<u8>, len: usize) -> Result<(), WireError> {
    let len: u32 = len.try_into().map_err(|_| WireError::TooLong)?;
    out.extend_from_slice(&len.to_le_bytes());
    Ok(())
}

/// Decode one unit from `buf`, which must contain exactly one encoded
/// unit (the framing layer guarantees this).
pub fn decode_unit(buf: &[u8]) -> Result<Unit, WireError> {
    let mut cur = Cursor { buf, pos: 0 };
    let unit = decode_at(&mut cur, 0)?;
    if cur.pos != buf.len() {
        return Err(WireError::Trailing(buf.len() - cur.pos));
    }
    Ok(unit)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_at(cur: &mut Cursor<'_>, depth: usize) -> Result<Unit, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::TooDeep);
    }
    match cur.u8()? {
        TAG_BYTES => {
            let len = cur.u32()? as usize;
            Ok(Unit::bytes(cur.take(len)?.to_vec()))
        }
        TAG_INT => Ok(Unit::int(cur.u64()? as i64)),
        TAG_REAL => Ok(Unit::real(f64::from_bits(cur.u64()?))),
        TAG_TEXT => {
            let len = cur.u32()? as usize;
            let s = std::str::from_utf8(cur.take(len)?).map_err(|_| WireError::BadUtf8)?;
            Ok(Unit::text(s))
        }
        TAG_REALS => {
            let count = cur.u32()? as usize;
            let bytes = cur.take(count.checked_mul(8).ok_or(WireError::Truncated)?)?;
            let mut v = Vec::with_capacity(count);
            for chunk in bytes.chunks_exact(8) {
                v.push(f64::from_bits(u64::from_le_bytes(
                    chunk.try_into().unwrap(),
                )));
            }
            Ok(Unit::Reals(Arc::new(v)))
        }
        TAG_TUPLE => {
            let count = cur.u32()? as usize;
            // Each element costs at least one tag byte: reject counts the
            // remaining input cannot possibly satisfy before allocating.
            if count > cur.buf.len() - cur.pos {
                return Err(WireError::Truncated);
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_at(cur, depth + 1)?);
            }
            Ok(Unit::tuple(items))
        }
        tag => Err(WireError::BadTag(tag)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(u: &Unit) -> Unit {
        decode_unit(&encode_unit_vec(u).unwrap()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for u in [
            Unit::int(0),
            Unit::int(-1),
            Unit::int(i64::MAX),
            Unit::int(i64::MIN),
            Unit::real(0.0),
            Unit::real(-0.0),
            Unit::real(f64::INFINITY),
            Unit::real(1.0e-300),
            Unit::text(""),
            Unit::text("héllo wörld"),
            Unit::bytes(vec![]),
            Unit::bytes(vec![0u8, 255, 7]),
            Unit::reals(vec![]),
            Unit::reals(vec![1.5, -2.5, f64::MIN_POSITIVE]),
            Unit::tuple(vec![]),
        ] {
            assert_eq!(round_trip(&u), u);
        }
    }

    #[test]
    fn negative_zero_and_nan_bits_survive() {
        let u = round_trip(&Unit::real(-0.0));
        assert_eq!(u.as_real().unwrap().to_bits(), (-0.0f64).to_bits());
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        match round_trip(&Unit::real(nan)) {
            Unit::Real(v) => assert_eq!(v.to_bits(), nan.to_bits()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn nested_tuples_round_trip() {
        let u = Unit::tuple(vec![
            Unit::int(3),
            Unit::tuple(vec![Unit::real(2.5), Unit::text("x")]),
            Unit::reals(vec![1.0; 100]),
            Unit::tuple(vec![]),
        ]);
        assert_eq!(round_trip(&u), u);
    }

    #[test]
    fn max_depth_accepted_beyond_rejected() {
        let mut u = Unit::int(1);
        for _ in 0..MAX_DEPTH {
            u = Unit::tuple(vec![u]);
        }
        assert_eq!(round_trip(&u), u);
        let too_deep = Unit::tuple(vec![u]);
        assert_eq!(encode_unit_vec(&too_deep), Err(WireError::TooDeep));
    }

    #[test]
    fn process_ref_refused() {
        let env = manifold::Environment::new();
        let p = env.create_process("P", |_ctx: manifold::ProcessCtx| Ok(()));
        assert_eq!(
            encode_unit_vec(&Unit::ProcessRef(p)),
            Err(WireError::ProcessRef)
        );
        env.shutdown();
    }

    #[test]
    fn corrupt_input_rejected_not_panicking() {
        assert!(decode_unit(&[]).is_err());
        assert!(decode_unit(&[9]).is_err()); // bad tag
        assert!(decode_unit(&[1, 0, 0]).is_err()); // truncated int
                                                   // Tuple claiming 4 billion elements: refused before allocation.
        assert!(decode_unit(&[5, 255, 255, 255, 255]).is_err());
        // Trailing garbage after a valid unit.
        let mut buf = encode_unit_vec(&Unit::int(1)).unwrap();
        buf.push(0);
        assert_eq!(decode_unit(&buf), Err(WireError::Trailing(1)));
    }
}
