//! Spawning child task-instance processes.
//!
//! The CONFIG stage maps task instances to hosts; the launcher turns each
//! mapping into a [`SpawnSpec`] and hands it to a [`Spawner`]. Two
//! implementations exist:
//!
//! * [`LocalSpawner`] — `fork/exec` on this machine (the localhost
//!   multi-process deployment, fully supported);
//! * [`SshSpawner`] — remote execution over ssh. The command-line
//!   construction is real and tested; actually running it is stubbed out
//!   until a cluster with key-based ssh is available, so `spawn` returns
//!   `Unsupported`.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use manifold::config::HostName;

/// Everything needed to start one child task-instance process.
#[derive(Debug, Clone)]
pub struct SpawnSpec {
    /// Executable to run (the worker binary).
    pub program: PathBuf,
    /// Command-line arguments.
    pub args: Vec<String>,
    /// Environment variables (`MF_WORKER_ADDR`, `MF_WORKER_INSTANCE`, …).
    pub env: Vec<(String, String)>,
    /// The CONFIG host this instance is placed on.
    pub host: HostName,
}

/// A live child process handle; kills the child when dropped.
#[derive(Debug)]
pub struct ChildHandle {
    child: Option<Child>,
}

impl ChildHandle {
    /// Wrap an already-spawned child.
    pub fn new(child: Child) -> Self {
        Self { child: Some(child) }
    }

    /// A handle owning no process — for spawners whose children are not
    /// OS processes of ours (in-thread test doubles, remote ssh children
    /// owned by the far side's sshd).
    pub fn detached() -> Self {
        Self { child: None }
    }

    /// OS pid, if the child is still owned.
    pub fn pid(&self) -> Option<u32> {
        self.child.as_ref().map(Child::id)
    }

    /// Forcibly terminate the child (idempotent).
    pub fn kill(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
            self.child = None;
        }
    }

    /// Wait for the child to exit; returns its exit code if available.
    pub fn wait(&mut self) -> Option<i32> {
        let child = self.child.as_mut()?;
        let status = child.wait().ok()?;
        self.child = None;
        status.code()
    }

    /// True if the child has exited (non-blocking).
    pub fn is_dead(&mut self) -> bool {
        match self.child.as_mut() {
            None => true,
            Some(c) => matches!(c.try_wait(), Ok(Some(_))),
        }
    }
}

impl Drop for ChildHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Starts task-instance processes on the host a spec names.
pub trait Spawner: Send + Sync {
    /// Launch the process described by `spec`.
    fn spawn(&self, spec: &SpawnSpec) -> std::io::Result<ChildHandle>;
}

/// Runs children on this machine, ignoring the host label beyond trace
/// bookkeeping (the paper's single-workstation multi-process setup).
#[derive(Debug, Default, Clone)]
pub struct LocalSpawner;

impl Spawner for LocalSpawner {
    fn spawn(&self, spec: &SpawnSpec) -> std::io::Result<ChildHandle> {
        let mut cmd = Command::new(&spec.program);
        cmd.args(&spec.args)
            .stdin(Stdio::null())
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit());
        for (k, v) in &spec.env {
            cmd.env(k, v);
        }
        Ok(ChildHandle::new(cmd.spawn()?))
    }
}

/// Would run children on remote hosts via `ssh host env K=V … program`.
///
/// Building the command line is implemented (and unit-tested) so the
/// placement path is exercised; execution itself is not wired up — there
/// is no cluster in this environment — so `spawn` reports `Unsupported`.
#[derive(Debug, Default, Clone)]
pub struct SshSpawner {
    /// Optional `user@` prefix for the ssh target.
    pub user: Option<String>,
}

impl SshSpawner {
    /// The argv that would be executed for `spec`, starting with `ssh`.
    pub fn command_line(&self, spec: &SpawnSpec) -> Vec<String> {
        let target = match &self.user {
            Some(u) => format!("{u}@{}", spec.host.as_str()),
            None => spec.host.as_str().to_string(),
        };
        let mut argv = vec![
            "ssh".to_string(),
            "-o".into(),
            "BatchMode=yes".into(),
            target,
        ];
        argv.push("env".into());
        for (k, v) in &spec.env {
            argv.push(format!("{k}={v}"));
        }
        argv.push(spec.program.display().to_string());
        argv.extend(spec.args.iter().cloned());
        argv
    }
}

impl Spawner for SshSpawner {
    fn spawn(&self, spec: &SpawnSpec) -> std::io::Result<ChildHandle> {
        let argv = self.command_line(spec);
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            format!(
                "ssh spawning not available in this environment (would run: {})",
                argv.join(" ")
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SpawnSpec {
        SpawnSpec {
            program: PathBuf::from("/opt/bin/subsolve_worker"),
            args: vec!["--quiet".into()],
            env: vec![
                ("MF_WORKER_ADDR".into(), "tcp:10.0.0.1:4242".into()),
                ("MF_WORKER_INSTANCE".into(), "2".into()),
            ],
            host: HostName::new("node3.cluster"),
        }
    }

    #[test]
    fn local_spawner_runs_a_real_child() {
        let spawner = LocalSpawner;
        let mut handle = spawner
            .spawn(&SpawnSpec {
                program: PathBuf::from("/bin/sh"),
                args: vec!["-c".into(), "exit 7".into()],
                env: vec![],
                host: HostName::new("localhost"),
            })
            .unwrap();
        assert_eq!(handle.wait(), Some(7));
        assert!(handle.is_dead());
    }

    #[test]
    fn kill_is_idempotent() {
        let spawner = LocalSpawner;
        let mut handle = spawner
            .spawn(&SpawnSpec {
                program: PathBuf::from("/bin/sh"),
                args: vec!["-c".into(), "sleep 30".into()],
                env: vec![],
                host: HostName::new("localhost"),
            })
            .unwrap();
        assert!(!handle.is_dead());
        handle.kill();
        handle.kill();
        assert!(handle.is_dead());
    }

    #[test]
    fn ssh_command_line_places_on_named_host() {
        let plain = SshSpawner::default();
        let argv = plain.command_line(&spec());
        assert_eq!(argv[0], "ssh");
        assert!(argv.contains(&"node3.cluster".to_string()));
        assert!(argv.contains(&"MF_WORKER_ADDR=tcp:10.0.0.1:4242".to_string()));
        assert!(argv.contains(&"/opt/bin/subsolve_worker".to_string()));
        assert_eq!(argv.last().unwrap(), "--quiet");

        let with_user = SshSpawner {
            user: Some("grid".into()),
        };
        assert!(with_user
            .command_line(&spec())
            .contains(&"grid@node3.cluster".to_string()));
    }

    #[test]
    fn ssh_spawn_is_a_stub() {
        let err = SshSpawner::default().spawn(&spec()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
        assert!(err.to_string().contains("ssh"));
    }
}
