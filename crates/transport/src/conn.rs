//! One coordinator↔child connection: TCP or Unix-domain socket, with
//! timeouts, duplication for concurrent read/write threads, and bounded
//! connect-with-backoff.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use crate::frame::{read_frame, write_frame};
use crate::msg::Message;

/// A connectable endpoint address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// `host:port` TCP endpoint.
    Tcp(String),
    /// Filesystem path of a Unix-domain socket.
    Unix(PathBuf),
}

impl Addr {
    /// Parse the `tcp:HOST:PORT` / `unix:PATH` notation the launcher puts
    /// in the child's `MF_WORKER_ADDR` environment variable.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest.is_empty() {
                return Err("empty tcp address".into());
            }
            Ok(Addr::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix:") {
            if rest.is_empty() {
                return Err("empty unix socket path".into());
            }
            Ok(Addr::Unix(PathBuf::from(rest)))
        } else {
            Err(format!("address must start with tcp: or unix: — got {s:?}"))
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Tcp(hp) => write!(f, "tcp:{hp}"),
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// An established connection, either flavour, speaking framed [`Message`]s.
pub enum Conn {
    /// TCP stream (cross-host capable).
    Tcp(TcpStream),
    /// Unix-domain stream (same-host, lower latency).
    Unix(UnixStream),
}

impl Conn {
    /// Connect once, with a connect timeout for TCP (Unix-domain connects
    /// are effectively immediate).
    pub fn connect(addr: &Addr, timeout: Duration) -> std::io::Result<Conn> {
        match addr {
            Addr::Tcp(hp) => {
                use std::net::ToSocketAddrs;
                let mut last = std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("no socket addrs for {hp}"),
                );
                for sa in hp.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sa, timeout) {
                        Ok(s) => {
                            s.set_nodelay(true)?;
                            return Ok(Conn::Tcp(s));
                        }
                        Err(e) => last = e,
                    }
                }
                Err(last)
            }
            Addr::Unix(p) => Ok(Conn::Unix(UnixStream::connect(p)?)),
        }
    }

    /// Read timeout for subsequent `recv_msg` calls (`None` blocks forever).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Write timeout for subsequent `send_msg` calls.
    pub fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(t),
            Conn::Unix(s) => s.set_write_timeout(t),
        }
    }

    /// Duplicate the handle (shared socket), so one thread can write
    /// heartbeats while another blocks in `recv_msg`.
    pub fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    /// Shut down both directions, unblocking any thread inside a read.
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Send one message as one frame.
    pub fn send_msg(&mut self, msg: &Message) -> std::io::Result<()> {
        let payload = msg.encode().map_err(std::io::Error::from)?;
        write_frame(self, &payload)
    }

    /// Receive one message; `Ok(None)` means the peer closed cleanly.
    pub fn recv_msg(&mut self) -> std::io::Result<Option<Message>> {
        match read_frame(self)? {
            None => Ok(None),
            Some(payload) => Message::decode(&payload)
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Exponential backoff schedule with a cap, for reconnect/respawn loops.
#[derive(Debug, Clone)]
pub struct Backoff {
    next: Duration,
    cap: Duration,
}

impl Backoff {
    /// Start at `initial`, double each step, never exceed `cap`.
    pub fn new(initial: Duration, cap: Duration) -> Self {
        Self { next: initial, cap }
    }

    /// The delay to sleep before the next attempt (advances the schedule).
    pub fn step(&mut self) -> Duration {
        let d = self.next;
        self.next = (self.next * 2).min(self.cap);
        d
    }
}

/// Connect with a bounded number of attempts, sleeping an exponentially
/// growing delay between failures. Children use this at startup: the
/// coordinator's listener may not be accepting yet when they exec.
pub fn connect_with_backoff(
    addr: &Addr,
    attempts: usize,
    initial_delay: Duration,
    connect_timeout: Duration,
) -> std::io::Result<Conn> {
    let mut backoff = Backoff::new(initial_delay, Duration::from_secs(2));
    let mut last = std::io::Error::other("no attempts made");
    for attempt in 0..attempts.max(1) {
        match Conn::connect(addr, connect_timeout) {
            Ok(c) => return Ok(c),
            Err(e) => last = e,
        }
        if attempt + 1 < attempts {
            std::thread::sleep(backoff.step());
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manifold::Unit;

    #[test]
    fn addr_parse_round_trips() {
        let t = Addr::parse("tcp:127.0.0.1:9000").unwrap();
        assert_eq!(t, Addr::Tcp("127.0.0.1:9000".into()));
        assert_eq!(t.to_string(), "tcp:127.0.0.1:9000");
        let u = Addr::parse("unix:/tmp/x.sock").unwrap();
        assert_eq!(u, Addr::Unix(PathBuf::from("/tmp/x.sock")));
        assert_eq!(u.to_string(), "unix:/tmp/x.sock");
        assert!(Addr::parse("9000").is_err());
        assert!(Addr::parse("tcp:").is_err());
        assert!(Addr::parse("unix:").is_err());
    }

    #[test]
    fn tcp_message_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = Addr::Tcp(listener.local_addr().unwrap().to_string());
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut conn = Conn::Tcp(s);
            let m = conn.recv_msg().unwrap().unwrap();
            conn.send_msg(&m).unwrap(); // echo
            assert!(conn.recv_msg().unwrap().is_none()); // clean EOF
        });
        let mut c = Conn::connect(&addr, Duration::from_secs(5)).unwrap();
        let msg = Message::Job {
            seq: 1,
            job: 0,
            payload: Unit::tuple(vec![Unit::real(0.5), Unit::text("x")]),
        };
        c.send_msg(&msg).unwrap();
        assert_eq!(c.recv_msg().unwrap().unwrap(), msg);
        drop(c);
        server.join().unwrap();
    }

    #[test]
    fn unix_message_round_trip() {
        let dir = std::env::temp_dir().join(format!("tconn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("echo.sock");
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut conn = Conn::Unix(s);
            let m = conn.recv_msg().unwrap().unwrap();
            conn.send_msg(&m).unwrap();
        });
        let mut c = Conn::connect(&Addr::Unix(path.clone()), Duration::from_secs(5)).unwrap();
        c.send_msg(&Message::Heartbeat).unwrap();
        assert_eq!(c.recv_msg().unwrap().unwrap(), Message::Heartbeat);
        server.join().unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn backoff_doubles_to_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(35));
        assert_eq!(b.step(), Duration::from_millis(10));
        assert_eq!(b.step(), Duration::from_millis(20));
        assert_eq!(b.step(), Duration::from_millis(35));
        assert_eq!(b.step(), Duration::from_millis(35));
    }

    #[test]
    fn connect_with_backoff_reports_last_error() {
        // Port 1 on localhost: connection refused, quickly.
        let addr = Addr::Tcp("127.0.0.1:1".into());
        let err = connect_with_backoff(
            &addr,
            2,
            Duration::from_millis(1),
            Duration::from_millis(200),
        );
        assert!(err.is_err());
    }
}
