//! Length-prefixed framing over byte streams.
//!
//! A frame is `len:u32le` followed by `len` payload bytes. The payload is
//! one wire-encoded unit (see [`crate::wire`]). Frames are capped at
//! [`MAX_FRAME`] so a corrupt length prefix cannot trigger a giant
//! allocation.
//!
//! Two consumption styles:
//!
//! * [`read_frame`] — blocking, over any [`Read`] (sockets);
//! * [`FrameDecoder`] — incremental: push byte chunks of *any* size (as a
//!   socket delivers them) and pop complete frames. This is the form the
//!   split-at-arbitrary-boundaries property tests exercise.

use std::collections::VecDeque;
use std::io::{Read, Write};

use crate::WireError;

/// Largest accepted frame payload (64 MiB — a level-15 grid is ~1 MB, so
/// this leaves two orders of magnitude of headroom).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Write one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len: u32 = payload
        .len()
        .try_into()
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too long"))?;
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame too long",
        ));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one complete frame, blocking. An EOF before the first header byte
/// returns `Ok(None)` (clean close); an EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match r.read(&mut header)? {
        0 => return Ok(None),
        mut n => {
            while n < 4 {
                let m = r.read(&mut header[n..])?;
                if m == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside frame header",
                    ));
                }
                n += m;
            }
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental frame reassembler: bytes in (any chunking), frames out.
#[derive(Default)]
pub struct FrameDecoder {
    buf: VecDeque<u8>,
}

impl FrameDecoder {
    /// Fresh, empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed a chunk of received bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend(chunk);
    }

    /// Pop the next complete frame, if one has fully arrived.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let header: Vec<u8> = self.buf.iter().take(4).copied().collect();
        let len = u32::from_le_bytes(header.try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(WireError::TooLong);
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.drain(..4);
        Ok(Some(self.buf.drain(..len).collect()))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Frame a payload into a fresh buffer (header + payload), for tests and
/// for batching multiple frames into one socket write.
pub fn frame_vec(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 1000]);
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_mid_frame_is_error() {
        let mut full = Vec::new();
        write_frame(&mut full, b"abcdef").unwrap();
        for cut in 1..full.len() {
            let mut r = std::io::Cursor::new(&full[..cut]);
            assert!(read_frame(&mut r).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn decoder_handles_byte_at_a_time() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"one").unwrap();
        write_frame(&mut stream, b"two2").unwrap();
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for b in stream {
            dec.push(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames, vec![b"one".to_vec(), b"two2".to_vec()]);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn decoder_rejects_oversized_header() {
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(WireError::TooLong));
    }

    #[test]
    fn oversized_write_refused() {
        let mut sink = Vec::new();
        let big = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut sink, &big).is_err());
    }
}
