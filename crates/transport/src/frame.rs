//! Length-prefixed, checksummed framing over byte streams.
//!
//! A frame is `len:u32le  crc:u32le  payload`, where `crc` is the CRC-32
//! (IEEE, the Ethernet/zlib polynomial) of the payload bytes. The payload
//! is one wire-encoded unit (see [`crate::wire`]). Frames are capped at
//! [`MAX_FRAME`] so a corrupt length prefix cannot trigger a giant
//! allocation, and a frame whose payload fails its CRC is rejected as
//! [`WireError::BadCrc`] — the connection carrying it is poisoned, which
//! feeds the coordinator's normal lost-instance/reconnect path instead of
//! letting a flipped bit masquerade as data.
//!
//! Two consumption styles:
//!
//! * [`read_frame`] — blocking, over any [`Read`] (sockets);
//! * [`FrameDecoder`] — incremental: push byte chunks of *any* size (as a
//!   socket delivers them) and pop complete frames. This is the form the
//!   split-at-arbitrary-boundaries property tests exercise.

use std::collections::VecDeque;
use std::io::{Read, Write};

use crate::WireError;

/// Largest accepted frame payload (64 MiB — a level-15 grid is ~1 MB, so
/// this leaves two orders of magnitude of headroom).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Frame header bytes: length prefix + CRC-32 of the payload.
pub const HEADER_LEN: usize = 8;

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `data` —
/// the checksum guarding every frame payload.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn header_for(payload: &[u8]) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    h[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    h
}

/// Write one frame (length + CRC header, then the payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME || u32::try_from(payload.len()).is_err() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame too long",
        ));
    }
    w.write_all(&header_for(payload))?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one complete frame, blocking, verifying its CRC. An EOF before
/// the first header byte returns `Ok(None)` (clean close); an EOF
/// mid-frame is an error, and a payload failing its checksum is
/// [`WireError::BadCrc`] (as `InvalidData`).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; HEADER_LEN];
    match r.read(&mut header)? {
        0 => return Ok(None),
        mut n => {
            while n < HEADER_LEN {
                let m = r.read(&mut header[n..])?;
                if m == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside frame header",
                    ));
                }
                n += m;
            }
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let want_crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != want_crc {
        return Err(WireError::BadCrc.into());
    }
    Ok(Some(payload))
}

/// Incremental frame reassembler: bytes in (any chunking), frames out.
#[derive(Default)]
pub struct FrameDecoder {
    buf: VecDeque<u8>,
}

impl FrameDecoder {
    /// Fresh, empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed a chunk of received bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend(chunk);
    }

    /// Pop the next complete frame, if one has fully arrived and its
    /// payload passes the CRC check.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let header: Vec<u8> = self.buf.iter().take(HEADER_LEN).copied().collect();
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_FRAME {
            return Err(WireError::TooLong);
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        self.buf.drain(..HEADER_LEN);
        let payload: Vec<u8> = self.buf.drain(..len).collect();
        if crc32(&payload) != want_crc {
            return Err(WireError::BadCrc);
        }
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Frame a payload into a fresh buffer (header + payload), for tests and
/// for batching multiple frames into one socket write.
pub fn frame_vec(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + HEADER_LEN);
    out.extend_from_slice(&header_for(payload));
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn blocking_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 1000]);
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_mid_frame_is_error() {
        let mut full = Vec::new();
        write_frame(&mut full, b"abcdef").unwrap();
        for cut in 1..full.len() {
            let mut r = std::io::Cursor::new(&full[..cut]);
            assert!(read_frame(&mut r).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn any_flipped_payload_bit_is_rejected() {
        let full = frame_vec(b"abcdef");
        for byte in HEADER_LEN..full.len() {
            for bit in 0..8 {
                let mut corrupt = full.clone();
                corrupt[byte] ^= 1 << bit;
                let mut r = std::io::Cursor::new(&corrupt);
                let err = read_frame(&mut r).unwrap_err();
                assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
                assert!(err.to_string().contains("checksum"), "got: {err}");
            }
        }
    }

    #[test]
    fn flipped_crc_bits_are_rejected() {
        let full = frame_vec(b"abcdef");
        for byte in 4..HEADER_LEN {
            let mut corrupt = full.clone();
            corrupt[byte] ^= 0x10;
            let mut dec = FrameDecoder::new();
            dec.push(&corrupt);
            assert_eq!(dec.next_frame(), Err(WireError::BadCrc));
        }
    }

    #[test]
    fn decoder_handles_byte_at_a_time() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"one").unwrap();
        write_frame(&mut stream, b"two2").unwrap();
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for b in stream {
            dec.push(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames, vec![b"one".to_vec(), b"two2".to_vec()]);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn decoder_rejects_oversized_header() {
        let mut dec = FrameDecoder::new();
        dec.push(&u32::MAX.to_le_bytes());
        dec.push(&[0u8; 4]);
        assert_eq!(dec.next_frame(), Err(WireError::TooLong));
    }

    #[test]
    fn oversized_write_refused() {
        let mut sink = Vec::new();
        let big = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut sink, &big).is_err());
    }
}
