//! Property-based tests of the cluster simulator.

use cluster::des::EventQueue;
use cluster::hosts::paper_cluster;
use cluster::noise::Perturbation;
use cluster::sim::DistributedSim;
use cluster::timeline::StepTrace;
use cluster::workload::{Job, Workload};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order with FIFO ties.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0.0..100.0f64, 0..50)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(*t, i);
        }
        let mut last_t = f64::MIN;
        let mut seen = Vec::new();
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last_t);
            last_t = t;
            seen.push(i);
        }
        prop_assert_eq!(seen.len(), times.len());
    }

    /// Step traces built from intervals: the value is the number of
    /// intervals covering the query point; the average is within [0, n].
    #[test]
    fn step_trace_counts_cover(
        intervals in prop::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..20),
        query in 0.0..100.0f64
    ) {
        let mut trace = StepTrace::new();
        let mut norm: Vec<(f64, f64)> = Vec::new();
        for (a, b) in &intervals {
            let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
            trace.interval(lo, hi);
            norm.push((lo, hi));
        }
        let want = norm
            .iter()
            .filter(|(lo, hi)| *lo <= query && query < *hi)
            .count() as i64;
        prop_assert_eq!(trace.value_at(query), want);
        let avg = trace.weighted_average(0.0, 100.0);
        prop_assert!(avg >= 0.0 && avg <= intervals.len() as f64);
        prop_assert!(trace.peak() as usize <= intervals.len());
    }

    /// Noise factors are bounded and deterministic per seed.
    #[test]
    fn noise_bounds(seed in any::<u64>()) {
        let mut a = Perturbation::overnight(seed);
        let mut b = Perturbation::overnight(seed);
        for _ in 0..200 {
            let fa = a.factor();
            prop_assert!((1.0..1.45).contains(&fa));
            prop_assert_eq!(fa, b.factor());
        }
    }
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    let job = (1e6..1e11f64, 64usize..4_000_000, 64usize..4_000_000)
        .prop_map(|(f, i, o)| Job::new("j", f, i, o));
    (prop::collection::vec(job, 1..24), 1e5..1e8f64, 1e5..1e8f64).prop_map(
        |(jobs, init, prolong)| Workload {
            name: "prop".into(),
            init_flops: init,
            prolong_flops: prolong,
            pools: vec![jobs],
            feed_flops_per_byte: 100.0,
            collect_flops_per_byte: 100.0,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Simulator invariants for arbitrary workloads:
    /// * elapsed at least the biggest job's compute on the fastest host;
    /// * elapsed at most the whole sequential time plus modelled overheads;
    /// * machines within [1, min(32, jobs+1)];
    /// * one Welcome and one Bye per worker and per master.
    #[test]
    fn simulator_invariants(wl in arb_workload()) {
        let sim = DistributedSim::new(paper_cluster(1e9));
        let report = sim.run(&wl, &mut Perturbation::none());

        let fastest = 1e9 * (1466.0 / 1200.0);
        prop_assert!(report.elapsed >= wl.max_job_flops() / fastest);

        let seq = sim.sequential_time(&wl, &mut Perturbation::none());
        let n = wl.job_count() as f64;
        // Generous overhead bound: per-worker costs + transfers + startup.
        let byte_total: f64 = wl.pools[0]
            .iter()
            .map(|j| (j.input_bytes + j.output_bytes) as f64)
            .sum();
        let bound = seq
            + 30.0
            + n * 10.0
            + byte_total * (2.0 / 11.0e6 + 200.0 / 1e9)
            + 1.0;
        prop_assert!(
            report.elapsed <= bound,
            "elapsed {} exceeds bound {bound}",
            report.elapsed
        );

        let peak = report.peak_machines as usize;
        prop_assert!(peak >= 1);
        prop_assert!(peak <= 32);
        prop_assert!(peak <= wl.job_count() + 1);
        prop_assert!(report.weighted_avg_machines >= 0.99);

        let welcomes = report.records.iter().filter(|r| r.message == "Welcome").count();
        let byes = report.records.iter().filter(|r| r.message == "Bye").count();
        prop_assert_eq!(welcomes, wl.job_count() + 1);
        prop_assert_eq!(byes, wl.job_count() + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// More machines can only help (or tie): a cluster padded with extra
    /// hosts never yields a slower run.
    #[test]
    fn more_hosts_never_slower(
        jobs in prop::collection::vec(1e8..1e10f64, 2..12)
    ) {
        let wl = Workload {
            name: "prop".into(),
            init_flops: 1e6,
            prolong_flops: 1e6,
            pools: vec![jobs.iter().map(|f| Job::new("j", *f, 1024, 1024)).collect()],
            feed_flops_per_byte: 100.0,
            collect_flops_per_byte: 100.0,
        };
        let small = {
            let mut c = paper_cluster(1e9);
            c.hosts.truncate(3);
            DistributedSim::new(c).run(&wl, &mut Perturbation::none()).elapsed
        };
        let big = DistributedSim::new(paper_cluster(1e9))
            .run(&wl, &mut Perturbation::none())
            .elapsed;
        prop_assert!(big <= small + 1e-9, "32 hosts {big} vs 3 hosts {small}");
    }
}
