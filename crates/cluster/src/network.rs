//! The switched-Ethernet network model.
//!
//! A transfer of `b` bytes between two distinct machines costs
//! `latency + b / bandwidth` seconds. Transfers within one machine (master
//! and worker bundled in the same task instance, or two threads of one
//! task) cost only a memory-copy: `b / mem_bandwidth`.

use serde::{Deserialize, Serialize};

/// Point-to-point network + memory-copy cost model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way message latency in seconds (switch + stack).
    pub latency: f64,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Intra-machine memory-copy bandwidth in bytes/second.
    pub mem_bandwidth: f64,
}

impl NetworkModel {
    /// The paper's network: 100 Mbps switched Ethernet. Sustained TCP over
    /// 100 Mbps in 2003 ≈ 11 MB/s; PC memory copies ≈ 400 MB/s.
    pub fn switched_ethernet_100mbps() -> NetworkModel {
        NetworkModel {
            latency: 150e-6,
            bandwidth: 11.0e6,
            mem_bandwidth: 400.0e6,
        }
    }

    /// Transfer time for `bytes` between two *different* machines.
    pub fn remote_transfer(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Transfer time for `bytes` within one machine.
    pub fn local_transfer(&self, bytes: usize) -> f64 {
        bytes as f64 / self.mem_bandwidth
    }

    /// Transfer time, picking remote or local by `same_host`.
    pub fn transfer(&self, bytes: usize, same_host: bool) -> f64 {
        if same_host {
            self.local_transfer(bytes)
        } else {
            self.remote_transfer(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_includes_latency() {
        let n = NetworkModel::switched_ethernet_100mbps();
        assert!(n.remote_transfer(0) > 0.0);
        assert_eq!(n.remote_transfer(0), n.latency);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let n = NetworkModel::switched_ethernet_100mbps();
        let t = n.remote_transfer(11_000_000);
        assert!((t - (n.latency + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn local_is_faster_than_remote() {
        let n = NetworkModel::switched_ethernet_100mbps();
        for &b in &[0usize, 1024, 1 << 20, 1 << 24] {
            assert!(n.local_transfer(b) < n.remote_transfer(b));
        }
    }

    #[test]
    fn transfer_dispatches_on_same_host() {
        let n = NetworkModel::switched_ethernet_100mbps();
        assert_eq!(n.transfer(4096, true), n.local_transfer(4096));
        assert_eq!(n.transfer(4096, false), n.remote_transfer(4096));
    }
}
