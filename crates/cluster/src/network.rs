//! The switched-Ethernet network model.
//!
//! A transfer of `b` bytes between two distinct machines costs
//! `latency + b / bandwidth` seconds. Transfers within one machine (master
//! and worker bundled in the same task instance, or two threads of one
//! task) cost only a memory-copy: `b / mem_bandwidth`.

use serde::{Deserialize, Serialize};

/// Point-to-point network + memory-copy cost model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way message latency in seconds (switch + stack).
    pub latency: f64,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Intra-machine memory-copy bandwidth in bytes/second.
    pub mem_bandwidth: f64,
}

impl NetworkModel {
    /// The paper's network: 100 Mbps switched Ethernet. Sustained TCP over
    /// 100 Mbps in 2003 ≈ 11 MB/s; PC memory copies ≈ 400 MB/s.
    pub fn switched_ethernet_100mbps() -> NetworkModel {
        NetworkModel {
            latency: 150e-6,
            bandwidth: 11.0e6,
            mem_bandwidth: 400.0e6,
        }
    }

    /// Calibrate a model from two measured transport round-trips (as
    /// produced by the `transport_bench` loopback benchmark): a `small`
    /// payload whose round-trip is latency-dominated and a `large` payload
    /// whose round-trip is bandwidth-dominated. Each sample is
    /// `(payload_bytes, round_trip_seconds)`; a round trip moves the
    /// payload twice, so with one-way time `t(b) = latency + b / bandwidth`
    /// the two samples solve `rtt = 2 * t(b)` exactly:
    ///
    /// ```text
    /// bandwidth = 2 * (b_large - b_small) / (rtt_large - rtt_small)
    /// latency   = rtt_small / 2 - b_small / bandwidth
    /// ```
    ///
    /// `mem_bandwidth` keeps its direct measurement (an in-process copy
    /// benchmark), since loopback sockets never exercise it.
    pub fn from_loopback_measurement(
        small: (usize, f64),
        large: (usize, f64),
        mem_bandwidth: f64,
    ) -> Result<NetworkModel, String> {
        let (b0, r0) = small;
        let (b1, r1) = large;
        if b1 <= b0 {
            return Err(format!("payloads not increasing: {b0} then {b1} bytes"));
        }
        if r1 <= r0 {
            return Err(format!(
                "round-trips not increasing: {r0}s then {r1}s — samples too noisy to calibrate"
            ));
        }
        if mem_bandwidth.is_nan() || mem_bandwidth <= 0.0 {
            return Err(format!(
                "mem_bandwidth must be positive, got {mem_bandwidth}"
            ));
        }
        let bandwidth = 2.0 * (b1 - b0) as f64 / (r1 - r0);
        let latency = (r0 / 2.0 - b0 as f64 / bandwidth).max(0.0);
        Ok(NetworkModel {
            latency,
            bandwidth,
            mem_bandwidth,
        })
    }

    /// Transfer time for `bytes` between two *different* machines.
    pub fn remote_transfer(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Transfer time for `bytes` within one machine.
    pub fn local_transfer(&self, bytes: usize) -> f64 {
        bytes as f64 / self.mem_bandwidth
    }

    /// Transfer time, picking remote or local by `same_host`.
    pub fn transfer(&self, bytes: usize, same_host: bool) -> f64 {
        if same_host {
            self.local_transfer(bytes)
        } else {
            self.remote_transfer(bytes)
        }
    }
}

/// Two-level fabric for a sharded fleet: each pool's hosts hang off one
/// edge switch (the paper's 100 Mbps switched-Ethernet model), and pools
/// are joined by an aggregation layer, so a transfer that crosses pools
/// pays extra hops and a shared, oversubscribed uplink. This is what makes
/// work stealing and re-homing *cost* something in the DES: a stolen job's
/// input crosses the inter-pool link instead of staying on the edge
/// switch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FabricModel {
    /// Links within one pool (host ↔ host, shard master ↔ its workers).
    pub intra: NetworkModel,
    /// Links between pools (root ↔ shard masters, steals, re-homes).
    pub inter: NetworkModel,
}

impl FabricModel {
    /// The scaling study's fabric: paper-era edge switches, with the
    /// aggregation layer adding two switch hops of latency and a 4:1
    /// oversubscribed uplink.
    pub fn two_level_2004() -> FabricModel {
        let intra = NetworkModel::switched_ethernet_100mbps();
        FabricModel {
            intra,
            inter: NetworkModel {
                latency: intra.latency * 3.0,
                bandwidth: intra.bandwidth / 4.0,
                mem_bandwidth: intra.mem_bandwidth,
            },
        }
    }

    /// A flat fabric (one switch): inter-pool costs equal intra-pool.
    /// What a single-shard (paper-topology) run sees.
    pub fn flat(net: NetworkModel) -> FabricModel {
        FabricModel {
            intra: net,
            inter: net,
        }
    }

    /// Transfer time for `bytes`, picking the link by locality.
    pub fn transfer(&self, bytes: usize, same_host: bool, same_pool: bool) -> f64 {
        if same_host {
            self.intra.local_transfer(bytes)
        } else if same_pool {
            self.intra.remote_transfer(bytes)
        } else {
            self.inter.remote_transfer(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_includes_latency() {
        let n = NetworkModel::switched_ethernet_100mbps();
        assert!(n.remote_transfer(0) > 0.0);
        assert_eq!(n.remote_transfer(0), n.latency);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let n = NetworkModel::switched_ethernet_100mbps();
        let t = n.remote_transfer(11_000_000);
        assert!((t - (n.latency + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn local_is_faster_than_remote() {
        let n = NetworkModel::switched_ethernet_100mbps();
        for &b in &[0usize, 1024, 1 << 20, 1 << 24] {
            assert!(n.local_transfer(b) < n.remote_transfer(b));
        }
    }

    #[test]
    fn transfer_dispatches_on_same_host() {
        let n = NetworkModel::switched_ethernet_100mbps();
        assert_eq!(n.transfer(4096, true), n.local_transfer(4096));
        assert_eq!(n.transfer(4096, false), n.remote_transfer(4096));
    }

    #[test]
    fn fabric_orders_links_by_locality() {
        let f = FabricModel::two_level_2004();
        for &b in &[64usize, 4096, 1 << 20] {
            let local = f.transfer(b, true, true);
            let intra = f.transfer(b, false, true);
            let inter = f.transfer(b, false, false);
            assert!(local < intra, "memory copy beats the edge switch");
            assert!(intra < inter, "edge switch beats the aggregation hop");
        }
        let flat = FabricModel::flat(NetworkModel::switched_ethernet_100mbps());
        assert_eq!(
            flat.transfer(4096, false, true),
            flat.transfer(4096, false, false)
        );
    }

    #[test]
    fn calibration_round_trips_the_paper_model() {
        // Synthesize the samples a loopback benchmark would measure on the
        // paper's network, then recover the model from them.
        let truth = NetworkModel::switched_ethernet_100mbps();
        let small = (64usize, 2.0 * truth.remote_transfer(64));
        let large = (1 << 20, 2.0 * truth.remote_transfer(1 << 20));
        let got =
            NetworkModel::from_loopback_measurement(small, large, truth.mem_bandwidth).unwrap();
        assert!((got.bandwidth - truth.bandwidth).abs() / truth.bandwidth < 1e-9);
        assert!((got.latency - truth.latency).abs() < 1e-12);
        assert_eq!(got.mem_bandwidth, truth.mem_bandwidth);
    }

    #[test]
    fn calibration_rejects_degenerate_samples() {
        assert!(NetworkModel::from_loopback_measurement((64, 1e-4), (64, 2e-4), 1e9).is_err());
        assert!(NetworkModel::from_loopback_measurement((64, 2e-4), (1 << 20, 1e-4), 1e9).is_err());
        assert!(NetworkModel::from_loopback_measurement((64, 1e-4), (1 << 20, 2e-3), 0.0).is_err());
    }

    #[test]
    fn calibration_clamps_negative_latency_from_noise() {
        // A small sample measured faster than the line rate allows must not
        // produce a negative latency.
        let got =
            NetworkModel::from_loopback_measurement((1 << 16, 1e-6), (1 << 20, 2e-3), 1e9).unwrap();
        assert!(got.latency >= 0.0);
        assert!(got.bandwidth > 0.0);
    }
}
