//! The distributed-run simulator.
//!
//! Replays the master/worker protocol of `protocolMW.m` on the simulated
//! cluster in virtual time, event for event:
//!
//! 1. the master performs its initialization on the start-up machine;
//! 2. for every job it raises `create_worker`, waits for the reference,
//!    activates the worker (forking a task instance on a fresh machine when
//!    no perpetual idle instance is available — the same
//!    [`manifold::link::Bundler`] logic as the live runtime),
//!    and feeds it its input data through the network — all strictly
//!    serially, because the master is a single process writing to its own
//!    output port;
//! 3. workers compute concurrently, each at its host's speed (perturbed by
//!    the multi-user noise model), push their results back over the
//!    network, raise `death_worker`, and die — freeing their machine for
//!    reuse;
//! 4. the master collects every result, requests the rendezvous, and after
//!    the acknowledgement proceeds to the prolongation phase.
//!
//! Everything the paper measures falls out: the elapsed wall-clock time
//! (`ct`), the number of machines in use as a function of time (Figure 1),
//! its time-weighted average (`m`), and the §6-format chronological
//! `Welcome`/`Bye` trace with virtual timestamps.

use std::collections::{BTreeMap, HashMap, VecDeque};

use chaos::{FaultKind, FaultPlan};
use manifold::config::{ConfigSpec, HostName};
use manifold::link::{Bundler, LinkSpec, Placement};
use manifold::trace::TraceRecord;
use manifold::Name;
use protocol::{DispatchPolicy, PaperFaithful};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::des::EventQueue;
use crate::hosts::ClusterSpec;
use crate::network::NetworkModel;
use crate::noise::Perturbation;
use crate::timeline::StepTrace;
use crate::workload::Workload;

/// Epoch base for virtual trace timestamps — the very timestamp family the
/// paper's §6 output shows.
pub const TRACE_EPOCH_SECS: u64 = 1_048_087_412;

/// Virtual seconds between a worker dying silently and the master declaring
/// the job lost (the heartbeat-silence window of the live transport). A
/// corrupt reply is detected the instant it arrives — the CRC rejects it —
/// so only crashes and connection drops pay this.
pub const LOSS_DETECTION_SECS: f64 = 2.0;

/// Costs of the coordination layer, in seconds. Defaults are calibrated to
/// 2003-era workstation clusters (rsh-based task forking, PVM-like message
/// handling); see EXPERIMENTS.md for the calibration against Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoordCosts {
    /// One-time application start-up (loading the MANIFOLD runtime,
    /// MLINK/CONFIG processing, first task-instance handshake). Charged to
    /// the concurrent run only — the sequential binary has none of it.
    pub startup: f64,
    /// Raising + dispatching one event between processes.
    pub event_latency: f64,
    /// Coordinator-side creation of a worker process instance.
    pub worker_create: f64,
    /// Forking a brand-new task instance on a (remote) machine.
    pub task_fork: f64,
    /// Extra cost of the very first fork of a run (cold NFS binary load).
    pub first_fork_extra: f64,
    /// Activating a process inside an existing task instance.
    pub activation: f64,
    /// Entering `Create_Worker_Pool` (spawning the `now`/`t` variables,
    /// state setup).
    pub pool_setup: f64,
}

impl CoordCosts {
    /// Calibrated 2003-era defaults (rsh-based task forking, NFS-loaded
    /// binaries); see EXPERIMENTS.md for the calibration against Table 1.
    pub fn paper_era() -> CoordCosts {
        CoordCosts {
            startup: 2.5,
            event_latency: 1.0e-3,
            worker_create: 0.15,
            task_fork: 0.5,
            first_fork_extra: 3.5,
            activation: 0.15,
            pool_setup: 0.3,
        }
    }
}

/// The full simulator configuration.
#[derive(Clone, Debug)]
pub struct DistributedSim {
    /// The machines.
    pub cluster: ClusterSpec,
    /// The interconnect.
    pub network: NetworkModel,
    /// Coordination-layer costs.
    pub costs: CoordCosts,
}

/// Everything a simulated distributed run produces.
#[derive(Clone, Debug)]
pub struct DistributedReport {
    /// Elapsed virtual wall-clock seconds (the paper's `ct` for one run).
    pub elapsed: f64,
    /// Busy machines (≥ 1 loaded task instance) over time — Figure 1.
    pub busy: StepTrace,
    /// Time-weighted average of busy machines — the `m` column.
    pub weighted_avg_machines: f64,
    /// Peak machines in simultaneous use.
    pub peak_machines: i64,
    /// Task instances forked over the run.
    pub task_forks: usize,
    /// Chronological `Welcome`/`Bye` trace with virtual timestamps.
    pub records: Vec<TraceRecord>,
    /// The start-up machine (where the master ran).
    pub master_host: HostName,
    /// Jobs the master had to re-dispatch after an injected loss (always 0
    /// without a fault plan).
    pub redispatches: usize,
}

struct WorkerDeath {
    placement: Placement,
}

impl DistributedSim {
    /// The paper's setup: the given cluster with its 100 Mbps switched
    /// Ethernet and paper-era coordination costs.
    pub fn new(cluster: ClusterSpec) -> DistributedSim {
        DistributedSim {
            cluster,
            network: NetworkModel::switched_ethernet_100mbps(),
            costs: CoordCosts::paper_era(),
        }
    }

    fn link_spec() -> LinkSpec {
        // mainprog.mlink from §6.
        LinkSpec::default()
            .task("mainprog")
            .perpetual(true)
            .load(1)
            .weight("Master", 1)
            .weight("Worker", 1)
    }

    fn config_spec(&self) -> ConfigSpec {
        let mut spec = ConfigSpec::with_startup(self.cluster.startup().name.clone());
        let mut vars = Vec::new();
        for (i, h) in self.cluster.hosts.iter().enumerate().skip(1) {
            let var = format!("host{i}");
            spec = spec.host(var.as_str(), h.name.clone());
            vars.push(var);
        }
        let refs: Vec<&str> = vars.iter().map(String::as_str).collect();
        spec.locus("mainprog", &refs)
    }

    /// Virtual time of the *sequential* program for this workload on the
    /// start-up machine (the paper's `st` for one run). Noise is applied
    /// per job, as each grid's solve is an independent stretch of compute.
    pub fn sequential_time(&self, wl: &Workload, noise: &mut Perturbation) -> f64 {
        let host = &self.cluster.startup().name;
        let mut t = self.cluster.compute_time(host, wl.init_flops);
        for job in wl.pools.iter().flatten() {
            t += noise.perturb(self.cluster.compute_time(host, job.flops));
        }
        t += noise.perturb(self.cluster.compute_time(host, wl.prolong_flops));
        t
    }

    /// Simulate one distributed run with the paper's verified dispatch
    /// behavior (natural job order, unbounded in-flight window).
    pub fn run(&self, wl: &Workload, noise: &mut Perturbation) -> DistributedReport {
        self.run_with_policy(wl, noise, &PaperFaithful)
    }

    /// Simulate one distributed run under an explicit [`DispatchPolicy`].
    ///
    /// The policy orders each pool's jobs (seeing their flop counts as
    /// costs) and bounds the master's in-flight window: once `window` jobs
    /// are outstanding the master collects the earliest-arriving result
    /// before feeding the next worker — the same backpressure the live
    /// runtime applies. [`PaperFaithful`] reproduces [`DistributedSim::run`]
    /// exactly, noise draw for noise draw.
    pub fn run_with_policy(
        &self,
        wl: &Workload,
        noise: &mut Perturbation,
        policy: &dyn DispatchPolicy,
    ) -> DistributedReport {
        self.run_with_faults(wl, noise, policy, &FaultPlan::default(), 0)
            .expect("an empty fault plan cannot exhaust a retry budget")
    }

    /// Simulate one distributed run with a [`chaos::FaultPlan`] composed on
    /// top of the multi-user noise model.
    ///
    /// The simulator has no fixed pool slots, so a worker fault's `on_job`
    /// ordinal indexes the run's *dispatch sequence* (1-based, re-dispatches
    /// included). Crash, connection drop, and corrupt reply are all a lost
    /// job to the master: the worker burns part (crash), almost none
    /// (drop), or all (corrupt) of its compute, the loss is detected after
    /// [`LOSS_DETECTION_SECS`] — immediately, for a CRC-rejected reply —
    /// and the job is re-dispatched, counted in
    /// [`DistributedReport::redispatches`]. A stall sleeps the worker before
    /// its compute; a heartbeat delay is absorbed by the live transport's
    /// margin and costs nothing in virtual time; a master kill is a live
    /// supervisor concern and is inert here. With an empty plan this is
    /// [`DistributedSim::run_with_policy`] exactly, noise draw for noise
    /// draw.
    ///
    /// When the injected losses outnumber `retry_budget`, the run ends in a
    /// diagnosed `Err` — never a hang.
    pub fn run_with_faults(
        &self,
        wl: &Workload,
        noise: &mut Perturbation,
        policy: &dyn DispatchPolicy,
        plan: &FaultPlan,
        retry_budget: usize,
    ) -> Result<DistributedReport, String> {
        SimFleet::new(self.clone(), plan, retry_budget).submit(wl, noise, policy)
    }

    /// Run `runs` seeded repetitions (the paper ran five) and average the
    /// elapsed time and machine usage. Returns
    /// `(avg sequential, avg concurrent, avg machines, reports)`.
    pub fn run_averaged(
        &self,
        wl: &Workload,
        runs: usize,
        base_seed: u64,
    ) -> (f64, f64, f64, Vec<DistributedReport>) {
        self.run_averaged_with_policy(wl, runs, base_seed, &PaperFaithful)
    }

    /// [`DistributedSim::run_averaged`] under an explicit dispatch policy.
    pub fn run_averaged_with_policy(
        &self,
        wl: &Workload,
        runs: usize,
        base_seed: u64,
        policy: &dyn DispatchPolicy,
    ) -> (f64, f64, f64, Vec<DistributedReport>) {
        assert!(runs > 0);
        let mut st_sum = 0.0;
        let mut ct_sum = 0.0;
        let mut m_sum = 0.0;
        let mut reports = Vec::with_capacity(runs);
        for k in 0..runs {
            let mut seq_noise = Perturbation::overnight(base_seed + 1000 * k as u64);
            st_sum += self.sequential_time(wl, &mut seq_noise);
            let mut run_noise = Perturbation::overnight(base_seed + 1000 * k as u64 + 1);
            let report = self.run_with_policy(wl, &mut run_noise, policy);
            ct_sum += report.elapsed;
            m_sum += report.weighted_avg_machines;
            reports.push(report);
        }
        let n = runs as f64;
        (st_sum / n, ct_sum / n, m_sum / n, reports)
    }
}

#[allow(clippy::too_many_arguments)] // one call site per trace field set
fn push_record(
    records: &mut Vec<TraceRecord>,
    host: &HostName,
    placement: &Placement,
    proc_uid: u64,
    manifold: &str,
    line: u32,
    t: f64,
    msg: &str,
) {
    let micros = (t * 1e6).round() as u64;
    records.push(TraceRecord {
        host: host.clone(),
        task_uid: TraceRecord::task_uid_for(placement.task),
        proc_uid,
        secs: TRACE_EPOCH_SECS + micros / 1_000_000,
        usecs: (micros % 1_000_000) as u32,
        task_name: placement.task_name.clone(),
        manifold_name: Name::new(manifold),
        source_file: "ResSourceCode.c".into(),
        line,
        message: msg.into(),
    });
}

/// The multi-job discrete-event simulation: one persistent simulated
/// worker fleet serving a *stream* of workloads over a single virtual
/// timeline.
///
/// [`DistributedSim::run_with_faults`] is a one-job fleet: the first job
/// submitted to a fresh fleet reproduces it bit for bit, noise draw for
/// noise draw. Jobs after the first run warm — they skip the application
/// [`CoordCosts::startup`], and their workers re-activate the perpetual
/// task instances the previous job left parked in the bundler, paying
/// neither `task_fork` nor `first_fork_extra`. The per-job virtual latency
/// of a warm fleet is therefore strictly below the cold first job's.
///
/// Each job gets a fresh job-scoped master (its own `Welcome`/`Bye` pair
/// and process uid); the bundler, the machine CPU timelines, and the
/// pending-death queue belong to the fleet. A fault plan's `on_job`
/// ordinals index the fleet-lifetime dispatch sequence, so an injected
/// fault can fire in any job — fault plans extend across job boundaries —
/// and the retry budget is likewise fleet-lifetime. After a submit returns
/// `Err` the fleet's virtual state is mid-job and further submissions are
/// not meaningful.
pub struct SimFleet {
    sim: DistributedSim,
    bundler: Bundler,
    master_name: Name,
    worker_name: Name,
    /// The fleet's virtual clock: end of the last completed job.
    t: f64,
    deaths: EventQueue<WorkerDeath>,
    task_forks: usize,
    next_proc: u64,
    // Single-processor machines: a worker computes only when its host's
    // CPU is free (earlier workers bundled onto the same machine run
    // first — FIFO, which has the same makespan as time slicing).
    cpu_free: HashMap<HostName, f64>,
    // The fault plan indexed by fleet-lifetime dispatch ordinal. Earlier
    // faults win a collision, matching `FaultPlan::worker_faults`.
    lost: BTreeMap<u64, FaultKind>,
    stall_ms: BTreeMap<u64, u64>,
    // Drawn from only when a loss actually fires, so an empty plan leaves
    // the per-job `noise` sequences untouched.
    chaos_rng: StdRng,
    dispatch_no: u64,
    redispatches: usize,
    retry_budget: usize,
    jobs_served: usize,
}

impl SimFleet {
    /// A cold fleet: nothing forked, virtual clock at zero, the given
    /// fault plan armed against the fleet-lifetime dispatch sequence.
    pub fn new(sim: DistributedSim, plan: &FaultPlan, retry_budget: usize) -> SimFleet {
        let mut lost: BTreeMap<u64, FaultKind> = BTreeMap::new();
        let mut stall_ms: BTreeMap<u64, u64> = BTreeMap::new();
        for fault in &plan.faults {
            match *fault {
                FaultKind::WorkerCrash { on_job, .. }
                | FaultKind::ConnDrop { on_job, .. }
                | FaultKind::FrameCorrupt { on_job, .. } => {
                    lost.entry(on_job).or_insert(*fault);
                }
                FaultKind::ConnStall { on_job, millis, .. } => {
                    stall_ms.entry(on_job).or_insert(millis);
                }
                FaultKind::HeartbeatDelay { .. }
                | FaultKind::MasterKill { .. }
                | FaultKind::DaemonKill { .. }
                | FaultKind::PoolKill { .. } => {}
            }
        }
        let chaos_rng = StdRng::seed_from_u64(plan.seed ^ 0x00c5_a05c_0de0_f003);
        let bundler = Bundler::new(DistributedSim::link_spec(), sim.config_spec());
        SimFleet {
            sim,
            bundler,
            master_name: Name::new("Master"),
            worker_name: Name::new("Worker"),
            t: 0.0,
            deaths: EventQueue::new(),
            task_forks: 0,
            next_proc: 1,
            cpu_free: HashMap::new(),
            lost,
            stall_ms,
            chaos_rng,
            dispatch_no: 0,
            redispatches: 0,
            retry_budget,
            jobs_served: 0,
        }
    }

    /// Jobs this fleet has served to completion.
    pub fn jobs_served(&self) -> usize {
        self.jobs_served
    }

    /// Task instances forked over the fleet's whole life.
    pub fn task_forks(&self) -> usize {
        self.task_forks
    }

    /// Idle perpetual worker instances currently parked in the bundler,
    /// ready to be re-activated fork-free by the next job.
    pub fn parked_workers(&self) -> usize {
        self.bundler.parked_instances()
    }

    /// Serve one job: a fresh job-scoped master runs `wl` on the fleet.
    ///
    /// The report's `elapsed` is the *per-job* virtual latency (submit to
    /// completion); its records, busy trace, and machine averages cover
    /// only this job. `task_forks` is the fleet-lifetime count (so the
    /// first job of a fresh fleet reports exactly what
    /// [`DistributedSim::run_with_faults`] reports); `redispatches` counts
    /// only this job's losses.
    pub fn submit(
        &mut self,
        wl: &Workload,
        noise: &mut Perturbation,
        policy: &dyn DispatchPolicy,
    ) -> Result<DistributedReport, String> {
        let job_start = self.t;
        let redispatches_before = self.redispatches;
        let master_placement = self.bundler.place(&self.master_name);
        let master_host = master_placement.host.clone();
        let master_speed = self.sim.cluster.flops_per_sec(&master_host);
        let master_uid = self.next_proc;
        self.next_proc += 1;

        let mut records: Vec<TraceRecord> = Vec::new();
        let mut busy_intervals: HashMap<HostName, Vec<(f64, f64)>> = HashMap::new();

        // Application start-up (first job only — the fleet stays up
        // between jobs), then this master's initialization on the
        // start-up machine.
        if self.jobs_served == 0 {
            self.t += self.sim.costs.startup;
        }
        self.t += noise.perturb(self.sim.cluster.compute_time(&master_host, wl.init_flops));
        let mut t = self.t;
        push_record(
            &mut records,
            &master_host,
            &master_placement,
            master_uid,
            "Master(port in)",
            136,
            t,
            "Welcome",
        );

        for pool in &wl.pools {
            // create_pool + Create_Worker_Pool entry.
            t += self.sim.costs.event_latency + self.sim.costs.pool_setup;
            let mut result_arrivals: Vec<(f64, usize)> = Vec::new();
            let mut last_death_event = t;

            // The policy sees each job's cost and answers with a dispatch
            // order and an in-flight window.
            let costs: Vec<f64> = pool.iter().map(|j| j.flops).collect();
            let order = policy.order(&costs);
            debug_assert_eq!(order.len(), pool.len());
            let window = policy.window(pool.len()).max(1);

            // A worklist rather than a plain loop: a job whose worker is
            // lost goes back on the queue, not before the master has
            // detected the loss.
            let mut queue: VecDeque<(usize, f64)> = order.iter().map(|&ji| (ji, 0.0)).collect();
            while let Some((ji, not_before)) = queue.pop_front() {
                let job = &pool[ji];
                // Backpressure: with the window full, the master collects
                // the earliest pending result before feeding more work.
                while result_arrivals.len() >= window {
                    let k = result_arrivals
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                        .map(|(i, _)| i)
                        .expect("window is full");
                    let (arrival, bytes) = result_arrivals.remove(k);
                    let handle = wl.collect_flops_per_byte * bytes as f64 / master_speed;
                    t = t.max(arrival) + noise.perturb(handle);
                }
                // A re-dispatched job waits for the loss to be detected.
                t = t.max(not_before);
                self.dispatch_no += 1;
                let this_dispatch = self.dispatch_no;
                // Master raises create_worker; the coordinator reacts.
                t += self.sim.costs.event_latency;
                // Any worker whose task already expired frees its machine
                // before this placement (perpetual reuse — including the
                // previous job's workers, which is what makes a warm fleet
                // fork-free).
                for (_, d) in self.deaths.pop_until(t) {
                    self.bundler.release(&d.placement);
                }
                // Coordinator creates the worker process...
                t += self.sim.costs.worker_create;
                let placement = self.bundler.place(&self.worker_name);
                if placement.forked {
                    self.task_forks += 1;
                }
                let busy_start = t;
                // ...and sends its reference to the master.
                t += self.sim.costs.event_latency;
                // Master activates the worker (forking its task instance if
                // the bundler had to start a fresh one; the first fork of
                // the fleet's life pays the cold binary load).
                t += self.sim.costs.activation;
                if placement.forked {
                    t += self.sim.costs.task_fork;
                    if self.task_forks == 1 {
                        t += self.sim.costs.first_fork_extra;
                    }
                }
                // Master feeds the worker: serialize + transfer.
                let same_host = placement.host == master_host;
                let feed = wl.feed_flops_per_byte * job.input_bytes as f64 / master_speed
                    + self.sim.network.transfer(job.input_bytes, same_host);
                t += noise.perturb(feed);

                // The worker computes concurrently from here on — but its
                // single-processor host may still be running earlier
                // workers.
                let cpu = self.cpu_free.entry(placement.host.clone()).or_insert(0.0);
                let worker_start = t.max(*cpu);
                let mut compute =
                    noise.perturb(self.sim.cluster.compute_time(&placement.host, job.flops));
                if let Some(ms) = self.stall_ms.get(&this_dispatch) {
                    // ConnStall: the worker sleeps before computing, but its
                    // heartbeats keep flowing — nothing is declared dead.
                    compute += *ms as f64 / 1000.0;
                }
                if let Some(kind) = self.lost.get(&this_dispatch).copied() {
                    // How much of the job ran before the loss.
                    let fraction = match kind {
                        FaultKind::FrameCorrupt { .. } => 1.0,
                        FaultKind::ConnDrop { .. } => 0.05 * self.chaos_rng.gen::<f64>(),
                        _ => 0.25 + 0.5 * self.chaos_rng.gen::<f64>(),
                    };
                    let worker_end = worker_start + fraction * compute;
                    *cpu = worker_end;
                    // A corrupt reply still crosses the network and is
                    // rejected on arrival; a silent death is declared only
                    // after the loss-detection window.
                    let detect_at = match kind {
                        FaultKind::FrameCorrupt { .. } => {
                            worker_end + self.sim.network.transfer(job.output_bytes, same_host)
                        }
                        _ => worker_end + LOSS_DETECTION_SECS,
                    };
                    let proc_uid = self.next_proc;
                    self.next_proc += 1;
                    push_record(
                        &mut records,
                        &placement.host,
                        &placement,
                        proc_uid,
                        "Worker(event)",
                        351,
                        worker_start,
                        "Welcome",
                    );
                    push_record(
                        &mut records,
                        &placement.host,
                        &placement,
                        proc_uid,
                        "Worker(event)",
                        370,
                        worker_end,
                        &format!("worker lost ({kind}, dispatch {this_dispatch})"),
                    );
                    busy_intervals
                        .entry(placement.host.clone())
                        .or_default()
                        .push((busy_start, worker_end));
                    last_death_event =
                        last_death_event.max(worker_end + self.sim.costs.event_latency);
                    self.deaths.schedule(worker_end, WorkerDeath { placement });
                    if self.redispatches >= self.retry_budget {
                        let retry_budget = self.retry_budget;
                        return Err(format!(
                            "worker lost ({kind}, dispatch {this_dispatch}); \
                             retry budget ({retry_budget}) exhausted"
                        ));
                    }
                    self.redispatches += 1;
                    queue.push_back((ji, detect_at));
                    continue;
                }
                let worker_end = worker_start + compute;
                *cpu = worker_end;
                let flush = self.sim.network.transfer(job.output_bytes, same_host);
                let result_arrival = worker_end + flush;
                // The task instance can expire once the result has left its
                // buffers; the death_worker event reaches the coordinator a
                // hair after the worker's last action.
                let release = worker_end + flush;
                last_death_event = last_death_event.max(worker_end + self.sim.costs.event_latency);

                let proc_uid = self.next_proc;
                self.next_proc += 1;
                push_record(
                    &mut records,
                    &placement.host,
                    &placement,
                    proc_uid,
                    "Worker(event)",
                    351,
                    worker_start,
                    "Welcome",
                );
                push_record(
                    &mut records,
                    &placement.host,
                    &placement,
                    proc_uid,
                    "Worker(event)",
                    370,
                    worker_end,
                    "Bye",
                );
                busy_intervals
                    .entry(placement.host.clone())
                    .or_default()
                    .push((busy_start, release));
                result_arrivals.push((result_arrival, job.output_bytes));
                self.deaths.schedule(release, WorkerDeath { placement });
            }

            // Collect phase: the master drains the remaining in-flight
            // results serially, in arrival order.
            result_arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for (arrival, bytes) in result_arrivals {
                let handle = wl.collect_flops_per_byte * bytes as f64 / master_speed;
                t = t.max(arrival) + noise.perturb(handle);
            }

            // Rendezvous: the coordinator has to count every death_worker.
            t += self.sim.costs.event_latency;
            t = t.max(last_death_event) + self.sim.costs.event_latency;
            for (_, d) in self.deaths.pop_until(t) {
                self.bundler.release(&d.placement);
            }
        }

        // Prolongation on the master, then this job is done.
        t += noise.perturb(
            self.sim
                .cluster
                .compute_time(&master_host, wl.prolong_flops),
        );
        let job_end = t;
        push_record(
            &mut records,
            &master_host,
            &master_placement,
            master_uid,
            "Master(port in)",
            337,
            job_end,
            "Bye",
        );

        // The master's machine is busy for this whole job.
        busy_intervals
            .entry(master_host.clone())
            .or_default()
            .push((job_start, job_end));

        // Busy-machine step function: union of intervals per host, then one
        // +1/−1 pair per maximal busy stretch.
        let mut busy = StepTrace::new();
        for intervals in busy_intervals.values_mut() {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut current: Option<(f64, f64)> = None;
            for &(s, e) in intervals.iter() {
                match current {
                    Some((cs, ce)) if s <= ce => current = Some((cs, ce.max(e))),
                    Some((cs, ce)) => {
                        busy.interval(cs, ce);
                        current = Some((s, e));
                    }
                    None => current = Some((s, e)),
                }
            }
            if let Some((cs, ce)) = current {
                busy.interval(cs, ce);
            }
        }

        records.sort_by_key(|a| (a.secs, a.usecs));
        let weighted_avg_machines = busy.weighted_average(job_start, job_end);
        let peak_machines = busy.peak();

        // The job-scoped master dies; its (perpetual, startup) instance
        // parks for the next job's master.
        self.bundler.release(&master_placement);
        self.t = job_end;
        self.jobs_served += 1;
        Ok(DistributedReport {
            elapsed: job_end - job_start,
            busy,
            weighted_avg_machines,
            peak_machines,
            task_forks: self.task_forks,
            records,
            master_host,
            redispatches: self.redispatches - redispatches_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosts::paper_cluster;
    use crate::workload::Job;

    fn sim() -> DistributedSim {
        DistributedSim::new(paper_cluster(1e8))
    }

    fn simple_workload(jobs: usize, flops: f64) -> Workload {
        Workload {
            name: "test".into(),
            init_flops: 1e6,
            prolong_flops: 1e6,
            pools: vec![(0..jobs)
                .map(|k| Job::new(format!("job{k}"), flops, 80_000, 80_000))
                .collect()],
            feed_flops_per_byte: 1.0,
            collect_flops_per_byte: 1.0,
        }
    }

    #[test]
    fn elapsed_is_positive_and_bounded_below() {
        let sim = sim();
        let wl = simple_workload(4, 1e9);
        let mut noise = Perturbation::none();
        let report = sim.run(&wl, &mut noise);
        // Concurrent elapsed can never beat the largest single job.
        let min = sim.cluster.compute_time(&sim.cluster.startup().name, 1e9) / (1466.0 / 1200.0);
        assert!(report.elapsed > min * 0.99, "{}", report.elapsed);
        assert!(report.elapsed.is_finite());
    }

    #[test]
    fn big_jobs_yield_speedup_small_jobs_do_not() {
        let sim = sim();
        let mut noise = Perturbation::none();
        // Tiny jobs: overheads dominate, speedup < 1 (paper levels < 10).
        let small = simple_workload(7, 1e6);
        let st_small = sim.sequential_time(&small, &mut Perturbation::none());
        let ct_small = sim.run(&small, &mut noise).elapsed;
        assert!(st_small / ct_small < 1.0, "su {} ", st_small / ct_small);
        // Huge jobs: real speedup (paper levels ≥ 10).
        let big = simple_workload(7, 2e11);
        let st_big = sim.sequential_time(&big, &mut Perturbation::none());
        let ct_big = sim.run(&big, &mut Perturbation::none()).elapsed;
        assert!(
            st_big / ct_big > 2.0,
            "expected speedup, got {}",
            st_big / ct_big
        );
    }

    #[test]
    fn machines_grow_with_job_size() {
        let sim = sim();
        let small = sim
            .run(&simple_workload(9, 1e7), &mut Perturbation::none())
            .weighted_avg_machines;
        let big = sim
            .run(&simple_workload(9, 1e11), &mut Perturbation::none())
            .weighted_avg_machines;
        assert!(big > small, "big {big} small {small}");
        assert!(small >= 1.0, "master machine always busy: {small}");
    }

    #[test]
    fn peak_machines_bounded_by_cluster_and_jobs() {
        let sim = sim();
        let wl = simple_workload(9, 1e11);
        let report = sim.run(&wl, &mut Perturbation::none());
        assert!(report.peak_machines as usize <= sim.cluster.len());
        assert!(report.peak_machines as usize <= 9 + 1);
        assert!(report.peak_machines >= 2);
    }

    #[test]
    fn perpetual_reuse_limits_forks_for_quick_jobs() {
        let sim = sim();
        // Jobs so quick every worker dies before the next is placed.
        let wl = simple_workload(12, 1e5);
        let report = sim.run(&wl, &mut Perturbation::none());
        assert!(
            report.task_forks < 12,
            "expected task reuse, got {} forks",
            report.task_forks
        );
    }

    #[test]
    fn long_jobs_fork_one_task_each() {
        let sim = sim();
        let wl = simple_workload(5, 1e11);
        let report = sim.run(&wl, &mut Perturbation::none());
        assert_eq!(report.task_forks, 5);
    }

    #[test]
    fn trace_records_are_chronological_welcome_bye() {
        let sim = sim();
        let wl = simple_workload(3, 1e9);
        let report = sim.run(&wl, &mut Perturbation::none());
        // Master welcome + bye, 3 workers x (welcome + bye).
        assert_eq!(report.records.len(), 2 + 6);
        let times: Vec<u64> = report
            .records
            .iter()
            .map(|r| r.secs * 1_000_000 + r.usecs as u64)
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(report.records[0].message, "Welcome");
        assert_eq!(report.records.last().unwrap().message, "Bye");
        assert_eq!(report.records[0].manifold_name.as_str(), "Master(port in)");
    }

    #[test]
    fn master_host_is_startup_machine() {
        let sim = sim();
        let wl = simple_workload(2, 1e8);
        let report = sim.run(&wl, &mut Perturbation::none());
        assert_eq!(report.master_host, sim.cluster.startup().name);
    }

    #[test]
    fn deterministic_without_noise() {
        let sim = sim();
        let wl = simple_workload(6, 1e9);
        let a = sim.run(&wl, &mut Perturbation::none());
        let b = sim.run(&wl, &mut Perturbation::none());
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.task_forks, b.task_forks);
    }

    #[test]
    fn averaging_runs_are_stable() {
        let sim = sim();
        let wl = simple_workload(4, 1e9);
        let (st, ct, m, reports) = sim.run_averaged(&wl, 5, 42);
        assert_eq!(reports.len(), 5);
        assert!(st > 0.0 && ct > 0.0 && m >= 1.0);
        // Noise is bounded; the five runs agree within ~40%.
        let min = reports.iter().map(|r| r.elapsed).fold(f64::MAX, f64::min);
        let max = reports.iter().map(|r| r.elapsed).fold(0.0, f64::max);
        assert!(max / min < 1.4, "runs too noisy: {min} .. {max}");
    }

    #[test]
    fn paper_faithful_policy_reproduces_run_exactly() {
        let sim = sim();
        let wl = simple_workload(6, 1e9);
        let mut n1 = Perturbation::overnight(7);
        let mut n2 = Perturbation::overnight(7);
        let a = sim.run(&wl, &mut n1);
        let b = sim.run_with_policy(&wl, &mut n2, &PaperFaithful);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.weighted_avg_machines, b.weighted_avg_machines);
        assert_eq!(a.task_forks, b.task_forks);
    }

    #[test]
    fn bounded_policy_caps_peak_machines() {
        let sim = sim();
        let wl = simple_workload(9, 1e11);
        let unbounded = sim.run(&wl, &mut Perturbation::none());
        let bounded = sim.run_with_policy(
            &wl,
            &mut Perturbation::none(),
            &protocol::BoundedReuse::new(2),
        );
        // At most 2 workers in flight + the master's machine.
        assert!(
            bounded.peak_machines <= 3,
            "window 2 exceeded: {} machines",
            bounded.peak_machines
        );
        assert!(bounded.peak_machines < unbounded.peak_machines);
        // Throttling dispatch can only lengthen the run.
        assert!(bounded.elapsed >= unbounded.elapsed);
    }

    #[test]
    fn cost_aware_fronts_the_long_job() {
        let sim = sim();
        // One huge job hidden at the end of an otherwise light pool: the
        // paper order feeds it last, LPT feeds it first and wins.
        let mut wl = simple_workload(8, 1e9);
        wl.pools[0].push(Job::new("huge", 2e11, 80_000, 80_000));
        let paper = sim.run(&wl, &mut Perturbation::none()).elapsed;
        let lpt = sim
            .run_with_policy(&wl, &mut Perturbation::none(), &protocol::CostAware)
            .elapsed;
        assert!(lpt < paper, "LPT {lpt} should beat paper order {paper}");
    }

    #[test]
    fn empty_fault_plan_reproduces_run_exactly() {
        let sim = sim();
        let wl = simple_workload(6, 1e9);
        let mut n1 = Perturbation::overnight(11);
        let mut n2 = Perturbation::overnight(11);
        let a = sim.run(&wl, &mut n1);
        let b = sim
            .run_with_faults(&wl, &mut n2, &PaperFaithful, &FaultPlan::default(), 0)
            .unwrap();
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.weighted_avg_machines, b.weighted_avg_machines);
        assert_eq!(a.task_forks, b.task_forks);
        assert_eq!(b.redispatches, 0);
    }

    #[test]
    fn injected_loss_costs_a_redispatch_not_the_run() {
        let sim = sim();
        let wl = simple_workload(6, 1e9);
        let clean = sim.run(&wl, &mut Perturbation::none());
        let plan = FaultPlan::new(5)
            .push(FaultKind::WorkerCrash {
                instance: 0,
                on_job: 2,
            })
            .push(FaultKind::FrameCorrupt {
                instance: 1,
                on_job: 4,
            });
        let faulted = sim
            .run_with_faults(&wl, &mut Perturbation::none(), &PaperFaithful, &plan, 4)
            .unwrap();
        assert_eq!(faulted.redispatches, 2);
        // Every job still completed (6 worker Byes + master Welcome/Bye +
        // 2 loss lines).
        let losses = faulted
            .records
            .iter()
            .filter(|r| r.message.contains("worker lost"))
            .count();
        assert_eq!(losses, 2);
        let byes = faulted
            .records
            .iter()
            .filter(|r| r.message == "Bye")
            .count();
        assert_eq!(byes, 6 + 1);
        // Burned compute plus detection latency can only lengthen the run.
        assert!(faulted.elapsed > clean.elapsed);
    }

    #[test]
    fn faulted_run_is_deterministic_per_seed() {
        let sim = sim();
        let wl = simple_workload(6, 1e9);
        let plan = FaultPlan::from_seed(42, 4, 6);
        let budget = 8;
        let a = sim.run_with_faults(
            &wl,
            &mut Perturbation::overnight(3),
            &PaperFaithful,
            &plan,
            budget,
        );
        let b = sim.run_with_faults(
            &wl,
            &mut Perturbation::overnight(3),
            &PaperFaithful,
            &plan,
            budget,
        );
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.elapsed, b.elapsed);
                assert_eq!(a.redispatches, b.redispatches);
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("nondeterministic outcome: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn exhausted_retry_budget_is_a_clean_error() {
        let sim = sim();
        let wl = simple_workload(4, 1e9);
        let plan = FaultPlan::new(1)
            .push(FaultKind::WorkerCrash {
                instance: 0,
                on_job: 2,
            })
            .push(FaultKind::ConnDrop {
                instance: 1,
                on_job: 3,
            });
        let err = sim
            .run_with_faults(&wl, &mut Perturbation::none(), &PaperFaithful, &plan, 1)
            .unwrap_err();
        assert!(err.contains("retry budget"), "{err}");
    }

    #[test]
    fn stall_fault_lengthens_the_run_without_a_loss() {
        let sim = sim();
        let wl = simple_workload(4, 1e9);
        let clean = sim.run(&wl, &mut Perturbation::none());
        let plan = FaultPlan::new(9).push(FaultKind::ConnStall {
            instance: 0,
            on_job: 4,
            millis: 30_000,
        });
        let stalled = sim
            .run_with_faults(&wl, &mut Perturbation::none(), &PaperFaithful, &plan, 0)
            .unwrap();
        assert_eq!(stalled.redispatches, 0);
        assert!(stalled.elapsed > clean.elapsed + 25.0);
    }

    #[test]
    fn multiple_pools_are_serialized() {
        let sim = sim();
        let one_pool = simple_workload(6, 1e9);
        let mut two_pools = simple_workload(6, 1e9);
        let jobs = two_pools.pools.pop().unwrap();
        let (a, b) = jobs.split_at(3);
        two_pools.pools = vec![a.to_vec(), b.to_vec()];
        let ct1 = sim.run(&one_pool, &mut Perturbation::none()).elapsed;
        let ct2 = sim.run(&two_pools, &mut Perturbation::none()).elapsed;
        // The pool barrier (rendezvous between pools) can only slow it down.
        assert!(ct2 >= ct1, "two pools {ct2} vs one pool {ct1}");
    }

    #[test]
    fn fleet_job1_matches_solo_run_exactly() {
        let sim = sim();
        let wl = simple_workload(6, 1e9);
        let solo = sim.run_with_policy(&wl, &mut Perturbation::overnight(7), &PaperFaithful);
        let mut fleet = SimFleet::new(sim, &FaultPlan::default(), 0);
        let first = fleet
            .submit(&wl, &mut Perturbation::overnight(7), &PaperFaithful)
            .unwrap();
        // The first job of a fresh fleet *is* the one-shot run: same virtual
        // times, same machine trace, same records, bit for bit.
        assert_eq!(first.elapsed, solo.elapsed);
        assert_eq!(first.weighted_avg_machines, solo.weighted_avg_machines);
        assert_eq!(first.peak_machines, solo.peak_machines);
        assert_eq!(first.task_forks, solo.task_forks);
        assert_eq!(first.records, solo.records);
        assert_eq!(fleet.jobs_served(), 1);
    }

    #[test]
    fn warm_fleet_jobs_are_strictly_faster_and_fork_free() {
        let wl = simple_workload(6, 1e9);
        let mut fleet = SimFleet::new(sim(), &FaultPlan::default(), 0);
        let cold = fleet
            .submit(&wl, &mut Perturbation::none(), &PaperFaithful)
            .unwrap();
        // The first job parked its perpetual worker instances in the bundler.
        assert!(fleet.parked_workers() > 0, "{}", fleet.parked_workers());
        let forks_after_cold = fleet.task_forks();
        let warm = fleet
            .submit(&wl, &mut Perturbation::none(), &PaperFaithful)
            .unwrap();
        // Warm jobs skip application startup and re-activate parked
        // instances instead of forking fresh ones.
        assert!(
            warm.elapsed < cold.elapsed,
            "warm {} vs cold {}",
            warm.elapsed,
            cold.elapsed
        );
        assert_eq!(fleet.task_forks(), forks_after_cold, "no new forks");
        // And every warm job after that costs the same again (up to float
        // rounding: later jobs run at a larger absolute virtual time).
        let warm2 = fleet
            .submit(&wl, &mut Perturbation::none(), &PaperFaithful)
            .unwrap();
        assert!(
            (warm2.elapsed - warm.elapsed).abs() < 1e-9 * warm.elapsed,
            "{} vs {}",
            warm2.elapsed,
            warm.elapsed
        );
        assert_eq!(fleet.jobs_served(), 3);
    }

    #[test]
    fn fault_plan_spans_job_boundaries() {
        let wl = simple_workload(4, 1e9);
        // Dispatches 1..=4 belong to job 1; on_job 6 lands inside job 2.
        let plan = FaultPlan::new(3).push(FaultKind::WorkerCrash {
            instance: 0,
            on_job: 6,
        });
        let mut fleet = SimFleet::new(sim(), &plan, 2);
        let first = fleet
            .submit(&wl, &mut Perturbation::none(), &PaperFaithful)
            .unwrap();
        assert_eq!(first.redispatches, 0, "fault must not fire in job 1");
        let second = fleet
            .submit(&wl, &mut Perturbation::none(), &PaperFaithful)
            .unwrap();
        assert_eq!(second.redispatches, 1, "fault fires in job 2");
        let losses = second
            .records
            .iter()
            .filter(|r| r.message.contains("worker lost"))
            .count();
        assert_eq!(losses, 1);
    }
}
