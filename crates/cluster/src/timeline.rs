//! Step-function traces: machines-in-use over time.
//!
//! Figure 1 of the paper plots "the number of machines needed during the
//! dynamic expansion and shrinking of our application run" — a step
//! function assembled from task fork/expiry moments. [`StepTrace`]
//! accumulates `+1/−1` edges and answers the questions the paper asks of
//! it: the value at any time, the peak, and the time-weighted average (the
//! `m` column of Table 1).

/// A right-continuous integer step function built from timestamped deltas.
#[derive(Clone, Debug, Default)]
pub struct StepTrace {
    /// (time, delta) edges, unsorted until finalized.
    edges: Vec<(f64, i64)>,
}

impl StepTrace {
    /// Empty trace.
    pub fn new() -> StepTrace {
        StepTrace::default()
    }

    /// Record a `+1` edge (a machine became busy).
    pub fn inc(&mut self, t: f64) {
        self.edges.push((t, 1));
    }

    /// Record a `−1` edge (a machine went idle).
    pub fn dec(&mut self, t: f64) {
        self.edges.push((t, -1));
    }

    /// Record an interval `[start, end)` of busy time.
    pub fn interval(&mut self, start: f64, end: f64) {
        assert!(end >= start, "interval end {end} before start {start}");
        self.inc(start);
        self.dec(end);
    }

    /// The sorted step points `(time, value-after-time)`, merging
    /// coincident edges.
    pub fn steps(&self) -> Vec<(f64, i64)> {
        let mut edges = self.edges.clone();
        edges.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut out: Vec<(f64, i64)> = Vec::new();
        let mut level = 0i64;
        for (t, d) in edges {
            level += d;
            match out.last_mut() {
                Some((lt, lv)) if *lt == t => *lv = level,
                _ => out.push((t, level)),
            }
        }
        out
    }

    /// Value of the step function at time `t` (right-continuous).
    pub fn value_at(&self, t: f64) -> i64 {
        let mut level = 0;
        for (time, v) in self.steps() {
            if time <= t {
                level = v;
            } else {
                break;
            }
        }
        level
    }

    /// Peak value over the whole trace.
    pub fn peak(&self) -> i64 {
        self.steps().iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// Time-weighted average over `[t0, t1]` — the paper's "weighted
    /// average of the number of machines used during a run".
    pub fn weighted_average(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 > t0, "empty averaging window");
        let steps = self.steps();
        let mut area = 0.0;
        let mut level = 0i64;
        let mut prev = t0;
        for (t, v) in steps {
            if t <= t0 {
                level = v;
                continue;
            }
            if t >= t1 {
                break;
            }
            area += level as f64 * (t - prev);
            prev = t;
            level = v;
        }
        area += level as f64 * (t1 - prev);
        area / (t1 - t0)
    }

    /// Sample the function at `n+1` uniform points over `[t0, t1]`
    /// (plotting helper for Figure 1).
    pub fn sample(&self, t0: f64, t1: f64, n: usize) -> Vec<(f64, i64)> {
        let steps = self.steps();
        let mut out = Vec::with_capacity(n + 1);
        let mut cursor = 0usize;
        let mut level = 0i64;
        for k in 0..=n {
            let t = t0 + (t1 - t0) * k as f64 / n as f64;
            while cursor < steps.len() && steps[cursor].0 <= t {
                level = steps[cursor].1;
                cursor += 1;
            }
            out.push((t, level));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_interval() {
        let mut s = StepTrace::new();
        s.interval(1.0, 3.0);
        assert_eq!(s.value_at(0.5), 0);
        assert_eq!(s.value_at(1.0), 1);
        assert_eq!(s.value_at(2.9), 1);
        assert_eq!(s.value_at(3.0), 0);
        assert_eq!(s.peak(), 1);
    }

    #[test]
    fn overlapping_intervals_stack() {
        let mut s = StepTrace::new();
        s.interval(0.0, 10.0);
        s.interval(2.0, 6.0);
        s.interval(4.0, 5.0);
        assert_eq!(s.value_at(4.5), 3);
        assert_eq!(s.peak(), 3);
        assert_eq!(s.value_at(7.0), 1);
    }

    #[test]
    fn weighted_average_simple() {
        let mut s = StepTrace::new();
        // 1 machine for the first half, 3 for the second.
        s.interval(0.0, 10.0);
        s.interval(5.0, 10.0);
        s.interval(5.0, 10.0);
        let avg = s.weighted_average(0.0, 10.0);
        assert!((avg - 2.0).abs() < 1e-12, "{avg}");
    }

    #[test]
    fn weighted_average_sub_window() {
        let mut s = StepTrace::new();
        s.interval(0.0, 4.0);
        // Window entirely inside the interval.
        assert!((s.weighted_average(1.0, 3.0) - 1.0).abs() < 1e-12);
        // Window extending past the end.
        assert!((s.weighted_average(2.0, 6.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coincident_edges_merge() {
        let mut s = StepTrace::new();
        s.interval(1.0, 2.0);
        s.interval(2.0, 3.0); // the -1 and +1 at t=2 cancel
        let steps = s.steps();
        assert_eq!(steps, vec![(1.0, 1), (2.0, 1), (3.0, 0)]);
    }

    #[test]
    fn sample_tracks_steps() {
        let mut s = StepTrace::new();
        s.interval(0.0, 1.0);
        s.interval(2.0, 3.0);
        let pts = s.sample(0.0, 4.0, 8);
        let vals: Vec<i64> = pts.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![1, 1, 0, 0, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn empty_trace_is_zero() {
        let s = StepTrace::new();
        assert_eq!(s.peak(), 0);
        assert_eq!(s.value_at(5.0), 0);
        assert_eq!(s.weighted_average(0.0, 1.0), 0.0);
    }
}
