//! A minimal deterministic discrete-event queue.
//!
//! Events carry an arbitrary payload and fire in nondecreasing time order;
//! ties break in insertion (FIFO) order, which keeps simulations fully
//! deterministic. [`crate::sim`] uses one to interleave worker deaths with
//! the master's serial timeline.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Schedule `payload` at absolute time `time`.
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(time.is_finite(), "non-finite event time");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest event, advancing the queue clock.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| {
            self.now = self.now.max(e.time);
            (e.time, e.payload)
        })
    }

    /// Pop every event scheduled at or before `t` (in order).
    pub fn pop_until(&mut self, t: f64) -> Vec<(f64, E)> {
        let mut out = Vec::new();
        while self.peek_time().is_some_and(|pt| pt <= t) {
            out.push(self.pop().unwrap());
        }
        out
    }

    /// Time of the most recently popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// No pending events?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn pop_until_respects_bound() {
        let mut q = EventQueue::new();
        for t in [0.5, 1.5, 2.5, 3.5] {
            q.schedule(t, t);
        }
        let early = q.pop_until(2.0);
        assert_eq!(early.len(), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2.5));
    }

    #[test]
    fn clock_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }
}
