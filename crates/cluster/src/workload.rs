//! Workload descriptions consumed by the distributed simulator.
//!
//! A workload is the paper's application seen from the protocol's
//! viewpoint: some sequential master work (initialization, prolongation),
//! and pools of independent jobs, each with a compute cost (architecture-
//! independent flops from the solver's [`solver work counter`]) and
//! input/output payload sizes (what crosses the network).
//!
//! [`solver work counter`]: ../solver/work/struct.WorkCounter.html

use serde::{Deserialize, Serialize};

/// One unit of delegable work (one `subsolve(l, m)` in the paper's
/// application).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Human-readable label (e.g. `subsolve(3, 12)`).
    pub label: String,
    /// Compute cost in flops.
    pub flops: f64,
    /// Bytes the master must send to the worker.
    pub input_bytes: usize,
    /// Bytes the worker sends back.
    pub output_bytes: usize,
}

impl Job {
    /// Construct a job.
    pub fn new(
        label: impl Into<String>,
        flops: f64,
        input_bytes: usize,
        output_bytes: usize,
    ) -> Job {
        Job {
            label: label.into(),
            flops,
            input_bytes,
            output_bytes,
        }
    }
}

/// A complete application run, protocol-shaped.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Description (e.g. `level 15, tol 1.0e-3`).
    pub name: String,
    /// Master-side initialization flops (before the first pool).
    pub init_flops: f64,
    /// Master-side prolongation flops (after the last pool).
    pub prolong_flops: f64,
    /// Pools of jobs, in protocol order. The paper's application uses a
    /// single pool containing all `2·level + 1` subsolves.
    pub pools: Vec<Vec<Job>>,
    /// Master flops spent per byte when preparing a worker's input
    /// (serializing the global data-structure segment).
    pub feed_flops_per_byte: f64,
    /// Master flops spent per byte when storing a result back into the
    /// global data structure.
    pub collect_flops_per_byte: f64,
}

impl Workload {
    /// Total job count.
    pub fn job_count(&self) -> usize {
        self.pools.iter().map(Vec::len).sum()
    }

    /// Total flops of the equivalent *sequential* program: init + every
    /// job + prolongation. (The sequential version moves no data.)
    pub fn sequential_flops(&self) -> f64 {
        self.init_flops
            + self.prolong_flops
            + self.pools.iter().flatten().map(|j| j.flops).sum::<f64>()
    }

    /// Largest single job (the lower bound on the concurrent critical
    /// path).
    pub fn max_job_flops(&self) -> f64 {
        self.pools
            .iter()
            .flatten()
            .map(|j| j.flops)
            .fold(0.0, f64::max)
    }

    /// The workload's job stream replicated `copies` times into a single
    /// pool — a stand-in for a fleet serving `copies` independent
    /// submissions at once, which is what the 1,000–10,000-host scaling
    /// study needs (the paper's single run has only `2·level + 1` jobs).
    /// Labels gain a `#k` copy suffix; master-side init/prolongation are
    /// scaled with the copies.
    pub fn replicate(&self, copies: usize) -> Workload {
        let copies = copies.max(1);
        let mut pool = Vec::with_capacity(self.job_count() * copies);
        for k in 0..copies {
            for job in self.pools.iter().flatten() {
                let mut j = job.clone();
                if k > 0 {
                    j.label = format!("{}#{k}", job.label);
                }
                pool.push(j);
            }
        }
        Workload {
            name: format!("{} ×{copies}", self.name),
            init_flops: self.init_flops * copies as f64,
            prolong_flops: self.prolong_flops * copies as f64,
            pools: vec![pool],
            feed_flops_per_byte: self.feed_flops_per_byte,
            collect_flops_per_byte: self.collect_flops_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Workload {
        Workload {
            name: "test".into(),
            init_flops: 10.0,
            prolong_flops: 5.0,
            pools: vec![
                vec![Job::new("a", 100.0, 8, 16), Job::new("b", 200.0, 8, 16)],
                vec![Job::new("c", 50.0, 8, 16)],
            ],
            feed_flops_per_byte: 1.0,
            collect_flops_per_byte: 1.0,
        }
    }

    #[test]
    fn totals() {
        let w = wl();
        assert_eq!(w.job_count(), 3);
        assert_eq!(w.sequential_flops(), 365.0);
        assert_eq!(w.max_job_flops(), 200.0);
    }

    #[test]
    fn replicate_scales_jobs_and_keeps_labels_distinct() {
        let w = wl().replicate(3);
        assert_eq!(w.pools.len(), 1);
        assert_eq!(w.job_count(), 9);
        assert_eq!(w.init_flops, 30.0);
        assert_eq!(w.prolong_flops, 15.0);
        let mut labels: Vec<&str> = w.pools[0].iter().map(|j| j.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 9, "copy suffixes keep labels unique");
        assert_eq!(wl().replicate(1).job_count(), 3);
    }

    #[test]
    fn empty_workload() {
        let w = Workload {
            name: "empty".into(),
            init_flops: 1.0,
            prolong_flops: 2.0,
            pools: vec![],
            feed_flops_per_byte: 0.0,
            collect_flops_per_byte: 0.0,
        };
        assert_eq!(w.job_count(), 0);
        assert_eq!(w.sequential_flops(), 3.0);
        assert_eq!(w.max_job_flops(), 0.0);
    }
}
