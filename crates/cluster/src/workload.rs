//! Workload descriptions consumed by the distributed simulator.
//!
//! A workload is the paper's application seen from the protocol's
//! viewpoint: some sequential master work (initialization, prolongation),
//! and pools of independent jobs, each with a compute cost (architecture-
//! independent flops from the solver's [`solver work counter`]) and
//! input/output payload sizes (what crosses the network).
//!
//! [`solver work counter`]: ../solver/work/struct.WorkCounter.html

use serde::{Deserialize, Serialize};

/// One unit of delegable work (one `subsolve(l, m)` in the paper's
/// application).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Human-readable label (e.g. `subsolve(3, 12)`).
    pub label: String,
    /// Compute cost in flops.
    pub flops: f64,
    /// Bytes the master must send to the worker.
    pub input_bytes: usize,
    /// Bytes the worker sends back.
    pub output_bytes: usize,
}

impl Job {
    /// Construct a job.
    pub fn new(
        label: impl Into<String>,
        flops: f64,
        input_bytes: usize,
        output_bytes: usize,
    ) -> Job {
        Job {
            label: label.into(),
            flops,
            input_bytes,
            output_bytes,
        }
    }
}

/// A complete application run, protocol-shaped.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Description (e.g. `level 15, tol 1.0e-3`).
    pub name: String,
    /// Master-side initialization flops (before the first pool).
    pub init_flops: f64,
    /// Master-side prolongation flops (after the last pool).
    pub prolong_flops: f64,
    /// Pools of jobs, in protocol order. The paper's application uses a
    /// single pool containing all `2·level + 1` subsolves.
    pub pools: Vec<Vec<Job>>,
    /// Master flops spent per byte when preparing a worker's input
    /// (serializing the global data-structure segment).
    pub feed_flops_per_byte: f64,
    /// Master flops spent per byte when storing a result back into the
    /// global data structure.
    pub collect_flops_per_byte: f64,
}

impl Workload {
    /// Total job count.
    pub fn job_count(&self) -> usize {
        self.pools.iter().map(Vec::len).sum()
    }

    /// Total flops of the equivalent *sequential* program: init + every
    /// job + prolongation. (The sequential version moves no data.)
    pub fn sequential_flops(&self) -> f64 {
        self.init_flops
            + self.prolong_flops
            + self.pools.iter().flatten().map(|j| j.flops).sum::<f64>()
    }

    /// Largest single job (the lower bound on the concurrent critical
    /// path).
    pub fn max_job_flops(&self) -> f64 {
        self.pools
            .iter()
            .flatten()
            .map(|j| j.flops)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Workload {
        Workload {
            name: "test".into(),
            init_flops: 10.0,
            prolong_flops: 5.0,
            pools: vec![
                vec![Job::new("a", 100.0, 8, 16), Job::new("b", 200.0, 8, 16)],
                vec![Job::new("c", 50.0, 8, 16)],
            ],
            feed_flops_per_byte: 1.0,
            collect_flops_per_byte: 1.0,
        }
    }

    #[test]
    fn totals() {
        let w = wl();
        assert_eq!(w.job_count(), 3);
        assert_eq!(w.sequential_flops(), 365.0);
        assert_eq!(w.max_job_flops(), 200.0);
    }

    #[test]
    fn empty_workload() {
        let w = Workload {
            name: "empty".into(),
            init_flops: 1.0,
            prolong_flops: 2.0,
            pools: vec![],
            feed_flops_per_byte: 0.0,
            collect_flops_per_byte: 0.0,
        };
        assert_eq!(w.job_count(), 0);
        assert_eq!(w.sequential_flops(), 3.0);
        assert_eq!(w.max_job_flops(), 0.0);
    }
}
