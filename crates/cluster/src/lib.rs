//! # cluster — a simulated cluster of workstations
//!
//! The paper evaluates the renovated application "on a cluster of 32 single
//! processor workstations … All the machines in our cluster have an AMD
//! Athlon Processor and a cache size of 256Kb. However 24 machines have a
//! clock cycle of 1200Hz, 5 machines have a clock cycle of 1400Hz, and 3
//! machines have a clock cycle of 1466Hz. … The workstations in the cluster
//! are connected to each other by a switched Ethernet (100 Mbps)."
//!
//! We do not have that cluster, so this crate simulates it: a
//! discrete-event timeline model of the *distributed* execution of the
//! master/worker protocol, faithful to the MANIFOLD semantics that shape
//! the paper's results:
//!
//! * the master is strictly serial — it requests workers, feeds them data
//!   and collects their results one at a time through its own ports;
//! * task instances are forked and reused according to the *same*
//!   [`manifold::link::Bundler`] the live runtime uses (`perpetual`,
//!   `load 1`, one worker per machine);
//! * workers compute concurrently, each at its host's speed, perturbed by a
//!   seeded multi-user noise model (the paper ran at night, five times, and
//!   averaged);
//! * every data transfer crosses the 100 Mbps switched Ethernet model.
//!
//! Outputs per run: the elapsed (virtual) wall-clock time, the §6-format
//! chronological `Welcome`/`Bye` trace with virtual timestamps, and the
//! machines-in-use step function behind Figure 1 and the `m` column of
//! Table 1.

//!
//! The [`shard`] module extends the DES past the paper's lab: a sharded
//! fleet of 1,000–10,000 synthetic hosts ([`hosts::synthetic_cluster`])
//! behind a two-level fabric ([`network::FabricModel`]), used by the
//! scaling study to chart where the flat master saturates and how the
//! hierarchical topology keeps scaling.

pub mod des;
pub mod hosts;
pub mod network;
pub mod noise;
pub mod shard;
pub mod sim;
pub mod timeline;
pub mod workload;

pub use hosts::{paper_cluster, synthetic_cluster, ClusterSpec, Host};
pub use network::{FabricModel, NetworkModel};
pub use noise::Perturbation;
pub use shard::{ShardReport, ShardSimOpts, ShardedSim};
pub use sim::{CoordCosts, DistributedReport, DistributedSim, SimFleet};
pub use timeline::StepTrace;
pub use workload::{Job, Workload};
