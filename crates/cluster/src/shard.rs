//! The sharded discrete-event simulator: hierarchical shard masters over
//! an elastic fleet, in virtual time.
//!
//! [`crate::sim`] models the paper's topology faithfully — one serial
//! master feeding one pool. That topology saturates once the master's
//! per-job feed time (worker creation, serialization, the network write)
//! stops being negligible next to the job compute divided by the fleet
//! size: past that point adding hosts adds nothing, which is exactly the
//! §4.2 "more demanding master" observation. This module simulates the
//! sharded generalization at 1,000–10,000 hosts:
//!
//! * the fleet is partitioned into `S` pools, each behind its own shard
//!   master (a dedicated host); a lightweight root on the start-up machine
//!   partitions the job stream cost-aware ([`protocol::ShardPlan`]) and
//!   only coordinates — it never touches job payloads;
//! * each shard master runs the *same* serial feed/collect discipline as
//!   the flat master — the existing [`DispatchPolicy`] applies unchanged
//!   over the shard's slice (order and in-flight window);
//! * an idle shard steals queued work from the most loaded one with the
//!   pop-two-merge discipline ([`protocol::StealQueues`]); a stolen job's
//!   input crosses the inter-pool link of the [`FabricModel`], so stealing
//!   has a price the DES charges;
//! * membership is elastic: a [`protocol::ChurnPlan`] joins or retires
//!   workers at fleet-wide dispatch ordinals, and a chaos `poolkill@N`
//!   token kills shard master `N` mid-run — the root re-homes its workers
//!   and still-queued jobs onto the surviving shards, exactly once.
//!
//! `shards = 1` runs the *same* model with the root as the single master
//! and no hierarchy overhead — that is the flat baseline every sharded
//! sweep is measured against, so the saturation comparison is internally
//! consistent. Numerical bit-identity is not at stake here (the DES only
//! produces virtual *time*; results are replayed sequentially by the
//! engine), but the dispatch bookkeeping is the same [`ShardPlan`] the
//! live master uses, so the sharded dispatch order agrees across backends
//! by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use chaos::FaultPlan;
use manifold::config::HostName;
use manifold::trace::TraceRecord;
use manifold::Name;
use protocol::{ChurnPlan, DispatchPolicy, MembershipDirectory, ShardPlan, ShardSpec, StealQueues};

use crate::hosts::ClusterSpec;
use crate::network::FabricModel;
use crate::noise::Perturbation;
use crate::sim::{CoordCosts, TRACE_EPOCH_SECS};
use crate::workload::Workload;

/// Options of one sharded run.
#[derive(Clone, Debug)]
pub struct ShardSimOpts {
    /// Topology: shard count and stealing.
    pub spec: ShardSpec,
    /// Worker join/leave schedule, keyed by fleet-wide dispatch ordinal.
    pub churn: ChurnPlan,
    /// Fault schedule; only the `poolkill@N` token is meaningful here
    /// (worker faults are the flat simulator's concern).
    pub faults: FaultPlan,
    /// Seed of the multi-user noise model (`u64::MAX` disables noise —
    /// use [`ShardSimOpts::quiet`]).
    pub noise_seed: u64,
    /// Override the number of *worker* hosts per pool (for asymmetric
    /// topologies in tests). Must sum to at most the available workers.
    pub pool_hosts: Option<Vec<usize>>,
}

impl ShardSimOpts {
    /// `shards` shard masters, stealing on, no churn, no faults, quiet.
    pub fn new(shards: usize) -> ShardSimOpts {
        ShardSimOpts {
            spec: ShardSpec::new(shards),
            churn: ChurnPlan::default(),
            faults: FaultPlan::default(),
            noise_seed: u64::MAX,
            pool_hosts: None,
        }
    }

    /// Disable noise (fully quiet machines).
    pub fn quiet(mut self) -> ShardSimOpts {
        self.noise_seed = u64::MAX;
        self
    }

    /// Enable the overnight noise model with this seed.
    pub fn with_noise(mut self, seed: u64) -> ShardSimOpts {
        self.noise_seed = seed;
        self
    }
}

/// What one sharded run produces.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Elapsed virtual seconds from startup to the root's rendezvous.
    pub elapsed: f64,
    /// Jobs completed (always the workload's job count).
    pub jobs: usize,
    /// Effective shard count (after clamping to the fleet size).
    pub shards: usize,
    /// Aggregate throughput in jobs per virtual second.
    pub throughput: f64,
    /// Pop-two-merge steals that fired.
    pub steals: usize,
    /// Workers that joined mid-run.
    pub joins: usize,
    /// Workers that left mid-run.
    pub leaves: usize,
    /// Re-home events (0 or 1: a `poolkill` triggers exactly one).
    pub rehomes: usize,
    /// Jobs re-dispatched because their shard master died holding them.
    pub redispatches: usize,
    /// Jobs completed per shard (stolen jobs count for the thief).
    pub per_shard_jobs: Vec<usize>,
    /// Virtual time each shard went idle for good.
    pub shard_finish: Vec<f64>,
    /// Steal/join/leave/poolkill/re-home events, §6-trace-formatted.
    pub records: Vec<TraceRecord>,
}

impl ShardReport {
    /// Spread between the first and last shard to finish — the starvation
    /// metric work stealing is meant to bound.
    pub fn finish_spread(&self) -> f64 {
        let finite: Vec<f64> = self
            .shard_finish
            .iter()
            .copied()
            .filter(|t| t.is_finite())
            .collect();
        let max = finite.iter().copied().fold(f64::MIN, f64::max);
        let min = finite.iter().copied().fold(f64::MAX, f64::min);
        if finite.is_empty() {
            0.0
        } else {
            max - min
        }
    }
}

/// The sharded simulator configuration.
#[derive(Clone, Debug)]
pub struct ShardedSim {
    /// The machines (host 0 is the root's start-up machine).
    pub cluster: ClusterSpec,
    /// The two-level interconnect.
    pub fabric: FabricModel,
    /// Coordination-layer costs (same constants as the flat simulator).
    pub costs: CoordCosts,
}

/// Per-worker-slot state inside one pool.
#[derive(Clone, Copy, Debug)]
struct WorkerSlot {
    host: usize,
    member: u64,
    free_at: f64,
}

/// Min-heap key over f64 virtual times.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Key(f64);

impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One in-flight job awaiting collection by its shard master.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    seq_index: usize,
    output_bytes: usize,
    collected: bool,
}

struct PoolState {
    master_host: usize,
    master_free: f64,
    alive: bool,
    // Worker slots, min-heap by next-free time.
    workers: BinaryHeap<(Reverse<Key>, usize)>,
    slots: Vec<WorkerSlot>,
    inflight: BinaryHeap<(Reverse<Key>, usize)>, // keyed by done_at → InFlight index
    inflights: Vec<InFlight>,
    window: usize,
    dispatched: usize,
    completed: usize,
    finish: f64,
}

impl ShardedSim {
    /// A sharded simulator over `cluster` with the two-level 2004 fabric
    /// and paper-era coordination costs.
    pub fn new(cluster: ClusterSpec) -> ShardedSim {
        ShardedSim {
            cluster,
            fabric: FabricModel::two_level_2004(),
            costs: CoordCosts::paper_era(),
        }
    }

    /// Simulate one sharded run of `wl` under `policy`.
    ///
    /// The job stream is flattened across the workload's pools, ordered by
    /// the policy exactly as the flat master orders it, then partitioned
    /// over the shards cost-aware. Each shard master serializes its feeds
    /// and collects under the policy's in-flight window; workers compute
    /// concurrently at their host's (noise-perturbed) speed.
    pub fn run(
        &self,
        wl: &Workload,
        policy: &dyn DispatchPolicy,
        opts: &ShardSimOpts,
    ) -> ShardReport {
        let jobs: Vec<&crate::workload::Job> = wl.pools.iter().flatten().collect();
        let costs_vec: Vec<f64> = jobs.iter().map(|j| j.flops).collect();
        let order = policy.order(&costs_vec);
        assert_eq!(order.len(), jobs.len(), "policy must return a permutation");
        // Dispatch-order cost vector feeding the root's partition.
        let seq_costs: Vec<f64> = order.iter().map(|&j| costs_vec[j]).collect();

        // Clamp the topology to the fleet: a sharded run needs a root plus
        // one master and one worker per shard.
        let n_hosts = self.cluster.len();
        let max_shards = if n_hosts >= 3 { (n_hosts - 1) / 2 } else { 1 };
        let shards = opts.spec.shards.clamp(1, max_shards.max(1));

        let plan = ShardPlan::partition(&seq_costs, shards);
        let mut queues = StealQueues::new(&plan);
        let mut directory = MembershipDirectory::new(shards);
        let mut noise = if opts.noise_seed == u64::MAX {
            Perturbation::none()
        } else {
            Perturbation::overnight(opts.noise_seed)
        };

        // ---- host partition ----------------------------------------------
        // Host 0 is the root. In the flat case the root *is* the master and
        // every other host is a worker; sharded, each pool takes a
        // contiguous slice (one edge switch), its first host the dedicated
        // shard master.
        let mut pools: Vec<PoolState> = Vec::with_capacity(shards);
        let t0 = self.costs.startup
            + self
                .cluster
                .compute_time(&self.cluster.hosts[0].name, wl.init_flops);
        let worker_hosts: Vec<usize> = (1..n_hosts).collect();
        if shards == 1 {
            let mut p = new_pool(0, t0 + self.costs.pool_setup);
            for &h in &worker_hosts {
                let member = h as u64;
                directory.join_to(member, 0);
                p.slots.push(WorkerSlot {
                    host: h,
                    member,
                    free_at: 0.0,
                });
            }
            pools.push(p);
        } else {
            // Carve off the S shard-master hosts first, then split the rest.
            let masters: Vec<usize> = worker_hosts[..shards].to_vec();
            let rest = &worker_hosts[shards..];
            let counts: Vec<usize> = match &opts.pool_hosts {
                Some(c) => {
                    assert_eq!(c.len(), shards, "pool_hosts must have one entry per shard");
                    assert!(
                        c.iter().sum::<usize>() <= rest.len(),
                        "pool_hosts exceed fleet"
                    );
                    c.clone()
                }
                None => {
                    let base = rest.len() / shards;
                    let extra = rest.len() % shards;
                    (0..shards).map(|s| base + usize::from(s < extra)).collect()
                }
            };
            let mut cursor = 0usize;
            for s in 0..shards {
                // Hierarchy handoff: the root ships shard `s` its queue
                // descriptor over the inter-pool link.
                let handoff = t0
                    + self.costs.pool_setup
                    + self.costs.event_latency
                    + self.fabric.inter.remote_transfer(64 * queues.pending(s));
                let mut p = new_pool(masters[s], handoff);
                for &h in &rest[cursor..cursor + counts[s]] {
                    directory.join_to(h as u64, s);
                    p.slots.push(WorkerSlot {
                        host: h,
                        member: h as u64,
                        free_at: 0.0,
                    });
                }
                cursor += counts[s];
                pools.push(p);
            }
        }
        for (s, p) in pools.iter_mut().enumerate() {
            p.window = policy.window(queues.pending(s)).max(1);
            for (i, slot) in p.slots.iter().enumerate() {
                p.workers.push((Reverse(Key(slot.free_at)), i));
            }
        }

        // ---- event loop --------------------------------------------------
        let mut records: Vec<TraceRecord> = Vec::new();
        let mut dispatch_no = 0u64;
        let mut steals = 0usize;
        let mut joins = 0usize;
        let mut leaves = 0usize;
        let mut redispatches = 0usize;
        let mut join_iter = opts.churn.joins.iter().peekable();
        let mut leave_iter = opts.churn.leaves.iter().peekable();
        let mut synthetic_host_seq = 0usize;
        let kill = opts.faults.pool_kill().map(|pool| {
            let pool = (pool as usize).min(shards.saturating_sub(1));
            // The shard master dies after dispatching half its assigned
            // queue — deterministic, and always mid-run for 2+ jobs.
            (pool, queues.pending(pool).div_ceil(2).max(1))
        });
        let mut killed = false;
        let mut per_shard_jobs = vec![0usize; shards];

        loop {
            // The next shard master able to hand out work: smallest
            // master-free time among the alive shards that still have (or
            // can steal) queued jobs.
            let mut next: Option<usize> = None;
            for (s, p) in pools.iter().enumerate() {
                if !p.alive {
                    continue;
                }
                // A shard can progress when its own queue has work, or when
                // stealing is on and some *other* queue has more than one
                // job queued (the steal discipline never takes a last job —
                // using the same predicate here keeps the loop terminating).
                let stealable =
                    opts.spec.steal && (0..pools.len()).any(|i| i != s && queues.pending(i) > 1);
                if queues.pending(s) == 0 && !stealable {
                    continue;
                }
                match next {
                    Some(b) if pools[b].master_free <= p.master_free => {}
                    _ => next = Some(s),
                }
            }
            let Some(s) = next else { break };

            if queues.pending(s) == 0 {
                // Pop-two-merge steal: the idle shard master asks the root,
                // which brokers two jobs off the most loaded queue. One
                // inter-pool round trip, charged to the thief.
                // The selection predicate above matches steal_into's victim
                // rule exactly, so this cannot fail; break defensively
                // rather than loop if it ever did.
                let Some(ev) = queues.steal_into(s) else {
                    break;
                };
                steals += 1;
                let t = pools[s].master_free
                    + 2.0 * self.fabric.inter.latency
                    + self.costs.event_latency;
                pools[s].master_free = t;
                self.push_event(
                    &mut records,
                    s,
                    &pools,
                    t,
                    &format!(
                        "steal: shard {} <- shard {} ({} jobs)",
                        ev.thief,
                        ev.victim,
                        ev.jobs.len()
                    ),
                );
            }

            let k = queues.pop_own(s).expect("shard selected with work");
            let job = jobs[order[k]];
            let stolen = plan.assignment[k] != s;
            dispatch_no += 1;

            // Membership churn, keyed by the fleet-wide dispatch ordinal.
            while join_iter.peek().is_some_and(|&&at| at <= dispatch_no) {
                join_iter.next();
                // A fresh host reports in; the root assigns the
                // least-populated pool and the worker forks there.
                let census = directory.census();
                let target = census
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| pools[i].alive)
                    .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
                    .map(|(i, _)| i)
                    .unwrap_or(s);
                synthetic_host_seq += 1;
                let member = (n_hosts + synthetic_host_seq) as u64;
                directory.join_to(member, target);
                let t = pools[target].master_free + self.costs.task_fork + self.costs.activation;
                let slot = WorkerSlot {
                    // Joining hosts run at reference speed (host index
                    // out of range ⇒ reference clock).
                    host: usize::MAX,
                    member,
                    free_at: t,
                };
                let idx = pools[target].slots.len();
                pools[target].slots.push(slot);
                pools[target].workers.push((Reverse(Key(t)), idx));
                joins += 1;
                self.push_event(
                    &mut records,
                    target,
                    &pools,
                    t,
                    &format!("join: worker {member} -> pool {target} (Welcome)"),
                );
            }
            while leave_iter.peek().is_some_and(|&&at| at <= dispatch_no) {
                leave_iter.next();
                // The most-populated pool retires one worker (gracefully:
                // it finishes its current job first — removing the slot
                // from the rotation is exactly that).
                let target = (0..shards)
                    .filter(|&i| pools[i].alive && pools[i].workers.len() > 1)
                    .max_by(|&a, &b| {
                        pools[a]
                            .workers
                            .len()
                            .cmp(&pools[b].workers.len())
                            .then(b.cmp(&a))
                    });
                if let Some(target) = target {
                    if let Some((Reverse(Key(t)), idx)) = pools[target].workers.pop() {
                        let member = pools[target].slots[idx].member;
                        directory.leave(member);
                        leaves += 1;
                        self.push_event(
                            &mut records,
                            target,
                            &pools,
                            t.max(pools[target].master_free),
                            &format!("leave: worker {member} <- pool {target} (Bye)"),
                        );
                    }
                }
            }

            // Window backpressure: collect before exceeding the policy's
            // in-flight bound (the same discipline as the flat master),
            // further capped by the pool's worker count — a `load 1` pool
            // cannot hold more jobs in flight than it has workers, and it
            // is exactly this cap that leaves excess work *queued* where an
            // idle shard can steal it.
            let window = pools[s].window.min(pools[s].workers.len()).max(1);
            while pools[s].inflight.len() >= window {
                collect_one(&mut pools[s], self, wl);
            }

            // Serial master work: worker creation, then the feed. A stolen
            // job's input lives in the victim's region and crosses the
            // inter-pool link.
            let mhost = self.host_name(pools[s].master_host);
            let mspeed = self.cluster.flops_per_sec(&mhost);
            let feed = wl.feed_flops_per_byte * job.input_bytes as f64 / mspeed
                + self.fabric.transfer(job.input_bytes, false, !stolen);
            pools[s].master_free += self.costs.worker_create + self.costs.event_latency + feed;
            pools[s].dispatched += 1;

            // The worker computes concurrently on the pool's earliest-free
            // host.
            let (Reverse(Key(free)), idx) = pools[s]
                .workers
                .pop()
                .expect("pool must keep at least one worker");
            let whost_idx = pools[s].slots[idx].host;
            let wspeed = if whost_idx < n_hosts {
                self.cluster
                    .flops_per_sec(&self.cluster.hosts[whost_idx].name)
            } else {
                self.cluster.ref_flops_per_sec
            };
            let start = pools[s].master_free.max(free) + self.costs.activation;
            let compute = noise.perturb(job.flops / wspeed);
            let done = start + compute;
            pools[s].slots[idx].free_at = done;
            pools[s].workers.push((Reverse(Key(done)), idx));
            let fl = pools[s].inflights.len();
            pools[s].inflights.push(InFlight {
                seq_index: k,
                output_bytes: job.output_bytes,
                collected: false,
            });
            pools[s].inflight.push((Reverse(Key(done)), fl));
            per_shard_jobs[s] += 1;

            // poolkill: the sentenced shard master dies after dispatching
            // half its assigned queue. The root supervises: still-queued
            // and in-flight jobs re-home to the survivors, workers follow.
            if let Some((kp, at)) = kill {
                if !killed && s == kp && pools[s].dispatched >= at && shards > 1 {
                    killed = true;
                    let t = pools[s].master_free;
                    self.push_event(
                        &mut records,
                        s,
                        &pools,
                        t,
                        &format!("poolkill: shard {s} master lost"),
                    );
                    // Queued jobs re-home through the shared queue logic...
                    let moved_jobs = queues.rehome(s);
                    // ...in-flight jobs die with the master that would have
                    // collected them: re-dispatch on the survivors.
                    let orphans: Vec<usize> = pools[s]
                        .inflights
                        .iter()
                        .filter(|f| !f.collected)
                        .map(|f| f.seq_index)
                        .collect();
                    redispatches += orphans.len();
                    for (i, k2) in orphans.into_iter().enumerate() {
                        let target = (s + 1 + (i % (shards - 1))) % shards;
                        queues.requeue(target, k2);
                    }
                    let moved_workers = directory.rehome_pool(s);
                    // Workers physically re-home: they reconnect to their
                    // new masters after one inter-pool round trip.
                    let mut drained: Vec<(Reverse<Key>, usize)> =
                        std::mem::take(&mut pools[s].workers).into_vec();
                    drained.sort_by_key(|&(Reverse(k), _)| k);
                    for (i, (Reverse(Key(free)), idx)) in drained.into_iter().enumerate() {
                        let target = (s + 1 + (i % (shards - 1))) % shards;
                        let slot = pools[s].slots[idx];
                        let rejoin =
                            free.max(t) + 2.0 * self.fabric.inter.latency + self.costs.activation;
                        let nidx = pools[target].slots.len();
                        pools[target].slots.push(WorkerSlot {
                            host: slot.host,
                            member: slot.member,
                            free_at: rejoin,
                        });
                        pools[target].workers.push((Reverse(Key(rejoin)), nidx));
                    }
                    pools[s].alive = false;
                    pools[s].finish = t;
                    self.push_event(
                        &mut records,
                        s,
                        &pools,
                        t,
                        &format!(
                            "re-home: {moved_workers} workers, {} jobs -> surviving shards",
                            moved_jobs + redispatches
                        ),
                    );
                }
            }
        }

        // Drain: every shard collects its outstanding results, then the
        // root rendezvouses and runs the prolongation.
        for p in pools.iter_mut() {
            if p.alive {
                finish_pool(p, self, wl);
            }
        }
        let root_host = self.host_name(0);
        let mut t_end = t0;
        for p in &pools {
            if p.finish.is_finite() {
                t_end = t_end.max(p.finish);
            }
        }
        if shards > 1 {
            // Per-shard completion reports cross the inter-pool link.
            t_end += shards as f64 * self.costs.event_latency + self.fabric.inter.latency;
        }
        t_end += self.costs.event_latency + self.cluster.compute_time(&root_host, wl.prolong_flops);

        let jobs_done = jobs.len();
        ShardReport {
            elapsed: t_end,
            jobs: jobs_done,
            shards,
            throughput: if t_end > 0.0 {
                jobs_done as f64 / t_end
            } else {
                0.0
            },
            steals,
            joins,
            leaves,
            rehomes: directory.rehomes(),
            redispatches,
            per_shard_jobs,
            shard_finish: pools.iter().map(|p| p.finish).collect(),
            records,
        }
    }

    fn host_name(&self, idx: usize) -> HostName {
        self.cluster.hosts[idx.min(self.cluster.len() - 1)]
            .name
            .clone()
    }

    fn push_event(
        &self,
        records: &mut Vec<TraceRecord>,
        shard: usize,
        pools: &[PoolState],
        t: f64,
        msg: &str,
    ) {
        let micros = (t.max(0.0) * 1e6).round() as u64;
        records.push(TraceRecord {
            host: self.host_name(pools[shard].master_host),
            task_uid: (shard as u64 + 1) << 18,
            proc_uid: shard as u64 + 2,
            secs: TRACE_EPOCH_SECS + micros / 1_000_000,
            usecs: (micros % 1_000_000) as u32,
            task_name: Name::new("mainprog"),
            manifold_name: Name::new("ShardMaster(event)"),
            source_file: "ResSourceCode.c".into(),
            line: 0,
            message: msg.into(),
        });
    }
}

fn new_pool(master_host: usize, master_free: f64) -> PoolState {
    PoolState {
        master_host,
        master_free,
        alive: true,
        workers: BinaryHeap::new(),
        slots: Vec::new(),
        inflight: BinaryHeap::new(),
        inflights: Vec::new(),
        window: 1,
        dispatched: 0,
        completed: 0,
        finish: f64::INFINITY,
    }
}

/// Collect the earliest-finishing in-flight job: the master waits for it,
/// then pays the collect serialization and the result transfer.
fn collect_one(p: &mut PoolState, sim: &ShardedSim, wl: &Workload) {
    let Some((Reverse(Key(done)), fi)) = p.inflight.pop() else {
        return;
    };
    let job_bytes = p.inflights[fi].output_bytes;
    p.inflights[fi].collected = true;
    let mhost = sim.host_name(p.master_host);
    let mspeed = sim.cluster.flops_per_sec(&mhost);
    let collect = wl.collect_flops_per_byte * job_bytes as f64 / mspeed
        + sim.fabric.transfer(job_bytes, false, true);
    p.master_free = p.master_free.max(done) + collect + sim.costs.event_latency;
    p.completed += 1;
}

fn finish_pool(p: &mut PoolState, sim: &ShardedSim, wl: &Workload) {
    while !p.inflight.is_empty() {
        collect_one(p, sim, wl);
    }
    if p.finish.is_infinite() {
        p.finish = p.master_free;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosts::{paper_cluster, synthetic_cluster};
    use crate::workload::Job;

    fn uniform_workload(jobs: usize, flops: f64) -> Workload {
        Workload {
            name: format!("{jobs} uniform jobs"),
            init_flops: 1e6,
            prolong_flops: 1e6,
            pools: vec![(0..jobs)
                .map(|i| Job::new(format!("subsolve(0, {i})"), flops, 64 * 1024, 64 * 1024))
                .collect()],
            feed_flops_per_byte: 2.0,
            collect_flops_per_byte: 2.0,
        }
    }

    #[test]
    fn flat_and_sharded_complete_all_jobs() {
        let wl = uniform_workload(64, 5e9);
        let sim = ShardedSim::new(paper_cluster(1e9));
        for shards in [1usize, 2, 4, 8] {
            let r = sim.run(&wl, &protocol::PaperFaithful, &ShardSimOpts::new(shards));
            assert_eq!(r.jobs, 64);
            assert_eq!(r.shards, shards);
            assert_eq!(r.per_shard_jobs.iter().sum::<usize>(), 64);
            assert!(r.elapsed.is_finite() && r.elapsed > 0.0);
        }
    }

    #[test]
    fn same_seed_same_elapsed() {
        let wl = uniform_workload(48, 3e9);
        let sim = ShardedSim::new(paper_cluster(1e9));
        let opts = ShardSimOpts::new(4).with_noise(11);
        let a = sim.run(&wl, &protocol::CostAware, &opts);
        let b = sim.run(&wl, &protocol::CostAware, &opts);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steals, b.steals);
        assert_eq!(a.per_shard_jobs, b.per_shard_jobs);
    }

    #[test]
    fn sharding_beats_flat_on_a_large_fleet() {
        // 1,000 hosts, a job stream long enough to occupy them: the flat
        // master's serial feed saturates; 16 shard masters do not.
        let cluster = synthetic_cluster(1000, 42, 1e9);
        let wl = uniform_workload(2000, 10e9);
        let sim = ShardedSim::new(cluster);
        let flat = sim.run(&wl, &protocol::PaperFaithful, &ShardSimOpts::new(1));
        let sharded = sim.run(&wl, &protocol::PaperFaithful, &ShardSimOpts::new(16));
        assert!(
            sharded.throughput >= 2.0 * flat.throughput,
            "sharded {:.2} jobs/s vs flat {:.2} jobs/s",
            sharded.throughput,
            flat.throughput
        );
    }

    #[test]
    fn work_stealing_drains_a_loaded_pool_in_bounded_time() {
        // Asymmetric pools: shard 0 has 2 workers, shard 1 has 20. The
        // LPT partition still splits the *costs* evenly, so shard 1 goes
        // idle early — stealing must drain shard 0's queue and bound the
        // finish spread.
        let cluster = paper_cluster(1e9);
        let wl = uniform_workload(60, 8e9);
        let sim = ShardedSim::new(cluster);
        let mut opts = ShardSimOpts::new(2);
        opts.pool_hosts = Some(vec![2, 20]);
        let stealing = sim.run(&wl, &protocol::PaperFaithful, &opts);
        let mut no_steal = opts.clone();
        no_steal.spec = no_steal.spec.with_steal(false);
        let starved = sim.run(&wl, &protocol::PaperFaithful, &no_steal);
        assert!(stealing.steals > 0, "the idle pool must steal");
        assert!(
            stealing.elapsed < starved.elapsed,
            "stealing {:.1}s must beat starving {:.1}s",
            stealing.elapsed,
            starved.elapsed
        );
        // Bounded starvation: the idle pool keeps the loaded pool's tail,
        // so both shards finish within a couple of job-lengths of each
        // other instead of one idling for half the run.
        let job_len = 8e9 / 1e9;
        assert!(
            stealing.finish_spread() < 4.0 * job_len,
            "finish spread {:.1}s exceeds bound",
            stealing.finish_spread()
        );
        assert!(starved.finish_spread() > stealing.finish_spread());
        // Steal events are attributed in the trace.
        assert!(stealing
            .records
            .iter()
            .any(|r| r.message.starts_with("steal: shard 1 <- shard 0")));
    }

    #[test]
    fn poolkill_rehomes_exactly_once_and_loses_nothing() {
        let wl = uniform_workload(64, 5e9);
        let sim = ShardedSim::new(paper_cluster(1e9));
        let mut opts = ShardSimOpts::new(4);
        opts.faults = FaultPlan::parse("poolkill@1").unwrap();
        let r = sim.run(&wl, &protocol::PaperFaithful, &opts);
        assert_eq!(r.rehomes, 1, "exactly one re-home per poolkill");
        assert_eq!(r.per_shard_jobs.iter().sum::<usize>(), 64 + r.redispatches);
        assert!(r.redispatches > 0, "the dead master held in-flight jobs");
        assert!(r
            .records
            .iter()
            .any(|r| r.message.starts_with("poolkill: shard 1")));
        assert!(r.records.iter().any(|r| r.message.starts_with("re-home:")));
        // Shard 1 stopped mid-queue; the survivors absorbed its work.
        assert!(r.per_shard_jobs[1] < 64 / 4 + 1);
    }

    #[test]
    fn churn_joins_and_leaves_are_applied_and_attributed() {
        let wl = uniform_workload(40, 5e9);
        let sim = ShardedSim::new(paper_cluster(1e9));
        let mut opts = ShardSimOpts::new(2);
        opts.churn = ChurnPlan::parse("join@5,leave@20").unwrap();
        let r = sim.run(&wl, &protocol::PaperFaithful, &opts);
        assert_eq!(r.joins, 1);
        assert_eq!(r.leaves, 1);
        assert_eq!(r.per_shard_jobs.iter().sum::<usize>(), 40, "no lost jobs");
        assert!(r.records.iter().any(|r| r.message.starts_with("join:")));
        assert!(r.records.iter().any(|r| r.message.starts_with("leave:")));
    }

    #[test]
    fn shard_count_is_clamped_to_the_fleet() {
        let wl = uniform_workload(8, 1e9);
        // 5 hosts: root + at most (5-1)/2 = 2 shards.
        let cluster = synthetic_cluster(5, 1, 1e9);
        let sim = ShardedSim::new(cluster);
        let r = sim.run(&wl, &protocol::PaperFaithful, &ShardSimOpts::new(8));
        assert_eq!(r.shards, 2);
        assert_eq!(r.per_shard_jobs.iter().sum::<usize>(), 8);
    }
}
