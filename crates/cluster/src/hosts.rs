//! Host and cluster descriptions.

use manifold::config::HostName;

/// One workstation.
#[derive(Clone, Debug, PartialEq)]
pub struct Host {
    /// Machine name.
    pub name: HostName,
    /// Clock rate in MHz (the paper's machines: 1200/1400/1466).
    pub mhz: f64,
    /// Cache size in KiB (256 on every paper machine; kept for the record —
    /// the cost model folds cache effects into the calibrated flop rate).
    pub cache_kib: u32,
}

impl Host {
    /// A host with the given name and clock.
    pub fn new(name: impl Into<HostName>, mhz: f64) -> Host {
        Host {
            name: name.into(),
            mhz,
            cache_kib: 256,
        }
    }

    /// Speed relative to the cluster's reference 1200 MHz machine.
    pub fn rel_speed(&self) -> f64 {
        self.mhz / 1200.0
    }
}

/// A named collection of hosts. The first host is the start-up machine
/// (where the first task instance, and hence the master, runs).
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// All machines, start-up machine first.
    pub hosts: Vec<Host>,
    /// Effective floating-point rate of the reference (1200 MHz) machine,
    /// in flop/s. This is the single calibration constant tying the
    /// solver's architecture-independent work counts to seconds; see
    /// EXPERIMENTS.md for how it is chosen against the paper's Table 1.
    pub ref_flops_per_sec: f64,
}

impl ClusterSpec {
    /// Build a cluster from hosts (first = start-up machine).
    pub fn new(hosts: Vec<Host>, ref_flops_per_sec: f64) -> ClusterSpec {
        assert!(!hosts.is_empty(), "cluster needs at least one host");
        assert!(ref_flops_per_sec > 0.0);
        ClusterSpec {
            hosts,
            ref_flops_per_sec,
        }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the cluster has no machines (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Find a host by name.
    pub fn host(&self, name: &HostName) -> Option<&Host> {
        self.hosts.iter().find(|h| &h.name == name)
    }

    /// Absolute speed of a host in flop/s (reference rate × relative
    /// clock). Unknown hosts run at the reference rate.
    pub fn flops_per_sec(&self, name: &HostName) -> f64 {
        let rel = self.host(name).map_or(1.0, Host::rel_speed);
        self.ref_flops_per_sec * rel
    }

    /// Seconds to execute `flops` on the named host.
    pub fn compute_time(&self, name: &HostName, flops: f64) -> f64 {
        flops / self.flops_per_sec(name)
    }

    /// The start-up machine.
    pub fn startup(&self) -> &Host {
        &self.hosts[0]
    }
}

/// The paper's cluster: 32 AMD Athlon workstations — 24 × 1200 MHz,
/// 5 × 1400 MHz, 3 × 1466 MHz, 256 KiB cache each. Machine names follow the
/// paper's instrument-themed CWI naming (`bumpa`, `diplice`, `alboka`, …)
/// and are padded generically past the ones the paper shows.
pub fn paper_cluster(ref_flops_per_sec: f64) -> ClusterSpec {
    let named = [
        "bumpa", "diplice", "alboka", "altfluit", "arghul", "basfluit",
    ];
    let mut hosts = Vec::with_capacity(32);
    for i in 0..32usize {
        let name = if i < named.len() {
            format!("{}.sen.cwi.nl", named[i])
        } else {
            format!("athlon{:02}.sen.cwi.nl", i)
        };
        // Distribute the clocks: the 5 faster and 3 fastest machines at the
        // end of the list (the start-up machine is a 1200 MHz one).
        let mhz = if i >= 29 {
            1466.0
        } else if i >= 24 {
            1400.0
        } else {
            1200.0
        };
        hosts.push(Host::new(name, mhz));
    }
    ClusterSpec::new(hosts, ref_flops_per_sec)
}

/// A deterministic heterogeneous cluster of `n` simulated hosts for the
/// sharded-fleet scaling study (1,000–10,000 hosts). The machine mix
/// extrapolates the paper's lab: a majority of reference-speed (1200 MHz)
/// workstations with faster tiers mixed in at seed-chosen positions, so a
/// sweep over `n` at one seed is reproducible host for host. The first
/// host is always a reference-speed machine (the start-up machine the
/// root master runs on).
pub fn synthetic_cluster(n: usize, seed: u64, ref_flops_per_sec: f64) -> ClusterSpec {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    assert!(n >= 1, "cluster needs at least one host");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00c5_a05c_0de0_f004);
    // Clock tiers with weights: 50% reference, then progressively rarer
    // faster (and a few slower) machines — the clock spread a real
    // donation-grown fleet shows.
    const TIERS: [(f64, f64); 5] = [
        (1200.0, 0.50),
        (1000.0, 0.10),
        (1400.0, 0.20),
        (1466.0, 0.12),
        (1800.0, 0.08),
    ];
    let mut hosts = Vec::with_capacity(n);
    for i in 0..n {
        let mhz = if i == 0 {
            1200.0
        } else {
            let mut p: f64 = rng.gen();
            let mut mhz = TIERS[TIERS.len() - 1].0;
            for &(tier, w) in &TIERS {
                if p < w {
                    mhz = tier;
                    break;
                }
                p -= w;
            }
            mhz
        };
        hosts.push(Host::new(format!("sim{i:05}.fleet"), mhz));
    }
    ClusterSpec::new(hosts, ref_flops_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_composition() {
        let c = paper_cluster(1e9);
        assert_eq!(c.len(), 32);
        let n1200 = c.hosts.iter().filter(|h| h.mhz == 1200.0).count();
        let n1400 = c.hosts.iter().filter(|h| h.mhz == 1400.0).count();
        let n1466 = c.hosts.iter().filter(|h| h.mhz == 1466.0).count();
        assert_eq!((n1200, n1400, n1466), (24, 5, 3));
        assert!(c.hosts.iter().all(|h| h.cache_kib == 256));
        assert_eq!(c.startup().name.as_str(), "bumpa.sen.cwi.nl");
    }

    #[test]
    fn speeds_are_relative_to_1200() {
        let c = paper_cluster(1.2e9);
        let slow = c.flops_per_sec(&"bumpa.sen.cwi.nl".into());
        let fast = c.flops_per_sec(&"athlon31.sen.cwi.nl".into());
        assert!((slow - 1.2e9).abs() < 1.0);
        assert!((fast / slow - 1466.0 / 1200.0).abs() < 1e-12);
    }

    #[test]
    fn compute_time_scales_inversely_with_speed() {
        let c = paper_cluster(1e9);
        let t_slow = c.compute_time(&"bumpa.sen.cwi.nl".into(), 1e9);
        let t_fast = c.compute_time(&"athlon31.sen.cwi.nl".into(), 1e9);
        assert!((t_slow - 1.0).abs() < 1e-12);
        assert!(t_fast < t_slow);
    }

    #[test]
    fn unknown_host_runs_at_reference_speed() {
        let c = paper_cluster(1e9);
        assert_eq!(c.flops_per_sec(&"nowhere".into()), 1e9);
    }

    #[test]
    fn synthetic_cluster_is_deterministic_and_heterogeneous() {
        let a = synthetic_cluster(1000, 7, 1e9);
        let b = synthetic_cluster(1000, 7, 1e9);
        assert_eq!(a, b, "same seed must give the same fleet");
        let c = synthetic_cluster(1000, 8, 1e9);
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.len(), 1000);
        // The start-up machine is the 1200 MHz reference.
        assert_eq!(a.startup().mhz, 1200.0);
        // Heterogeneous: at least three distinct clock tiers present.
        let mut clocks: Vec<u64> = a.hosts.iter().map(|h| h.mhz as u64).collect();
        clocks.sort_unstable();
        clocks.dedup();
        assert!(clocks.len() >= 3, "tiers seen: {clocks:?}");
        // Names unique.
        let mut names: Vec<_> = a.hosts.iter().map(|h| h.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 1000);
    }

    #[test]
    fn host_names_are_unique() {
        let c = paper_cluster(1e9);
        let mut names: Vec<_> = c.hosts.iter().map(|h| h.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 32);
    }
}
