//! Multi-user perturbation noise.
//!
//! "The experiments were done at night. However, even then … there are
//! always unpredictable effects such as network traffic and file server
//! delays … some users run their own job(s) at night, run screen savers or
//! have runaway Netscape jobs." (§7)
//!
//! The paper evens these out by running five times and averaging. We model
//! them as a seeded multiplicative slowdown applied to every compute and
//! transfer duration, so a "run" is reproducible given its seed and the
//! five-run averaging of Table 1 can be reproduced verbatim.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded multiplicative noise: every sampled factor lies in
/// `[1, 1 + amplitude]` with occasional heavier spikes (the runaway
/// Netscape job).
#[derive(Clone, Debug)]
pub struct Perturbation {
    rng: StdRng,
    amplitude: f64,
    spike_probability: f64,
    spike_amplitude: f64,
}

impl Perturbation {
    /// Typical overnight conditions: a few percent baseline jitter, rare
    /// 30% spikes.
    pub fn overnight(seed: u64) -> Perturbation {
        Perturbation::new(seed, 0.04, 0.02, 0.3)
    }

    /// Fully quiet machines (no perturbation at all).
    pub fn none() -> Perturbation {
        Perturbation::new(0, 0.0, 0.0, 0.0)
    }

    /// Custom noise model.
    pub fn new(seed: u64, amplitude: f64, spike_probability: f64, spike_amplitude: f64) -> Self {
        Perturbation {
            rng: StdRng::seed_from_u64(seed),
            amplitude,
            spike_probability,
            spike_amplitude,
        }
    }

    /// Sample the next slowdown factor (≥ 1).
    pub fn factor(&mut self) -> f64 {
        let base = 1.0 + self.rng.gen::<f64>() * self.amplitude;
        if self.spike_probability > 0.0 && self.rng.gen::<f64>() < self.spike_probability {
            base * (1.0 + self.rng.gen::<f64>() * self.spike_amplitude)
        } else {
            base
        }
    }

    /// Apply noise to a duration.
    pub fn perturb(&mut self, seconds: f64) -> f64 {
        seconds * self.factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_at_least_one() {
        let mut p = Perturbation::overnight(42);
        for _ in 0..1000 {
            let f = p.factor();
            assert!(f >= 1.0);
            assert!(f < 1.5, "factor unexpectedly large: {f}");
        }
    }

    #[test]
    fn none_is_exactly_one() {
        let mut p = Perturbation::none();
        for _ in 0..10 {
            assert_eq!(p.factor(), 1.0);
        }
        assert_eq!(p.perturb(3.25), 3.25);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Perturbation::overnight(7);
        let mut b = Perturbation::overnight(7);
        for _ in 0..100 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Perturbation::overnight(1);
        let mut b = Perturbation::overnight(2);
        let same = (0..50).filter(|_| a.factor() == b.factor()).count();
        assert!(same < 5);
    }

    #[test]
    fn average_factor_is_modest() {
        let mut p = Perturbation::overnight(3);
        let n = 10_000;
        let avg: f64 = (0..n).map(|_| p.factor()).sum::<f64>() / n as f64;
        assert!(avg > 1.0 && avg < 1.1, "avg {avg}");
    }
}
