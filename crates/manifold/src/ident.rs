//! Identifiers: interned names and process ids.

use std::fmt;
use std::sync::Arc;

/// A cheaply cloneable, interned-ish name used for events, ports, manifolds
/// and tasks.
///
/// MANIFOLD identifies events and ports purely by name; we mirror that with a
/// shared immutable string so that comparing and cloning names is cheap even
/// on hot coordination paths.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Arc<str>);

impl Name {
    /// Create a name from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    /// View the name as a `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::new(s)
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Self {
        n.clone()
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// Unique identifier of a process instance within an [`Environment`].
///
/// In the paper's chronological trace output this corresponds to the
/// "identification of the process instance" column.
///
/// [`Environment`]: crate::env::Environment
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u64);

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Unique identifier of a task instance (an operating-system-level process
/// in real MANIFOLD; a bookkeeping entity here).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskInstanceId(pub u64);

impl fmt::Debug for TaskInstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TaskInstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_equality_and_display() {
        let a = Name::new("create_worker");
        let b: Name = "create_worker".into();
        assert_eq!(a, b);
        assert_eq!(a, "create_worker");
        assert_eq!(format!("{a}"), "create_worker");
        assert_eq!(format!("{a:?}"), "\"create_worker\"");
    }

    #[test]
    fn name_is_cheap_to_clone() {
        let a = Name::new("x".repeat(1024));
        let b = a.clone();
        // Same allocation shared.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(TaskInstanceId(3) > TaskInstanceId(2));
        assert_eq!(format!("{}", ProcessId(7)), "7");
        assert_eq!(format!("{:?}", TaskInstanceId(7)), "t7");
    }
}
