//! The CONFIG stage: mapping task instances onto hosts.
//!
//! In the MANIFOLD toolchain, the runtime configurator CONFIG reads a file
//! such as
//!
//! ```text
//! {host host1 diplice.sen.cwi.nl}
//! {host host2 alboka.sen.cwi.nl}
//! {locus mainprog $host1 $host2}
//! ```
//!
//! defining host variables and stating on which hosts instances of each task
//! may be started. This module parses that syntax (and offers a typed
//! builder) into a [`ConfigSpec`].

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{MfError, MfResult};
use crate::ident::Name;

/// The DNS-ish name of a machine (e.g. `bumpa.sen.cwi.nl`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostName(Arc<str>);

impl HostName {
    /// Create a host name.
    pub fn new(s: impl AsRef<str>) -> Self {
        HostName(Arc::from(s.as_ref()))
    }

    /// View as `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for HostName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for HostName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for HostName {
    fn from(s: &str) -> Self {
        HostName::new(s)
    }
}

impl From<String> for HostName {
    fn from(s: String) -> Self {
        HostName::new(s)
    }
}

/// Parsed CONFIG specification.
#[derive(Clone, Debug)]
pub struct ConfigSpec {
    /// Host variable bindings, in declaration order.
    hosts: Vec<(Name, HostName)>,
    /// For each task name: the ordered host list it may run on (already
    /// resolved from `$var` references).
    locus: HashMap<Name, Vec<HostName>>,
    /// The machine the application is started from ("start-up machine").
    startup: HostName,
}

impl ConfigSpec {
    /// An empty spec whose startup machine is `localhost`. Every task runs
    /// on the startup machine.
    pub fn local() -> Self {
        ConfigSpec {
            hosts: Vec::new(),
            locus: HashMap::new(),
            startup: HostName::new("localhost"),
        }
    }

    /// Start building a spec with the given startup machine.
    pub fn with_startup(startup: impl Into<HostName>) -> Self {
        ConfigSpec {
            hosts: Vec::new(),
            locus: HashMap::new(),
            startup: startup.into(),
        }
    }

    /// Declare a host variable (`{host <var> <machine>}`).
    pub fn host(mut self, var: impl Into<Name>, machine: impl Into<HostName>) -> Self {
        self.hosts.push((var.into(), machine.into()));
        self
    }

    /// Declare a locus (`{locus <task> $var …}`), referencing previously
    /// declared host variables by name (without the `$`).
    pub fn locus(mut self, task: impl Into<Name>, vars: &[&str]) -> Self {
        let resolved = vars
            .iter()
            .map(|v| {
                self.hosts
                    .iter()
                    .find(|(n, _)| n == v)
                    .map(|(_, h)| h.clone())
                    .unwrap_or_else(|| HostName::new(*v))
            })
            .collect();
        self.locus.insert(task.into(), resolved);
        self
    }

    /// The start-up machine.
    pub fn startup_host(&self) -> &HostName {
        &self.startup
    }

    /// All declared host machines (in declaration order, deduplicated),
    /// *excluding* the startup machine unless it was declared.
    pub fn declared_hosts(&self) -> Vec<HostName> {
        let mut out = Vec::new();
        for (_, h) in &self.hosts {
            if !out.contains(h) {
                out.push(h.clone());
            }
        }
        out
    }

    /// Candidate hosts for instances of `task`: the declared locus, or the
    /// startup machine when none was declared.
    pub fn hosts_for(&self, task: &Name) -> Vec<HostName> {
        match self.locus.get(task) {
            Some(hs) if !hs.is_empty() => hs.clone(),
            _ => vec![self.startup.clone()],
        }
    }

    /// Parse the textual `{host …} {locus …}` syntax shown in §6 of the
    /// paper. Unknown directives are rejected.
    pub fn parse(text: &str, startup: impl Into<HostName>) -> MfResult<Self> {
        let mut spec = ConfigSpec::with_startup(startup);
        for group in crate::link::lex_groups(text)? {
            let mut it = group.iter();
            match it.next().map(String::as_str) {
                Some("host") => {
                    let var = it
                        .next()
                        .ok_or_else(|| MfError::Spec("host: missing variable".into()))?;
                    let machine = it
                        .next()
                        .ok_or_else(|| MfError::Spec("host: missing machine".into()))?;
                    spec.hosts.push((Name::new(var), HostName::new(machine)));
                }
                Some("locus") => {
                    let task = it
                        .next()
                        .ok_or_else(|| MfError::Spec("locus: missing task".into()))?;
                    let mut hosts = Vec::new();
                    for v in it {
                        let key = v.strip_prefix('$').unwrap_or(v);
                        let resolved = spec
                            .hosts
                            .iter()
                            .find(|(n, _)| n == key)
                            .map(|(_, h)| h.clone())
                            .ok_or_else(|| {
                                MfError::Spec(format!("locus: unknown host variable {v}"))
                            })?;
                        hosts.push(resolved);
                    }
                    spec.locus.insert(Name::new(task), hosts);
                }
                Some(other) => {
                    return Err(MfError::Spec(format!("unknown config directive: {other}")))
                }
                None => return Err(MfError::Spec("empty group".into())),
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_CONFIG: &str = r#"
{host host1 diplice.sen.cwi.nl}
{host host2 alboka.sen.cwi.nl}
{host host3 altfluit.sen.cwi.nl}
{host host4 arghul.sen.cwi.nl}
{host host5 basfluit.sen.cwi.nl}
{locus mainprog $host1 $host2 $host3 $host4 $host5}
"#;

    #[test]
    fn parses_paper_config() {
        let spec = ConfigSpec::parse(PAPER_CONFIG, "bumpa.sen.cwi.nl").unwrap();
        assert_eq!(spec.startup_host().as_str(), "bumpa.sen.cwi.nl");
        let hosts = spec.hosts_for(&Name::new("mainprog"));
        assert_eq!(hosts.len(), 5);
        assert_eq!(hosts[0].as_str(), "diplice.sen.cwi.nl");
        assert_eq!(hosts[4].as_str(), "basfluit.sen.cwi.nl");
    }

    #[test]
    fn missing_locus_falls_back_to_startup() {
        let spec = ConfigSpec::local();
        assert_eq!(
            spec.hosts_for(&Name::new("anything")),
            vec![HostName::new("localhost")]
        );
    }

    #[test]
    fn builder_resolves_variables() {
        let spec = ConfigSpec::with_startup("start")
            .host("h1", "machine-a")
            .host("h2", "machine-b")
            .locus("t", &["h1", "h2"]);
        let hosts = spec.hosts_for(&Name::new("t"));
        assert_eq!(hosts[0].as_str(), "machine-a");
        assert_eq!(hosts[1].as_str(), "machine-b");
    }

    #[test]
    fn unknown_variable_is_error() {
        let err = ConfigSpec::parse("{locus t $nope}", "s").unwrap_err();
        assert!(matches!(err, MfError::Spec(_)));
    }

    #[test]
    fn unknown_directive_is_error() {
        let err = ConfigSpec::parse("{frob a b}", "s").unwrap_err();
        assert!(matches!(err, MfError::Spec(_)));
    }

    #[test]
    fn declared_hosts_dedup() {
        let spec = ConfigSpec::with_startup("s")
            .host("a", "m1")
            .host("b", "m1")
            .host("c", "m2");
        assert_eq!(spec.declared_hosts().len(), 2);
    }
}
