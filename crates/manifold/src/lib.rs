//! # manifold — an IWIM coordination runtime in Rust
//!
//! This crate reimplements the semantic core of the MANIFOLD coordination
//! language (Arbab et al., CWI) as an embedded Rust DSL plus a multithreaded
//! runtime. MANIFOLD is a *coordination* language, not a computation
//! language: it expresses the cooperation protocols among the processes of a
//! concurrent application — who is connected to whom, through which streams,
//! and how the connection topology changes in reaction to events.
//!
//! The model is IWIM (Idealized Worker Idealized Manager). Its basic
//! concepts, all present here, are:
//!
//! * **Processes** ([`process::ProcessRef`]) — black boxes that can only read
//!   and write through the openings (**ports**) in their own bounding walls.
//!   *Atomic* processes ([`process::AtomicProcess`]) carry computation (they
//!   are the "C wrappers" of the paper); *coordinator* processes
//!   ([`coord::Coord`]) never compute — they only (re)connect ports and react
//!   to events.
//! * **Events** ([`event`]) — asynchronous broadcast signals. Every process
//!   owns an *event memory*; coordinators are state machines whose
//!   transitions are labelled by event patterns, with `save` / `ignore` /
//!   `priority` semantics and state *preemption*.
//! * **Ports** ([`port`]) — named openings (`input`, `output`, `error`, plus
//!   user-defined ones such as the paper's `dataport`).
//! * **Streams** ([`stream`]) — asynchronous, unbounded, FIFO channels
//!   connecting an output port to an input port, always set up by a *third
//!   party* (exogenous coordination). Streams have dismantling types
//!   ([`stream::StreamType`]): `BK` (Break source / Keep sink — the default),
//!   `KK`, `BB`, `KB`, governing what happens when the state that created
//!   them is preempted.
//!
//! On top of the language core, this crate also provides the two separate
//! application-construction stages the MANIFOLD toolchain implements:
//!
//! * [`link`] — the MLINK stage: bundling of process instances into
//!   *task instances* (operating-system-level processes) driven by
//!   `{task …}` specifications (`weight`, `load`, `perpetual`);
//! * [`config`] — the CONFIG stage: mapping of task instances onto named
//!   hosts (`{host …}` / `{locus …}` specifications).
//!
//! Inside this library a task instance is a bookkeeping entity: all process
//! instances really run as threads of the calling program, but the
//! assignment of processes to task instances and of task instances to hosts
//! is tracked faithfully and is exported to the [`trace`] facility (which
//! reproduces the chronological `Welcome` / `Bye` output format of the
//! paper) and to the `cluster` crate's discrete-event simulator.
//!
//! ## Quick example
//!
//! ```
//! use manifold::prelude::*;
//!
//! let env = Environment::new();
//! let result = env.run_coordinator("Main", |coord| {
//!     // An atomic "worker" that doubles every number it reads.
//!     let doubler = coord.create_atomic("Doubler", |ctx: ProcessCtx| {
//!         let x = ctx.read("input")?.as_real().unwrap();
//!         ctx.write("output", Unit::real(2.0 * x))?;
//!         Ok(())
//!     });
//!     coord.activate(&doubler)?;
//!     let mut st = coord.state();
//!     st.send(Unit::real(21.0), &doubler, "input")?;
//!     st.connect_to_self(&doubler, "output", "input", StreamType::BK)?;
//!     // Read while the state (and its streams) are still connected.
//!     let out = coord.read("input")?;
//!     drop(st);
//!     assert_eq!(out.as_real(), Some(42.0));
//!     Ok(())
//! });
//! result.unwrap();
//! env.shutdown();
//! ```

pub mod builtin;
pub mod config;
pub mod coord;
pub mod env;
pub mod error;
pub mod event;
pub mod ident;
pub mod lang;
pub mod link;
pub(crate) mod pool;
pub mod port;
pub mod process;
pub mod remote;
pub mod stream;
pub mod trace;
pub mod unit;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::config::{ConfigSpec, HostName};
    pub use crate::coord::{Coord, StateExit, StateScope};
    pub use crate::env::Environment;
    pub use crate::error::{MfError, MfResult};
    pub use crate::event::{Event, EventOccurrence, EventPattern};
    pub use crate::ident::{Name, ProcessId};
    pub use crate::link::{LinkSpec, TaskSpec};
    pub use crate::process::{AtomicProcess, ProcessCtx, ProcessRef};
    pub use crate::stream::StreamType;
    pub use crate::unit::Unit;
}

pub use prelude::*;
