//! Parked worker threads: the runtime half of perpetual task instances.
//!
//! The bundler keeps `{perpetual}` task instances alive between jobs; this
//! pool keeps their OS threads alive too. A thread whose process body has
//! returned parks on a private channel instead of exiting, and the next
//! [`activate`](crate::env::Environment::activate) hands it the new body
//! rather than paying `thread::spawn` again — on a warm fleet a job can
//! create zero threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

enum Msg {
    Run(Job),
    Exit,
}

#[derive(Default)]
pub(crate) struct ThreadPool {
    shared: Arc<Shared>,
}

#[derive(Default)]
struct Shared {
    idle: Mutex<Vec<Sender<Msg>>>,
    draining: AtomicBool,
    spawned: AtomicU64,
}

impl ThreadPool {
    /// Run `job` on a parked thread when one is available, else on a fresh
    /// thread that parks itself when the job returns. Returns the new
    /// thread's handle, or `None` when a parked thread was reused (its
    /// handle is already tracked by the caller).
    pub(crate) fn run(&self, job: Job) -> Option<JoinHandle<()>> {
        let mut job = job;
        loop {
            let parked = self.shared.idle.lock().pop();
            match parked {
                Some(tx) => match tx.send(Msg::Run(job)) {
                    Ok(()) => return None,
                    // The thread is gone; take the job back and try the
                    // next parked one.
                    Err(e) => {
                        job = match e.0 {
                            Msg::Run(j) => j,
                            Msg::Exit => unreachable!("pool only sends Run here"),
                        }
                    }
                },
                None => return Some(self.spawn(job)),
            }
        }
    }

    fn spawn(&self, first: Job) -> JoinHandle<()> {
        let shared = self.shared.clone();
        let n = self.shared.spawned.fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name(format!("mf-pool-{n}"))
            .spawn(move || {
                let mut job = first;
                loop {
                    job();
                    let (tx, rx) = channel();
                    {
                        // The flag is checked under the idle lock and set
                        // under the same lock in `drain`, so a thread can
                        // never park after the drain swept the list.
                        let mut idle = shared.idle.lock();
                        if shared.draining.load(Ordering::Acquire) {
                            return;
                        }
                        idle.push(tx);
                    }
                    match rx.recv() {
                        Ok(Msg::Run(next)) => job = next,
                        Ok(Msg::Exit) | Err(_) => return,
                    }
                }
            })
            .expect("thread spawn")
    }

    /// Tell every parked thread to exit and stop future parking; busy
    /// threads exit when their current job returns. Must run before the
    /// environment joins its thread handles — a parked thread would block
    /// that join forever.
    pub(crate) fn drain(&self) {
        let parked = {
            let mut idle = self.shared.idle.lock();
            self.shared.draining.store(true, Ordering::Release);
            std::mem::take(&mut *idle)
        };
        for tx in parked {
            let _ = tx.send(Msg::Exit);
        }
    }

    /// Number of threads currently parked and reusable.
    pub(crate) fn parked(&self) -> usize {
        self.shared.idle.lock().len()
    }
}
