//! Coordinators: the manager side of IWIM, as an embedded DSL.
//!
//! A coordinator never computes; it creates and activates processes, wires
//! their ports together with streams, and reacts to events by *preempting*
//! its current state (dismantling that state's streams according to their
//! types) and transitioning to another.
//!
//! The embedding maps MANIFOLD constructs onto Rust as follows:
//!
//! | MANIFOLD                         | here                                   |
//! |----------------------------------|----------------------------------------|
//! | `manner F(…) { … }`              | `fn f(coord: &mut Coord, …) -> MfResult<…>` |
//! | a state with stream connections  | [`Coord::state`] + [`StateScope`] methods |
//! | `IDLE` / wait in a state         | [`StateScope::idle`]                    |
//! | `terminated(p)` in a state body  | [`StateScope::until_terminated`]        |
//! | `priority a > b`                 | pattern order in the wait list          |
//! | state preemption                 | [`StateScope`] drop (dismantles streams)|
//! | `post(e)`                        | [`Coord::post`]                         |
//! | `raise(e)`                       | [`Coord::raise`]                        |
//! | `ignore e` (block declaration)   | [`Coord::with_ignore`]                  |
//! | `process p is M(...)` + `activate` | [`Coord::create_atomic`] + [`Coord::activate`] |
//! | `&p -> q` (send a reference)     | [`StateScope::send`] with a [`Unit::ProcessRef`] |
//!
//! Counters such as the paper's `now` and `t` variables can be ordinary Rust
//! locals inside the coordinator, or — for fidelity — instances of the
//! predefined [`variable`](crate::builtin::Variable) process.

use std::sync::Arc;
use std::time::Duration;

use crate::env::Environment;
use crate::error::MfResult;
use crate::event::{EventOccurrence, EventPattern};
use crate::ident::{Name, ProcessId};
use crate::process::{AtomicProcess, ProcessCtx, ProcessRef};
use crate::stream::{Stream, StreamType};
use crate::unit::Unit;

/// How a state was exited when it was waiting on both events and a process
/// termination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateExit {
    /// The watched process terminated.
    Terminated(ProcessId),
    /// An event occurrence matched one of the wait patterns.
    Event(EventOccurrence),
}

impl StateExit {
    /// The occurrence, if this exit was an event.
    pub fn event(&self) -> Option<&EventOccurrence> {
        match self {
            StateExit::Event(e) => Some(e),
            StateExit::Terminated(_) => None,
        }
    }
}

/// The coordinator context: a [`ProcessCtx`] plus the monopoly on creating
/// processes and connecting streams.
pub struct Coord {
    ctx: ProcessCtx,
    env: Environment,
}

impl Coord {
    /// Wrap a process context (normally done by
    /// [`Environment::run_coordinator`]).
    pub fn new(ctx: ProcessCtx, env: Environment) -> Self {
        Coord { ctx, env }
    }

    /// The coordinator's own process context.
    pub fn ctx(&self) -> &ProcessCtx {
        &self.ctx
    }

    /// The environment this coordinator lives in.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// A reference to the coordinator process itself.
    pub fn self_ref(&self) -> ProcessRef {
        self.ctx.self_ref()
    }

    /// Create an atomic process instance (not yet activated) and start
    /// observing its events — mirroring `process p is M(…)`, after which the
    /// creating coordinator is tuned to `p`'s events.
    pub fn create_atomic(&self, manifold: impl Into<Name>, body: impl AtomicProcess) -> ProcessRef {
        let p = self.env.create_process(manifold, body);
        self.ctx.watch(&p);
        p
    }

    /// Activate a created process (`activate p`).
    pub fn activate(&self, p: &ProcessRef) -> MfResult<()> {
        self.env.activate(p)
    }

    /// Begin observing an existing process (e.g. one received as a manner
    /// parameter, like `master` in `ProtocolMW`).
    pub fn watch(&self, p: &ProcessRef) {
        self.ctx.watch(p);
    }

    /// Raise an event, delivered to whoever observes this coordinator.
    pub fn raise(&self, event: impl Into<Name>) {
        self.ctx.raise(event);
    }

    /// Post an event into the coordinator's own memory (`post(begin)`).
    pub fn post(&self, event: impl Into<Name>) {
        self.ctx.post(event);
    }

    /// Read from one of the coordinator's own ports.
    pub fn read(&self, port: impl Into<Name>) -> MfResult<Unit> {
        self.ctx.read(port)
    }

    /// Read with a deadline.
    pub fn read_timeout(&self, port: impl Into<Name>, t: Duration) -> MfResult<Unit> {
        self.ctx.read_timeout(port, t)
    }

    /// Write to one of the coordinator's own ports.
    pub fn write(&self, port: impl Into<Name>, unit: Unit) -> MfResult<()> {
        self.ctx.write(port, unit)
    }

    /// Wait for an event matching one of `patterns` (no streams involved).
    /// Pattern order is priority order.
    pub fn wait_events(&self, patterns: &[EventPattern]) -> MfResult<EventOccurrence> {
        self.ctx.wait_event(patterns)
    }

    /// Like [`Coord::wait_events`] with a deadline.
    pub fn wait_events_timeout(
        &self,
        patterns: &[EventPattern],
        t: Duration,
    ) -> MfResult<EventOccurrence> {
        self.ctx.wait_event_timeout(patterns, t)
    }

    /// Enter a new state: stream connections made through the returned
    /// [`StateScope`] are dismantled (per their [`StreamType`]) when the
    /// scope ends — i.e. when the state is preempted.
    pub fn state(&self) -> StateScope<'_> {
        StateScope {
            coord: self,
            streams: Vec::new(),
        }
    }

    /// Run `body` as a block that declared `ignore e` for each listed
    /// event: on exit, pending occurrences of those events are purged from
    /// the coordinator's memory (the paper's `ignore death.`).
    pub fn with_ignore<R>(
        &self,
        ignored: &[&str],
        body: impl FnOnce(&Coord) -> MfResult<R>,
    ) -> MfResult<R> {
        let result = body(self);
        for e in ignored {
            self.ctx.core().events().purge_named(&Name::new(*e));
        }
        result
    }
}

impl std::fmt::Debug for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Coord({:?})", self.ctx.id())
    }
}

/// One coordinator state: a set of stream connections plus a wait.
///
/// Dropping the scope — or consuming it via [`StateScope::idle`] /
/// [`StateScope::until_terminated`] — *preempts* the state: every stream
/// created in it is dismantled according to its type (`BK` streams are
/// broken at their source, `KK` streams survive, …).
pub struct StateScope<'c> {
    coord: &'c Coord,
    streams: Vec<Arc<Stream>>,
}

impl<'c> StateScope<'c> {
    fn track(&mut self, s: Arc<Stream>) -> Arc<Stream> {
        self.streams.push(s.clone());
        s
    }

    /// Connect `src.src_port -> dst.dst_port` with a stream of type `ty`.
    pub fn connect(
        &mut self,
        src: &ProcessRef,
        src_port: impl Into<Name>,
        dst: &ProcessRef,
        dst_port: impl Into<Name>,
        ty: StreamType,
    ) -> MfResult<Arc<Stream>> {
        let s = Stream::new(ty);
        src.port(src_port).attach_outgoing(&s);
        dst.port(dst_port).attach_incoming(&s);
        Ok(self.track(s))
    }

    /// Connect a process's output into one of the *coordinator's own* ports
    /// (`p.output -> self.port`).
    pub fn connect_to_self(
        &mut self,
        src: &ProcessRef,
        src_port: impl Into<Name>,
        own_port: impl Into<Name>,
        ty: StreamType,
    ) -> MfResult<Arc<Stream>> {
        let me = self.coord.self_ref();
        self.connect(src, src_port, &me, own_port, ty)
    }

    /// Connect one of the coordinator's own ports into a process
    /// (`self.port -> p.input`).
    pub fn connect_from_self(
        &mut self,
        own_port: impl Into<Name>,
        dst: &ProcessRef,
        dst_port: impl Into<Name>,
        ty: StreamType,
    ) -> MfResult<Arc<Stream>> {
        let me = self.coord.self_ref();
        self.connect(&me, own_port, dst, dst_port, ty)
    }

    /// Send a constant unit into a process port — the MANIFOLD idiom
    /// `&worker -> master` (the unit's producer is the coordinator itself,
    /// via a one-shot preloaded stream).
    pub fn send(
        &mut self,
        unit: Unit,
        dst: &ProcessRef,
        dst_port: impl Into<Name>,
    ) -> MfResult<Arc<Stream>> {
        let s = Stream::preloaded(StreamType::BK, [unit]);
        dst.port(dst_port).attach_incoming(&s);
        Ok(self.track(s))
    }

    /// Send a process reference (`&p -> dst.port`).
    pub fn send_ref(
        &mut self,
        p: &ProcessRef,
        dst: &ProcessRef,
        dst_port: impl Into<Name>,
    ) -> MfResult<Arc<Stream>> {
        self.send(Unit::ProcessRef(p.clone()), dst, dst_port)
    }

    /// `IDLE`: stay in this state until an event matching one of `patterns`
    /// arrives (pattern order = priority), then preempt the state
    /// (dismantling its streams) and return the occurrence.
    pub fn idle(self, patterns: &[EventPattern]) -> MfResult<EventOccurrence> {
        let occ = self.coord.ctx.wait_event(patterns);
        // `self` drops here, dismantling the state's streams.
        occ
    }

    /// Like [`StateScope::idle`] with a deadline.
    pub fn idle_timeout(self, patterns: &[EventPattern], t: Duration) -> MfResult<EventOccurrence> {
        self.coord.ctx.wait_event_timeout(patterns, t)
    }

    /// `terminated(p)` with event sensitivity: wait until either `p`
    /// terminates or an event matching `patterns` arrives. Events take
    /// precedence when both are pending (they *preempt* the state).
    pub fn until_terminated(
        self,
        p: &ProcessRef,
        patterns: &[EventPattern],
    ) -> MfResult<StateExit> {
        let mut pats: Vec<EventPattern> = patterns.to_vec();
        pats.push(EventPattern::Terminated(p.id()));
        let (idx, occ) = self.coord.ctx.core().events().wait_select(&pats)?;
        Ok(if idx == pats.len() - 1 && occ.is_termination_of(p.id()) {
            StateExit::Terminated(p.id())
        } else {
            StateExit::Event(occ)
        })
    }

    /// Number of streams created in this state so far (diagnostics).
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

impl Drop for StateScope<'_> {
    fn drop(&mut self) {
        for s in &self.streams {
            s.dismantle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environment;
    use crate::error::MfError;

    /// A worker that reads one number, doubles it, writes it back, raises
    /// `done`, and dies.
    fn doubler(ctx: ProcessCtx) -> MfResult<()> {
        let x = ctx.read("input")?.expect_real()?;
        ctx.write("output", Unit::real(2.0 * x))?;
        ctx.raise("done");
        Ok(())
    }

    #[test]
    fn state_scope_dismantles_bk_on_drop() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let w = coord.create_atomic("W", |ctx: ProcessCtx| {
                // Reads two units; the second must come through a *new*
                // stream after the first state is preempted.
                let a = ctx.read("input")?.expect_int()?;
                let b = ctx.read("input")?.expect_int()?;
                ctx.post(if (a, b) == (1, 2) { "ok" } else { "bad" });
                ctx.read("never")?; // park until shutdown
                Ok(())
            });
            coord.activate(&w)?;
            let me = coord.self_ref();
            {
                let mut st = coord.state();
                let s = st.send(Unit::int(1), &w, "input")?;
                // Stream carrying 1 is preempted (BK): already-queued unit
                // still readable by w.
                drop(st);
                assert!(!s.source_open());
            }
            {
                let mut st = coord.state();
                st.send(Unit::int(2), &w, "input")?;
                drop(st);
            }
            // Give the worker a moment to process.
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(w.core().events().len(), 1);
            let _ = me;
            Ok(())
        })
        .unwrap();
        env.shutdown();
    }

    #[test]
    fn coordinator_receives_worker_event() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let w = coord.create_atomic("W", doubler);
            coord.activate(&w)?;
            let mut st = coord.state();
            st.send(Unit::real(4.0), &w, "input")?;
            st.connect_to_self(&w, "output", "input", StreamType::BK)?;
            let occ = st.idle(&["done".into()])?;
            assert_eq!(occ.source, w.id());
            let v = coord.read("input")?.expect_real()?;
            assert_eq!(v, 8.0);
            Ok(())
        })
        .unwrap();
        env.shutdown();
    }

    #[test]
    fn until_terminated_returns_termination() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let w = coord.create_atomic("Quick", |_ctx: ProcessCtx| Ok(()));
            coord.activate(&w)?;
            let st = coord.state();
            match st.until_terminated(&w, &[])? {
                StateExit::Terminated(id) => assert_eq!(id, w.id()),
                other => panic!("expected termination, got {other:?}"),
            }
            Ok(())
        })
        .unwrap();
        env.shutdown();
    }

    #[test]
    fn until_terminated_event_takes_precedence() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let w = coord.create_atomic("Raiser", |ctx: ProcessCtx| {
                ctx.raise("hello");
                // Stay alive long enough that the event is seen first.
                let _ = ctx.read_timeout("input", Duration::from_millis(200));
                Ok(())
            });
            coord.activate(&w)?;
            let st = coord.state();
            match st.until_terminated(&w, &["hello".into()])? {
                StateExit::Event(e) => assert_eq!(e.name().unwrap(), "hello"),
                other => panic!("expected event, got {other:?}"),
            }
            Ok(())
        })
        .unwrap();
        env.shutdown();
    }

    #[test]
    fn process_reference_travels_through_stream() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let w = coord.create_atomic("Target", |_ctx: ProcessCtx| Ok(()));
            let reader = coord.create_atomic("Reader", |ctx: ProcessCtx| {
                let r = ctx.read("input")?.expect_process_ref()?;
                ctx.post(format!("got-{}", r.manifold_name()));
                Ok(())
            });
            coord.activate(&reader)?;
            let mut st = coord.state();
            st.send_ref(&w, &reader, "input")?;
            drop(st);
            reader
                .core()
                .wait_terminated(Duration::from_secs(5))
                .unwrap();
            assert!(reader
                .core()
                .events()
                .try_select(&["got-Target".into()])
                .is_some());
            Ok(())
        })
        .unwrap();
        env.shutdown();
    }

    #[test]
    fn with_ignore_purges_on_exit() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            coord.post("death");
            coord.post("keep");
            coord.with_ignore(&["death"], |_c| Ok(()))?;
            let mem = coord.ctx().core().events();
            assert!(mem.try_select(&["death".into()]).is_none());
            assert!(mem.try_select(&["keep".into()]).is_some());
            Ok(())
        })
        .unwrap();
        env.shutdown();
    }

    #[test]
    fn priority_order_in_idle() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            coord.post("rendezvous");
            coord.post("create_worker");
            let st = coord.state();
            let occ = st.idle(&["create_worker".into(), "rendezvous".into()])?;
            assert_eq!(occ.name().unwrap(), "create_worker");
            Ok(())
        })
        .unwrap();
        env.shutdown();
    }

    #[test]
    fn idle_timeout_expires() {
        let env = Environment::new();
        let r = env.run_coordinator("Main", |coord| {
            let st = coord.state();
            st.idle_timeout(&["never".into()], Duration::from_millis(30))
        });
        assert_eq!(r, Err(MfError::Timeout));
        env.shutdown();
    }
}
