//! The MLINK stage: bundling process instances into task instances.
//!
//! A MANIFOLD application consists of many light-weight processes (threads)
//! bundled into heavy-weight operating-system processes called **task
//! instances**. The bundling is *not* decided in the program text; it is a
//! separate application-construction stage driven by an MLINK input file:
//!
//! ```text
//! {task *
//!     {perpetual}
//!     {load 1}
//!     {weight Master 1}
//!     {weight Worker 1}
//! }
//! {task mainprog
//!     {include mainprog.o}
//!     {include protocolMW.o}
//! }
//! ```
//!
//! * `{weight M w}` — each instance of manifold `M` contributes `w` to the
//!   load of the task instance housing it (weight 0, the default, means the
//!   process does not count — coordinators typically have weight 0).
//! * `{load n}` — a task instance is *full* when its load exceeds `n`; a new
//!   process is only placed in an instance when it still fits.
//! * `{perpetual}` — an instance whose load drops back to zero stays alive
//!   and can welcome new processes later (instead of dying, the default).
//!   This is what lets the paper's level-15 run reuse machines: workers die
//!   before new ones are forked, so fewer machines than workers are needed.
//!
//! The [`Bundler`] applies these rules at runtime. It is a *pure* state
//! machine with no threads or clocks so it can be shared verbatim between
//! the live runtime ([`crate::env::Environment`]) and the `cluster` crate's
//! discrete-event simulator — both therefore exhibit exactly the same task
//! fork/expiry behaviour.

use std::collections::HashMap;

use crate::config::{ConfigSpec, HostName};
use crate::error::{MfError, MfResult};
use crate::ident::{Name, TaskInstanceId};

/// Specification of one named task (one executable in real MANIFOLD).
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Task name (e.g. `mainprog`).
    pub name: Name,
    /// Manifold names whose instances this task can house. Empty means all.
    pub includes: Vec<Name>,
}

/// Parsed MLINK specification.
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// A full task instance has load strictly greater than this.
    pub load_limit: u32,
    /// Keep empty task instances alive for reuse.
    pub perpetual: bool,
    /// Per-manifold weights (`{weight M w}`); unlisted manifolds weigh 0.
    pub weights: HashMap<Name, u32>,
    /// Declared tasks, in order. The first is the main task (the executable
    /// started on the start-up machine).
    pub tasks: Vec<TaskSpec>,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            load_limit: 1,
            perpetual: false,
            weights: HashMap::new(),
            tasks: vec![TaskSpec {
                name: Name::new("main"),
                includes: Vec::new(),
            }],
        }
    }
}

impl LinkSpec {
    /// Builder: set the load limit (`{load n}`).
    pub fn load(mut self, n: u32) -> Self {
        self.load_limit = n;
        self
    }

    /// Builder: make task instances perpetual (`{perpetual}`).
    pub fn perpetual(mut self, on: bool) -> Self {
        self.perpetual = on;
        self
    }

    /// Builder: assign a weight to a manifold (`{weight M w}`).
    pub fn weight(mut self, manifold: impl Into<Name>, w: u32) -> Self {
        self.weights.insert(manifold.into(), w);
        self
    }

    /// Builder: declare a task.
    pub fn task(mut self, name: impl Into<Name>) -> Self {
        let name = name.into();
        // Replace the implicit default "main" task on first explicit decl.
        if self.tasks.len() == 1
            && self.tasks[0].name == "main"
            && self.tasks[0].includes.is_empty()
        {
            self.tasks.clear();
        }
        self.tasks.push(TaskSpec {
            name,
            includes: Vec::new(),
        });
        self
    }

    /// Weight of a manifold's instances (0 when unlisted). The lookup
    /// matches the *base* name: an MLINK `{weight Worker 1}` applies to
    /// instances of `Worker(event)` — the signature decoration is not part
    /// of the manifold's link-stage identity.
    pub fn weight_of(&self, manifold: &Name) -> u32 {
        if let Some(w) = self.weights.get(manifold) {
            return *w;
        }
        let base = manifold
            .as_str()
            .split('(')
            .next()
            .unwrap_or(manifold.as_str())
            .trim();
        self.weights.get(&Name::new(base)).copied().unwrap_or(0)
    }

    /// Name of the main task (first declared).
    pub fn main_task(&self) -> Name {
        self.tasks
            .first()
            .map(|t| t.name.clone())
            .unwrap_or_else(|| Name::new("main"))
    }

    /// Which task houses instances of `manifold`.
    pub fn task_for(&self, manifold: &Name) -> Name {
        for t in &self.tasks {
            if t.includes.is_empty() || t.includes.contains(manifold) {
                return t.name.clone();
            }
        }
        self.main_task()
    }

    /// Parse the `{task …}` syntax (see module docs and §6 of the paper).
    pub fn parse(text: &str) -> MfResult<Self> {
        let mut spec = LinkSpec {
            tasks: Vec::new(),
            ..LinkSpec::default()
        };
        for sx in parse_sexprs(text)? {
            let Sexp::Group(items) = sx else {
                return Err(MfError::Spec("top level must be {task …} groups".into()));
            };
            let mut it = items.into_iter();
            match it.next() {
                Some(Sexp::Atom(kw)) if kw == "task" => {}
                _ => return Err(MfError::Spec("expected {task …}".into())),
            }
            let name = match it.next() {
                Some(Sexp::Atom(n)) => n,
                _ => return Err(MfError::Spec("task: missing name".into())),
            };
            let mut includes = Vec::new();
            for item in it {
                let Sexp::Group(body) = item else {
                    return Err(MfError::Spec("task body must be {…} groups".into()));
                };
                let mut b = body.into_iter();
                let head = match b.next() {
                    Some(Sexp::Atom(a)) => a,
                    _ => return Err(MfError::Spec("empty task directive".into())),
                };
                match head.as_str() {
                    "perpetual" => spec.perpetual = true,
                    "load" => {
                        let n = atom(b.next())?;
                        spec.load_limit = n
                            .parse()
                            .map_err(|_| MfError::Spec(format!("load: bad number {n}")))?;
                    }
                    "weight" => {
                        let m = atom(b.next())?;
                        let w = atom(b.next())?;
                        let w: u32 = w
                            .parse()
                            .map_err(|_| MfError::Spec(format!("weight: bad number {w}")))?;
                        spec.weights.insert(Name::new(m), w);
                    }
                    "include" => {
                        // `{include mainprog.o}` — strip the object suffix to
                        // recover a manifold/source name; kept for fidelity.
                        let obj = atom(b.next())?;
                        includes.push(Name::new(obj.trim_end_matches(".o")));
                    }
                    other => return Err(MfError::Spec(format!("unknown task directive: {other}"))),
                }
            }
            if name != "*" {
                // `include` lines name object files; they are kept for
                // fidelity but placement falls back to the main task for
                // manifolds not literally listed (see `task_for`).
                spec.tasks.push(TaskSpec {
                    name: Name::new(name),
                    includes,
                });
            }
        }
        if spec.tasks.is_empty() {
            spec.tasks.push(TaskSpec {
                name: Name::new("main"),
                includes: Vec::new(),
            });
        }
        Ok(spec)
    }
}

fn atom(s: Option<Sexp>) -> MfResult<String> {
    match s {
        Some(Sexp::Atom(a)) => Ok(a),
        _ => Err(MfError::Spec("expected atom".into())),
    }
}

/// A parsed `{…}` expression: an atom or a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sexp {
    /// A bare token.
    Atom(String),
    /// A brace-delimited group.
    Group(Vec<Sexp>),
}

/// Parse a sequence of top-level `{…}` expressions. `#`-comments run to end
/// of line.
pub fn parse_sexprs(text: &str) -> MfResult<Vec<Sexp>> {
    let mut out = Vec::new();
    let mut stack: Vec<Vec<Sexp>> = Vec::new();
    let mut token = String::new();
    let flush = |token: &mut String, stack: &mut Vec<Vec<Sexp>>, out: &mut Vec<Sexp>| {
        if !token.is_empty() {
            let atom = Sexp::Atom(std::mem::take(token));
            match stack.last_mut() {
                Some(top) => top.push(atom),
                None => out.push(atom),
            }
        }
    };
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '#' => {
                flush(&mut token, &mut stack, &mut out);
                for c2 in chars.by_ref() {
                    if c2 == '\n' {
                        break;
                    }
                }
            }
            '{' => {
                flush(&mut token, &mut stack, &mut out);
                stack.push(Vec::new());
            }
            '}' => {
                flush(&mut token, &mut stack, &mut out);
                let group = stack
                    .pop()
                    .ok_or_else(|| MfError::Spec("unbalanced '}'".into()))?;
                let sx = Sexp::Group(group);
                match stack.last_mut() {
                    Some(top) => top.push(sx),
                    None => out.push(sx),
                }
            }
            c if c.is_whitespace() => flush(&mut token, &mut stack, &mut out),
            c => token.push(c),
        }
    }
    flush(&mut token, &mut stack, &mut out);
    if !stack.is_empty() {
        return Err(MfError::Spec("unbalanced '{'".into()));
    }
    Ok(out)
}

/// Flat-group lexer used by the CONFIG parser: every top-level expression
/// must be a group of atoms.
pub fn lex_groups(text: &str) -> MfResult<Vec<Vec<String>>> {
    parse_sexprs(text)?
        .into_iter()
        .map(|sx| match sx {
            Sexp::Group(items) => items
                .into_iter()
                .map(|i| match i {
                    Sexp::Atom(a) => Ok(a),
                    Sexp::Group(_) => Err(MfError::Spec("nested group not allowed".into())),
                })
                .collect(),
            Sexp::Atom(a) => Err(MfError::Spec(format!("stray atom: {a}"))),
        })
        .collect()
}

/// Where a process instance was placed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// The housing task instance.
    pub task: TaskInstanceId,
    /// The task's name (e.g. `mainprog`).
    pub task_name: Name,
    /// The machine the task instance runs on.
    pub host: HostName,
    /// The load this process contributes.
    pub weight: u32,
    /// True when placing this process forked a brand-new task instance.
    pub forked: bool,
}

#[derive(Clone, Debug)]
struct InstanceState {
    id: TaskInstanceId,
    task: Name,
    host: HostName,
    load: u32,
    perpetual: bool,
    alive: bool,
}

/// Notification that a task instance died (its last process left and it was
/// not perpetual).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskDeath {
    /// The expired instance.
    pub task: TaskInstanceId,
    /// The machine it vacated.
    pub host: HostName,
}

/// Runtime bundling state machine applying the MLINK + CONFIG rules.
///
/// Thread-free and clock-free by design: the live [`Environment`] wraps one
/// in a mutex, while the cluster discrete-event simulator drives another in
/// virtual time. Both observe identical fork/reuse/expiry behaviour.
///
/// [`Environment`]: crate::env::Environment
#[derive(Clone, Debug)]
pub struct Bundler {
    link: LinkSpec,
    config: ConfigSpec,
    instances: Vec<InstanceState>,
    next_id: u64,
}

impl Bundler {
    /// Create a bundler. The start-up task instance (housing the root
    /// coordinator) is created immediately on the start-up machine and is
    /// always perpetual.
    pub fn new(link: LinkSpec, config: ConfigSpec) -> Self {
        let main = link.main_task();
        let startup = InstanceState {
            id: TaskInstanceId(0),
            task: main,
            host: config.startup_host().clone(),
            load: 0,
            perpetual: true,
            alive: true,
        };
        Bundler {
            link,
            config,
            instances: vec![startup],
            next_id: 1,
        }
    }

    /// The MLINK spec in force.
    pub fn link(&self) -> &LinkSpec {
        &self.link
    }

    /// The CONFIG spec in force.
    pub fn config(&self) -> &ConfigSpec {
        &self.config
    }

    /// Place an instance of `manifold`, forking a task instance if no alive
    /// one has capacity.
    pub fn place(&mut self, manifold: &Name) -> Placement {
        let w = self.link.weight_of(manifold);
        if w == 0 {
            // Weightless processes (coordinators) ride in the start-up task.
            let s = &self.instances[0];
            return Placement {
                task: s.id,
                task_name: s.task.clone(),
                host: s.host.clone(),
                weight: 0,
                forked: false,
            };
        }
        let task_name = self.link.task_for(manifold);
        let limit = self.link.load_limit;
        // First fit among alive instances of this task with capacity.
        if let Some(inst) = self
            .instances
            .iter_mut()
            .find(|i| i.alive && i.task == task_name && i.load + w <= limit)
        {
            inst.load += w;
            return Placement {
                task: inst.id,
                task_name: inst.task.clone(),
                host: inst.host.clone(),
                weight: w,
                forked: false,
            };
        }
        // Fork a new instance on the least-loaded candidate host.
        let candidates = self.config.hosts_for(&task_name);
        let host = candidates
            .iter()
            .min_by_key(|h| {
                self.instances
                    .iter()
                    .filter(|i| i.alive && &i.host == *h)
                    .count()
            })
            .cloned()
            .unwrap_or_else(|| self.config.startup_host().clone());
        let id = TaskInstanceId(self.next_id);
        self.next_id += 1;
        self.instances.push(InstanceState {
            id,
            task: task_name.clone(),
            host: host.clone(),
            load: w,
            perpetual: self.link.perpetual,
            alive: true,
        });
        Placement {
            task: id,
            task_name,
            host,
            weight: w,
            forked: true,
        }
    }

    /// Release a previously placed process. Returns the task death if the
    /// instance expired (load reached zero and it was not perpetual).
    pub fn release(&mut self, placement: &Placement) -> Option<TaskDeath> {
        let inst = self.instances.iter_mut().find(|i| i.id == placement.task)?;
        inst.load = inst.load.saturating_sub(placement.weight);
        if inst.load == 0 && !inst.perpetual && inst.id != TaskInstanceId(0) {
            inst.alive = false;
            return Some(TaskDeath {
                task: inst.id,
                host: inst.host.clone(),
            });
        }
        None
    }

    /// Kill an idle perpetual instance explicitly (end of application).
    pub fn expire_idle(&mut self) -> Vec<TaskDeath> {
        let mut deaths = Vec::new();
        for inst in &mut self.instances {
            if inst.alive && inst.load == 0 && inst.id != TaskInstanceId(0) {
                inst.alive = false;
                deaths.push(TaskDeath {
                    task: inst.id,
                    host: inst.host.clone(),
                });
            }
        }
        deaths
    }

    /// Number of alive task instances (including the start-up instance).
    pub fn alive_instances(&self) -> usize {
        self.instances.iter().filter(|i| i.alive).count()
    }

    /// Number of distinct machines currently hosting an alive instance —
    /// the "number of machines" the paper plots in Figure 1.
    pub fn machines_in_use(&self) -> usize {
        let mut hosts: Vec<&HostName> = self
            .instances
            .iter()
            .filter(|i| i.alive)
            .map(|i| &i.host)
            .collect();
        hosts.sort();
        hosts.dedup();
        hosts.len()
    }

    /// Number of alive instances currently *parked*: perpetual instances
    /// whose load dropped back to zero and that are waiting to welcome new
    /// processes. The start-up instance is excluded — it is the
    /// application's anchor, not an idle fleet member. This is the
    /// observable half of `{perpetual}`: between jobs of a multi-job
    /// engine every worker instance shows up here instead of dying.
    pub fn parked_instances(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| i.alive && i.load == 0 && i.perpetual && i.id != TaskInstanceId(0))
            .count()
    }

    /// Current load of a task instance, if it exists.
    pub fn load_of(&self, task: TaskInstanceId) -> Option<u32> {
        self.instances.iter().find(|i| i.id == task).map(|i| i.load)
    }

    /// Is the given instance alive?
    pub fn is_alive(&self, task: TaskInstanceId) -> bool {
        self.instances.iter().any(|i| i.id == task && i.alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_MLINK: &str = r#"
# mainprog.mlink
{task *
    {perpetual}
    {load 1}
    {weight Master 1}
    {weight Worker 1}
}
{task mainprog
    {include mainprog.o}
    {include protocolMW.o}
}
"#;

    fn paper_bundler() -> Bundler {
        let link = LinkSpec::parse(PAPER_MLINK).unwrap();
        let config = ConfigSpec::with_startup("bumpa")
            .host("h1", "diplice")
            .host("h2", "alboka")
            .host("h3", "altfluit")
            .host("h4", "arghul")
            .host("h5", "basfluit")
            .locus("mainprog", &["h1", "h2", "h3", "h4", "h5"]);
        Bundler::new(link, config)
    }

    #[test]
    fn parses_paper_mlink() {
        let link = LinkSpec::parse(PAPER_MLINK).unwrap();
        assert!(link.perpetual);
        assert_eq!(link.load_limit, 1);
        assert_eq!(link.weight_of(&Name::new("Master")), 1);
        assert_eq!(link.weight_of(&Name::new("Worker")), 1);
        assert_eq!(link.weight_of(&Name::new("Main")), 0);
        assert_eq!(link.main_task().as_str(), "mainprog");
    }

    #[test]
    fn coordinator_rides_startup_task() {
        let mut b = paper_bundler();
        let p = b.place(&Name::new("Main"));
        assert_eq!(p.task, TaskInstanceId(0));
        assert_eq!(p.host.as_str(), "bumpa");
        assert!(!p.forked);
    }

    #[test]
    fn master_fills_startup_instance_then_workers_fork() {
        let mut b = paper_bundler();
        // Master (weight 1) fits in the start-up instance (load 0, limit 1).
        let m = b.place(&Name::new("Master"));
        assert_eq!(m.task, TaskInstanceId(0));
        assert_eq!(m.host.as_str(), "bumpa");
        // The next worker no longer fits: forks a new instance elsewhere.
        let w1 = b.place(&Name::new("Worker"));
        assert!(w1.forked);
        assert_ne!(w1.host.as_str(), "bumpa");
        let w2 = b.place(&Name::new("Worker"));
        assert!(w2.forked);
        assert_ne!(w2.host, w1.host);
        assert_eq!(b.machines_in_use(), 3);
    }

    #[test]
    fn perpetual_instances_are_reused() {
        let mut b = paper_bundler();
        b.place(&Name::new("Master"));
        let w1 = b.place(&Name::new("Worker"));
        assert!(w1.forked);
        // Worker dies; perpetual instance survives at load 0.
        assert_eq!(b.release(&w1), None);
        assert!(b.is_alive(w1.task));
        // A new worker reuses the same instance instead of forking.
        let w2 = b.place(&Name::new("Worker"));
        assert!(!w2.forked);
        assert_eq!(w2.task, w1.task);
    }

    #[test]
    fn non_perpetual_instances_die() {
        let link = LinkSpec::default()
            .load(1)
            .weight("Filler", 1)
            .weight("Worker", 1)
            .task("t");
        let config = ConfigSpec::with_startup("s")
            .host("h", "m1")
            .locus("t", &["h"]);
        let mut b = Bundler::new(link, config);
        // Fill the start-up instance first (it is always perpetual).
        let filler = b.place(&Name::new("Filler"));
        assert!(!filler.forked);
        let w = b.place(&Name::new("Worker"));
        assert!(w.forked);
        let death = b.release(&w).expect("instance should die");
        assert_eq!(death.task, w.task);
        assert!(!b.is_alive(w.task));
        // Next worker forks a fresh instance.
        let w2 = b.place(&Name::new("Worker"));
        assert!(w2.forked);
        assert_ne!(w2.task, w.task);
    }

    #[test]
    fn load_six_bundles_everyone_together() {
        // The paper's parallel variant: change load to 6 and all workers end
        // up in the same task instance.
        let link = LinkSpec::parse(PAPER_MLINK).unwrap().load(6);
        let config = ConfigSpec::with_startup("bumpa");
        let mut b = Bundler::new(link, config);
        let m = b.place(&Name::new("Master"));
        let mut tasks = vec![m.task];
        for _ in 0..5 {
            tasks.push(b.place(&Name::new("Worker")).task);
        }
        assert!(tasks.iter().all(|t| *t == tasks[0]));
        assert_eq!(b.machines_in_use(), 1);
    }

    #[test]
    fn machines_count_reflects_distinct_hosts() {
        let mut b = paper_bundler();
        b.place(&Name::new("Master"));
        for _ in 0..5 {
            b.place(&Name::new("Worker"));
        }
        // bumpa + 5 locus machines.
        assert_eq!(b.machines_in_use(), 6);
    }

    #[test]
    fn more_instances_than_hosts_round_robin() {
        let link = LinkSpec::default()
            .load(1)
            .weight("Filler", 1)
            .weight("Worker", 1)
            .task("t")
            .perpetual(false);
        let config = ConfigSpec::with_startup("s")
            .host("a", "m1")
            .host("b", "m2")
            .locus("t", &["a", "b"]);
        let mut b = Bundler::new(link, config);
        b.place(&Name::new("Filler")); // occupies the start-up instance
        let hosts: Vec<_> = (0..4).map(|_| b.place(&Name::new("Worker")).host).collect();
        // 4 forked instances over 2 locus hosts: 2 each.
        assert_eq!(hosts.iter().filter(|h| h.as_str() == "m1").count(), 2);
        assert_eq!(hosts.iter().filter(|h| h.as_str() == "m2").count(), 2);
    }

    #[test]
    fn sexpr_parser_nesting_and_comments() {
        let sx = parse_sexprs("# c\n{a {b c} d}").unwrap();
        assert_eq!(
            sx,
            vec![Sexp::Group(vec![
                Sexp::Atom("a".into()),
                Sexp::Group(vec![Sexp::Atom("b".into()), Sexp::Atom("c".into())]),
                Sexp::Atom("d".into()),
            ])]
        );
    }

    #[test]
    fn sexpr_parser_rejects_unbalanced() {
        assert!(parse_sexprs("{a").is_err());
        assert!(parse_sexprs("a}").is_err());
    }

    #[test]
    fn parked_instances_counts_idle_perpetual_fleet() {
        let mut b = paper_bundler();
        b.place(&Name::new("Master"));
        let w1 = b.place(&Name::new("Worker"));
        let w2 = b.place(&Name::new("Worker"));
        assert_eq!(b.parked_instances(), 0);
        b.release(&w1);
        b.release(&w2);
        // Both worker instances park instead of dying…
        assert_eq!(b.parked_instances(), 2);
        // …and a new job's worker un-parks one.
        let w3 = b.place(&Name::new("Worker"));
        assert!(!w3.forked);
        assert_eq!(b.parked_instances(), 1);
    }

    #[test]
    fn expire_idle_reaps_perpetual_instances() {
        let mut b = paper_bundler();
        b.place(&Name::new("Master"));
        let w = b.place(&Name::new("Worker"));
        b.release(&w);
        assert!(b.is_alive(w.task));
        let deaths = b.expire_idle();
        assert_eq!(deaths.len(), 1);
        assert!(!b.is_alive(w.task));
    }
}
