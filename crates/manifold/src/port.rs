//! Ports: the openings in a process's bounding walls.
//!
//! A process can only communicate by reading units from its own *input*
//! ports and writing units to its own *output* ports; it never names the
//! process at the other end. Which streams are attached to a port — and
//! hence where its data comes from or goes to — is decided entirely by
//! coordinators (exogenous coordination).
//!
//! Semantics implemented here, matching MANIFOLD:
//!
//! * **Reading** from a port takes a unit from any attached incoming stream
//!   (a nondeterministic merge; here a fair scan). If no unit is available
//!   the reader blocks — possibly until a *future* stream is attached and
//!   fed. Streams whose source is disconnected and whose buffer is drained
//!   are pruned transparently.
//! * **Writing** to a port delivers a copy of the unit to *every* attached
//!   outgoing stream. If no stream is attached, the writer blocks until a
//!   coordinator attaches one; the unit is never dropped silently.
//! * Both operations are kill-aware and return [`MfError::Killed`] when the
//!   owning process is torn down.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{MfError, MfResult};
use crate::ident::{Name, ProcessId};
use crate::stream::Stream;
use crate::unit::Unit;

/// Well-known port names.
pub const INPUT: &str = "input";
/// Standard output port.
pub const OUTPUT: &str = "output";
/// Standard error port.
pub const ERROR: &str = "error";

struct PortInner {
    incoming: Vec<Arc<Stream>>,
    outgoing: Vec<Arc<Stream>>,
    killed: bool,
    /// Fair-scan cursor over `incoming`.
    cursor: usize,
}

/// A named port belonging to one process.
pub struct Port {
    owner: ProcessId,
    name: Name,
    inner: Mutex<PortInner>,
    cv: Condvar,
}

impl Port {
    /// Create a port owned by `owner`.
    pub fn new(owner: ProcessId, name: impl Into<Name>) -> Arc<Port> {
        Arc::new(Port {
            owner,
            name: name.into(),
            inner: Mutex::new(PortInner {
                incoming: Vec::new(),
                outgoing: Vec::new(),
                killed: false,
                cursor: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// The owning process.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// The port's name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Wake all readers/writers blocked on this port so they can re-examine
    /// state. Called by streams after a push and by the kill path.
    pub fn poke(&self) {
        let _guard = self.inner.lock();
        self.cv.notify_all();
    }

    /// Mark the owner killed; all blocked operations return
    /// [`MfError::Killed`].
    pub fn kill(&self) {
        let mut inner = self.inner.lock();
        inner.killed = true;
        self.cv.notify_all();
    }

    /// Attach `stream` as an incoming stream (its sink end feeds this port).
    pub fn attach_incoming(self: &Arc<Self>, stream: &Arc<Stream>) {
        {
            let mut inner = self.inner.lock();
            inner.incoming.push(stream.clone());
        }
        stream.set_snk_port(Some(Arc::downgrade(self)), true);
        self.poke();
    }

    /// Attach `stream` as an outgoing stream (this port is its source).
    pub fn attach_outgoing(self: &Arc<Self>, stream: &Arc<Stream>) {
        {
            let mut inner = self.inner.lock();
            inner.outgoing.push(stream.clone());
        }
        stream.set_src_port(Some(Arc::downgrade(self)), true);
        self.poke();
    }

    /// Remove `stream` from the incoming set (sink-side disconnect).
    pub fn remove_incoming(&self, stream: &Arc<Stream>) {
        let mut inner = self.inner.lock();
        inner.incoming.retain(|s| !Arc::ptr_eq(s, stream));
        inner.cursor = 0;
        self.cv.notify_all();
    }

    /// Remove `stream` from the outgoing set (source-side disconnect).
    pub fn remove_outgoing(&self, stream: &Arc<Stream>) {
        let mut inner = self.inner.lock();
        inner.outgoing.retain(|s| !Arc::ptr_eq(s, stream));
        self.cv.notify_all();
    }

    /// Number of currently attached incoming streams.
    pub fn incoming_count(&self) -> usize {
        self.inner.lock().incoming.len()
    }

    /// Number of currently attached outgoing streams.
    pub fn outgoing_count(&self) -> usize {
        self.inner.lock().outgoing.len()
    }

    fn scan_incoming(inner: &mut PortInner) -> Option<Unit> {
        // Prune drained-dead streams first so they never starve the scan.
        inner.incoming.retain(|s| !s.is_drained_dead());
        let n = inner.incoming.len();
        if n == 0 {
            return None;
        }
        let start = inner.cursor % n;
        for k in 0..n {
            let i = (start + k) % n;
            if let Some(u) = inner.incoming[i].try_pop() {
                inner.cursor = (i + 1) % n;
                return Some(u);
            }
        }
        None
    }

    /// Non-blocking read.
    pub fn try_read(&self) -> Option<Unit> {
        let mut inner = self.inner.lock();
        Self::scan_incoming(&mut inner)
    }

    /// Blocking read: wait until a unit arrives through any incoming stream.
    pub fn read(&self) -> MfResult<Unit> {
        let mut inner = self.inner.lock();
        loop {
            if inner.killed {
                return Err(MfError::Killed);
            }
            if let Some(u) = Self::scan_incoming(&mut inner) {
                return Ok(u);
            }
            self.cv.wait(&mut inner);
        }
    }

    /// Blocking read with a deadline.
    pub fn read_timeout(&self, timeout: Duration) -> MfResult<Unit> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if inner.killed {
                return Err(MfError::Killed);
            }
            if let Some(u) = Self::scan_incoming(&mut inner) {
                return Ok(u);
            }
            if Instant::now() >= deadline {
                return Err(MfError::Timeout);
            }
            if self.cv.wait_until(&mut inner, deadline).timed_out() {
                return Self::scan_incoming(&mut inner).ok_or(MfError::Timeout);
            }
        }
    }

    /// Blocking write: wait until at least one outgoing stream is attached,
    /// then deliver a copy of `unit` to every attached stream.
    pub fn write(&self, unit: Unit) -> MfResult<()> {
        let streams = {
            let mut inner = self.inner.lock();
            loop {
                if inner.killed {
                    return Err(MfError::Killed);
                }
                if !inner.outgoing.is_empty() {
                    break inner.outgoing.clone();
                }
                self.cv.wait(&mut inner);
            }
        };
        // Deliver outside the port lock: pushes poke *other* ports.
        for s in &streams {
            s.push(unit.clone());
        }
        Ok(())
    }

    /// Write only if a stream is already attached; `false` otherwise.
    pub fn try_write(&self, unit: Unit) -> MfResult<bool> {
        let streams = {
            let inner = self.inner.lock();
            if inner.killed {
                return Err(MfError::Killed);
            }
            if inner.outgoing.is_empty() {
                return Ok(false);
            }
            inner.outgoing.clone()
        };
        for s in &streams {
            s.push(unit.clone());
        }
        Ok(true)
    }
}

impl std::fmt::Debug for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Port")
            .field("owner", &self.owner)
            .field("name", &self.name)
            .field("incoming", &inner.incoming.len())
            .field("outgoing", &inner.outgoing.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamType;
    use std::thread;

    fn pid(n: u64) -> ProcessId {
        ProcessId(n)
    }

    fn wire(src: &Arc<Port>, dst: &Arc<Port>, ty: StreamType) -> Arc<Stream> {
        let s = Stream::new(ty);
        src.attach_outgoing(&s);
        dst.attach_incoming(&s);
        s
    }

    #[test]
    fn end_to_end_transfer() {
        let out = Port::new(pid(1), OUTPUT);
        let inp = Port::new(pid(2), INPUT);
        wire(&out, &inp, StreamType::BK);
        out.write(Unit::int(5)).unwrap();
        assert_eq!(inp.read().unwrap().as_int(), Some(5));
    }

    #[test]
    fn write_blocks_until_connected() {
        let out = Port::new(pid(1), OUTPUT);
        let inp = Port::new(pid(2), INPUT);
        let out2 = out.clone();
        let h = thread::spawn(move || out2.write(Unit::int(9)));
        thread::sleep(Duration::from_millis(20));
        assert!(!h.is_finished(), "write should block with no stream");
        wire(&out, &inp, StreamType::BK);
        h.join().unwrap().unwrap();
        assert_eq!(inp.read().unwrap().as_int(), Some(9));
    }

    #[test]
    fn read_blocks_until_data() {
        let out = Port::new(pid(1), OUTPUT);
        let inp = Port::new(pid(2), INPUT);
        wire(&out, &inp, StreamType::BK);
        let inp2 = inp.clone();
        let h = thread::spawn(move || inp2.read());
        thread::sleep(Duration::from_millis(10));
        out.write(Unit::text("late")).unwrap();
        assert_eq!(h.join().unwrap().unwrap().as_text(), Some("late"));
    }

    #[test]
    fn read_sees_data_through_future_stream() {
        // MANIFOLD semantics: a reader blocked on an unconnected port is
        // satisfied when a coordinator later attaches a fed stream.
        let inp = Port::new(pid(2), INPUT);
        let inp2 = inp.clone();
        let h = thread::spawn(move || inp2.read());
        thread::sleep(Duration::from_millis(10));
        let s = Stream::preloaded(StreamType::BK, [Unit::int(1)]);
        inp.attach_incoming(&s);
        assert_eq!(h.join().unwrap().unwrap().as_int(), Some(1));
    }

    #[test]
    fn write_fans_out_to_all_streams() {
        let out = Port::new(pid(1), OUTPUT);
        let a = Port::new(pid(2), INPUT);
        let b = Port::new(pid(3), INPUT);
        wire(&out, &a, StreamType::BK);
        wire(&out, &b, StreamType::BK);
        out.write(Unit::int(3)).unwrap();
        assert_eq!(a.read().unwrap().as_int(), Some(3));
        assert_eq!(b.read().unwrap().as_int(), Some(3));
    }

    #[test]
    fn drained_dead_streams_are_pruned() {
        let inp = Port::new(pid(2), INPUT);
        let s = Stream::preloaded(StreamType::BK, [Unit::int(1)]);
        inp.attach_incoming(&s);
        assert_eq!(inp.incoming_count(), 1);
        assert_eq!(inp.read().unwrap().as_int(), Some(1));
        assert!(inp.try_read().is_none());
        assert_eq!(inp.incoming_count(), 0, "drained stream pruned");
    }

    #[test]
    fn bk_break_lets_sink_drain() {
        let out = Port::new(pid(1), OUTPUT);
        let inp = Port::new(pid(2), INPUT);
        let s = wire(&out, &inp, StreamType::BK);
        out.write(Unit::int(11)).unwrap();
        s.dismantle(); // break at source
        assert_eq!(out.outgoing_count(), 0);
        assert_eq!(inp.read().unwrap().as_int(), Some(11));
    }

    #[test]
    fn kill_unblocks_reader_and_writer() {
        let inp = Port::new(pid(2), INPUT);
        let inp2 = inp.clone();
        let h = thread::spawn(move || inp2.read());
        thread::sleep(Duration::from_millis(10));
        inp.kill();
        assert_eq!(h.join().unwrap(), Err(MfError::Killed));

        let out = Port::new(pid(1), OUTPUT);
        let out2 = out.clone();
        let h = thread::spawn(move || out2.write(Unit::int(0)));
        thread::sleep(Duration::from_millis(10));
        out.kill();
        assert_eq!(h.join().unwrap(), Err(MfError::Killed));
    }

    #[test]
    fn read_timeout_expires() {
        let inp = Port::new(pid(2), INPUT);
        let r = inp.read_timeout(Duration::from_millis(20));
        assert_eq!(r, Err(MfError::Timeout));
    }

    #[test]
    fn fair_merge_across_streams() {
        let a = Port::new(pid(1), OUTPUT);
        let b = Port::new(pid(2), OUTPUT);
        let inp = Port::new(pid(3), INPUT);
        wire(&a, &inp, StreamType::BK);
        wire(&b, &inp, StreamType::BK);
        for _ in 0..10 {
            a.write(Unit::int(1)).unwrap();
            b.write(Unit::int(2)).unwrap();
        }
        let mut from_a = 0;
        let mut from_b = 0;
        for _ in 0..20 {
            match inp.read().unwrap().as_int().unwrap() {
                1 => from_a += 1,
                2 => from_b += 1,
                _ => unreachable!(),
            }
        }
        assert_eq!(from_a, 10);
        assert_eq!(from_b, 10);
    }

    #[test]
    fn try_write_without_stream() {
        let out = Port::new(pid(1), OUTPUT);
        assert!(!out.try_write(Unit::int(1)).unwrap());
        let inp = Port::new(pid(2), INPUT);
        wire(&out, &inp, StreamType::BK);
        assert!(out.try_write(Unit::int(1)).unwrap());
    }
}
