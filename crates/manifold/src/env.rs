//! The environment: process registry, activation, task-instance
//! bookkeeping, and teardown.
//!
//! An [`Environment`] is the in-process analogue of a running MANIFOLD
//! application: it assigns process ids, applies the MLINK/CONFIG placement
//! rules through a [`Bundler`], spawns one thread per activated process, and
//! tears everything down at shutdown.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::config::ConfigSpec;
use crate::coord::Coord;
use crate::error::{MfError, MfResult};
use crate::ident::{Name, ProcessId};
use crate::link::{Bundler, LinkSpec};
use crate::pool::ThreadPool;
use crate::process::{AtomicProcess, LifeState, ProcessCore, ProcessCtx, ProcessRef};
use crate::trace::{Clock, TraceSink};

pub(crate) struct EnvShared {
    next_pid: AtomicU64,
    processes: Mutex<HashMap<ProcessId, Arc<ProcessCore>>>,
    bundler: Mutex<Bundler>,
    trace: Arc<TraceSink>,
    clock: Clock,
    threads: Mutex<Vec<JoinHandle<()>>>,
    pool: ThreadPool,
}

impl Drop for EnvShared {
    fn drop(&mut self) {
        // An environment dropped without `shutdown` must still wake its
        // parked threads so they exit instead of leaking until process end.
        self.pool.drain();
    }
}

/// A running MANIFOLD application instance.
///
/// Cheap to clone (all clones share the same state). Create processes with
/// [`Environment::create_process`], start them with
/// [`Environment::activate`], and drive the whole application from a root
/// coordinator via [`Environment::run_coordinator`].
#[derive(Clone)]
pub struct Environment {
    shared: Arc<EnvShared>,
}

impl Default for Environment {
    fn default() -> Self {
        Self::new()
    }
}

impl Environment {
    /// Environment with default (single-task, localhost) link/config specs
    /// and the system clock.
    pub fn new() -> Self {
        Self::with_specs(LinkSpec::default(), ConfigSpec::local())
    }

    /// Environment with explicit MLINK and CONFIG specifications.
    pub fn with_specs(link: LinkSpec, config: ConfigSpec) -> Self {
        Self::with_specs_and_clock(link, config, Clock::System)
    }

    /// Full control: specs plus the trace clock (virtual clocks are used by
    /// the cluster simulator).
    pub fn with_specs_and_clock(link: LinkSpec, config: ConfigSpec, clock: Clock) -> Self {
        Environment {
            shared: Arc::new(EnvShared {
                next_pid: AtomicU64::new(1),
                processes: Mutex::new(HashMap::new()),
                bundler: Mutex::new(Bundler::new(link, config)),
                trace: Arc::new(TraceSink::new()),
                clock,
                threads: Mutex::new(Vec::new()),
                pool: ThreadPool::default(),
            }),
        }
    }

    /// The shared trace sink (§6-format chronological output).
    pub fn trace(&self) -> &Arc<TraceSink> {
        &self.shared.trace
    }

    /// Echo trace records to stderr as they are produced.
    pub fn echo_trace(&self, on: bool) {
        self.shared.trace.set_echo(on);
    }

    /// Inspect the bundler (machines in use, task instances, …).
    pub fn with_bundler<R>(&self, f: impl FnOnce(&Bundler) -> R) -> R {
        f(&self.shared.bundler.lock())
    }

    fn next_id(&self) -> ProcessId {
        ProcessId(self.shared.next_pid.fetch_add(1, Ordering::Relaxed))
    }

    /// Create (but do not activate) an atomic process instance of the named
    /// manifold.
    pub fn create_process(
        &self,
        manifold_name: impl Into<Name>,
        body: impl AtomicProcess,
    ) -> ProcessRef {
        let core = ProcessCore::new(
            self.next_id(),
            manifold_name,
            self.shared.trace.clone(),
            self.shared.clock.clone(),
        );
        *core.body.lock() = Some(Box::new(body));
        self.shared.processes.lock().insert(core.id(), core.clone());
        ProcessRef::new(core)
    }

    /// Look up a live process by id.
    pub fn process(&self, id: ProcessId) -> Option<ProcessRef> {
        self.shared
            .processes
            .lock()
            .get(&id)
            .cloned()
            .map(ProcessRef::new)
    }

    /// Activate a created process: place it in a task instance per the
    /// MLINK/CONFIG rules and start its body on a thread — a parked one
    /// from an earlier job when the fleet is warm, a fresh one otherwise.
    pub fn activate(&self, p: &ProcessRef) -> MfResult<()> {
        let core = p.core().clone();
        if core.life_state() != LifeState::Created {
            return Err(MfError::AlreadyActive(core.id()));
        }
        let body = core
            .body
            .lock()
            .take()
            .ok_or(MfError::AlreadyActive(core.id()))?;
        let placement = self.shared.bundler.lock().place(core.manifold_name());
        core.set_placement(placement.clone());
        // Task-instance load bookkeeping when the process goes away.
        let env = self.clone();
        let pl = placement.clone();
        core.on_terminate(move || {
            env.shared.bundler.lock().release(&pl);
        });
        core.set_life(LifeState::Active);
        let ctx = ProcessCtx::new(core.clone());
        let job = move || {
            let result = body.run(ctx);
            match result {
                Ok(()) | Err(MfError::Killed) => {}
                Err(e) => core.record_failure(e),
            }
            core.terminate();
        };
        if let Some(handle) = self.shared.pool.run(Box::new(job)) {
            self.shared.threads.lock().push(handle);
        }
        Ok(())
    }

    fn make_coordinator_core(&self, name: &Name) -> Arc<ProcessCore> {
        let core = ProcessCore::new(
            self.next_id(),
            name.clone(),
            self.shared.trace.clone(),
            self.shared.clock.clone(),
        );
        let placement = self.shared.bundler.lock().place(name);
        core.set_placement(placement.clone());
        let env = self.clone();
        core.on_terminate(move || {
            env.shared.bundler.lock().release(&placement);
        });
        core.set_life(LifeState::Active);
        self.shared.processes.lock().insert(core.id(), core.clone());
        core
    }

    /// Run a coordinator on the *current* thread until it returns. This is
    /// how an application's `Main` manifold is entered.
    pub fn run_coordinator<R>(
        &self,
        name: impl Into<Name>,
        f: impl FnOnce(&mut Coord) -> MfResult<R>,
    ) -> MfResult<R> {
        let name = name.into();
        let core = self.make_coordinator_core(&name);
        let mut coord = Coord::new(ProcessCtx::new(core.clone()), self.clone());
        let result = f(&mut coord);
        core.terminate();
        result
    }

    /// Run a manner from a compiled [`Mc`] artifact as the root
    /// coordinator, under the selected executor. `make_args` builds the
    /// manner's arguments against the live coordinator (creating the
    /// master process, wrapping atomic factories, …); `source_name`
    /// labels MES trace records.
    ///
    /// This is the one seam every entry point (tests, benches, the
    /// `protocol` crate) threads its `--coord interp|compiled` selector
    /// through, so both executors share the surrounding plumbing verbatim.
    pub fn run_manner(
        &self,
        mc: &crate::lang::Mc,
        kind: crate::lang::CoordExec,
        source_name: &str,
        manner: &str,
        make_args: impl FnOnce(&mut Coord) -> MfResult<Vec<crate::lang::Value>>,
    ) -> MfResult<()> {
        use crate::lang::CoordExecutor;
        self.run_coordinator(Name::new(manner), |coord| {
            let args = make_args(coord)?;
            mc.executor(kind, source_name)
                .call_manner(coord, manner, args)
        })
    }

    /// Run a coordinator on a new thread; returns its process reference.
    pub fn spawn_coordinator(
        &self,
        name: impl Into<Name>,
        f: impl FnOnce(&mut Coord) -> MfResult<()> + Send + 'static,
    ) -> ProcessRef {
        let name = name.into();
        let core = self.make_coordinator_core(&name);
        let env = self.clone();
        let core2 = core.clone();
        let job = move || {
            let mut coord = Coord::new(ProcessCtx::new(core2.clone()), env);
            let result = f(&mut coord);
            if let Err(e) = result {
                if e != MfError::Killed {
                    core2.record_failure(e);
                }
            }
            core2.terminate();
        };
        if let Some(handle) = self.shared.pool.run(Box::new(job)) {
            self.shared.threads.lock().push(handle);
        }
        ProcessRef::new(core)
    }

    /// Block until the given process terminates.
    pub fn join_process(&self, p: &ProcessRef, timeout: Duration) -> MfResult<()> {
        p.core().wait_terminated(timeout)
    }

    /// Kill every process (their blocking operations return
    /// [`MfError::Killed`]) and join all threads, parked ones included.
    pub fn shutdown(&self) {
        let procs: Vec<Arc<ProcessCore>> = self.shared.processes.lock().values().cloned().collect();
        for p in &procs {
            p.kill();
        }
        self.shared.pool.drain();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.threads.lock());
        for h in handles {
            let _ = h.join();
        }
        for p in &procs {
            p.terminate();
        }
    }

    /// Per-job maintenance for a *perpetual* environment: drop terminated
    /// processes from the registry and join threads that have already
    /// finished, returning the failures the reaped processes recorded.
    ///
    /// An environment that serves many jobs over one fleet would otherwise
    /// grow its registry and thread list without bound; `terminated` fires
    /// per-process (per-job masters and workers come and go) while the
    /// environment — and every parked perpetual task instance in its
    /// bundler — stays alive. Live processes are untouched, so this is
    /// safe to call between jobs while the fleet idles.
    pub fn reap(&self) -> Vec<(ProcessId, MfError)> {
        let mut failures = Vec::new();
        self.shared.processes.lock().retain(|id, core| {
            if core.life_state() == LifeState::Terminated {
                if let Some(e) = core.failure() {
                    failures.push((*id, e));
                }
                false
            } else {
                true
            }
        });
        let mut threads = self.shared.threads.lock();
        let mut live = Vec::with_capacity(threads.len());
        for h in threads.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        *threads = live;
        failures
    }

    /// Join all spawned threads without killing (application ran to
    /// completion on its own). Parked threads are woken to exit first —
    /// they would otherwise block the join forever.
    pub fn join_all(&self) {
        self.shared.pool.drain();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.threads.lock());
        for h in handles {
            let _ = h.join();
        }
    }

    /// Threads parked in the reuse pool (their last process body returned;
    /// the next [`Environment::activate`] will hand one of them the new
    /// body instead of spawning). Fleet introspection for engines and
    /// benchmarks.
    pub fn parked_threads(&self) -> usize {
        self.shared.pool.parked()
    }

    /// Errors recorded by failed process bodies (excluding clean kills).
    pub fn failures(&self) -> Vec<(ProcessId, MfError)> {
        self.shared
            .processes
            .lock()
            .values()
            .filter_map(|c| c.failure().map(|e| (c.id(), e)))
            .collect()
    }
}

impl std::fmt::Debug for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Environment")
            .field("processes", &self.shared.processes.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::Unit;

    #[test]
    fn atomic_process_runs_and_terminates() {
        let env = Environment::new();
        let p = env.create_process("P", |ctx: ProcessCtx| {
            ctx.post("ran");
            Ok(())
        });
        assert_eq!(p.life_state(), LifeState::Created);
        env.activate(&p).unwrap();
        p.core().wait_terminated(Duration::from_secs(5)).unwrap();
        assert_eq!(p.life_state(), LifeState::Terminated);
        env.shutdown();
    }

    #[test]
    fn double_activation_rejected() {
        let env = Environment::new();
        let p = env.create_process("P", |_ctx: ProcessCtx| Ok(()));
        env.activate(&p).unwrap();
        assert!(matches!(env.activate(&p), Err(MfError::AlreadyActive(_))));
        env.shutdown();
    }

    #[test]
    fn failures_are_recorded() {
        let env = Environment::new();
        let p = env.create_process("P", |_ctx: ProcessCtx| Err(MfError::App("boom".into())));
        env.activate(&p).unwrap();
        p.core().wait_terminated(Duration::from_secs(5)).unwrap();
        let fails = env.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].1, MfError::App("boom".into()));
        env.shutdown();
    }

    #[test]
    fn shutdown_unblocks_stuck_process() {
        let env = Environment::new();
        let p = env.create_process("Stuck", |ctx: ProcessCtx| {
            // Blocks forever: no stream will ever feed this port.
            let _ = ctx.read("input")?;
            Ok(())
        });
        env.activate(&p).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        env.shutdown();
        assert_eq!(p.life_state(), LifeState::Terminated);
    }

    #[test]
    fn run_coordinator_round_trip() {
        let env = Environment::new();
        let out = env.run_coordinator("Main", |coord| {
            let echo = coord.create_atomic("Echo", |ctx: ProcessCtx| {
                let u = ctx.read("input")?;
                ctx.write("output", u)?;
                Ok(())
            });
            coord.activate(&echo)?;
            let mut st = coord.state();
            st.send(Unit::int(5), &echo, "input")?;
            st.connect_to_self(&echo, "output", "input", crate::stream::StreamType::BK)?;
            // Read while the state (and its BK stream) is still up.
            let u = coord.read("input");
            drop(st);
            u
        });
        assert_eq!(out.unwrap().as_int(), Some(5));
        env.shutdown();
    }

    #[test]
    fn placement_uses_bundler() {
        let link = LinkSpec::default().load(1).weight("Worker", 1).task("t");
        let config = ConfigSpec::with_startup("start")
            .host("a", "m1")
            .host("b", "m2")
            .locus("t", &["a", "b"]);
        let env = Environment::with_specs(link, config);
        // Workers park on a read so both are placed simultaneously.
        let w1 = env.create_process("Worker", |ctx: ProcessCtx| {
            let _ = ctx.read("input")?;
            Ok(())
        });
        let w2 = env.create_process("Worker", |ctx: ProcessCtx| {
            let _ = ctx.read("input")?;
            Ok(())
        });
        env.activate(&w1).unwrap();
        env.activate(&w2).unwrap();
        let p1 = w1.core().placement().unwrap();
        let p2 = w2.core().placement().unwrap();
        assert_ne!(p1.task, p2.task, "load-1 workers need distinct instances");
        // First worker filled the start-up instance; second forked out.
        assert_eq!(p1.host.as_str(), "start");
        assert!(p2.forked);
        env.shutdown();
    }

    #[test]
    fn threads_park_and_are_reused_across_jobs() {
        let env = Environment::new();
        let wait_parked = |n: usize| {
            let t0 = std::time::Instant::now();
            while env.parked_threads() < n {
                assert!(t0.elapsed() < Duration::from_secs(5), "thread never parked");
                std::thread::yield_now();
            }
        };
        for _ in 0..3 {
            let p = env.create_process("P", |_ctx: ProcessCtx| Ok(()));
            env.activate(&p).unwrap();
            p.core().wait_terminated(Duration::from_secs(5)).unwrap();
            // Parking happens just after terminate; wait for it so the
            // next activation must reuse rather than spawn.
            wait_parked(1);
        }
        assert_eq!(
            env.parked_threads(),
            1,
            "three jobs should share one thread"
        );
        env.shutdown();
        assert_eq!(env.parked_threads(), 0, "shutdown drains the pool");
    }

    #[test]
    fn spawn_coordinator_runs_concurrently() {
        let env = Environment::new();
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let f2 = flag.clone();
        let c = env.spawn_coordinator("Side", move |_coord| {
            f2.store(true, Ordering::SeqCst);
            Ok(())
        });
        c.core().wait_terminated(Duration::from_secs(5)).unwrap();
        assert!(flag.load(Ordering::SeqCst));
        env.shutdown();
    }
}
