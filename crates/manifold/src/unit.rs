//! Units: the indivisible data items that flow through streams.
//!
//! MANIFOLD streams carry *units* — opaque data packets. A unit can be a raw
//! byte block, a scalar, a text, a numeric vector (the grid data of the
//! paper's application), a tuple, or — crucially for the master/worker
//! protocol — a *process reference* (`&worker` in MANIFOLD notation), which
//! lets a coordinator hand the identity of one process to another.

use std::sync::Arc;

use bytes::Bytes;

use crate::error::{MfError, MfResult};
use crate::process::ProcessRef;

/// A single datum travelling through a stream.
#[derive(Clone, Debug, PartialEq)]
pub enum Unit {
    /// Raw bytes (uninterpreted payload).
    Bytes(Bytes),
    /// A signed integer.
    Int(i64),
    /// A double-precision real.
    Real(f64),
    /// A text string.
    Text(Arc<str>),
    /// A shared vector of reals. This is the natural carrier for grid data:
    /// cloning it is O(1) so the runtime never deep-copies numerical
    /// payloads, mirroring MANIFOLD's pass-by-reference within a task
    /// instance.
    Reals(Arc<Vec<f64>>),
    /// A reference to a process (`&p`). Receiving one allows activating the
    /// process and naming it in stream connections.
    ProcessRef(ProcessRef),
    /// An ordered group of units, delivered atomically.
    Tuple(Arc<Vec<Unit>>),
}

impl Unit {
    /// Build an integer unit.
    pub fn int(v: i64) -> Self {
        Unit::Int(v)
    }

    /// Build a real unit.
    pub fn real(v: f64) -> Self {
        Unit::Real(v)
    }

    /// Build a text unit.
    pub fn text(v: impl AsRef<str>) -> Self {
        Unit::Text(Arc::from(v.as_ref()))
    }

    /// Build a shared real-vector unit.
    pub fn reals(v: Vec<f64>) -> Self {
        Unit::Reals(Arc::new(v))
    }

    /// Build a real-vector unit from an already shared buffer. The unit
    /// references the same allocation — encoding an application payload
    /// into a stream unit is O(1), no deep copy.
    pub fn reals_shared(v: Arc<Vec<f64>>) -> Self {
        Unit::Reals(v)
    }

    /// Build a tuple unit.
    pub fn tuple(v: Vec<Unit>) -> Self {
        Unit::Tuple(Arc::new(v))
    }

    /// Build a bytes unit.
    pub fn bytes(v: impl Into<Bytes>) -> Self {
        Unit::Bytes(v.into())
    }

    /// Interpret as integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Unit::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as real, if it is one (integers are *not* coerced).
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Unit::Real(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Unit::Text(v) => Some(v),
            _ => None,
        }
    }

    /// Interpret as shared real vector.
    pub fn as_reals(&self) -> Option<&Arc<Vec<f64>>> {
        match self {
            Unit::Reals(v) => Some(v),
            _ => None,
        }
    }

    /// Interpret as a process reference.
    pub fn as_process_ref(&self) -> Option<&ProcessRef> {
        match self {
            Unit::ProcessRef(r) => Some(r),
            _ => None,
        }
    }

    /// Interpret as tuple.
    pub fn as_tuple(&self) -> Option<&[Unit]> {
        match self {
            Unit::Tuple(v) => Some(v),
            _ => None,
        }
    }

    /// Like [`Unit::as_int`] but returning a typed error, for `?`-style
    /// protocol code.
    pub fn expect_int(&self) -> MfResult<i64> {
        self.as_int().ok_or(MfError::UnitType { expected: "Int" })
    }

    /// Like [`Unit::as_real`] but returning a typed error.
    pub fn expect_real(&self) -> MfResult<f64> {
        self.as_real().ok_or(MfError::UnitType { expected: "Real" })
    }

    /// Like [`Unit::as_reals`] but returning a typed error.
    pub fn expect_reals(&self) -> MfResult<Arc<Vec<f64>>> {
        self.as_reals()
            .cloned()
            .ok_or(MfError::UnitType { expected: "Reals" })
    }

    /// Like [`Unit::as_process_ref`] but returning a typed error.
    pub fn expect_process_ref(&self) -> MfResult<ProcessRef> {
        self.as_process_ref().cloned().ok_or(MfError::UnitType {
            expected: "ProcessRef",
        })
    }

    /// Like [`Unit::as_text`] but returning a typed error.
    pub fn expect_text(&self) -> MfResult<Arc<str>> {
        match self {
            Unit::Text(v) => Ok(v.clone()),
            _ => Err(MfError::UnitType { expected: "Text" }),
        }
    }

    /// Approximate wire size of the unit in bytes, as it would cross the
    /// network between task instances. Used by the cluster simulator to cost
    /// inter-host transfers.
    pub fn wire_size(&self) -> usize {
        match self {
            Unit::Bytes(b) => b.len(),
            Unit::Int(_) => 8,
            Unit::Real(_) => 8,
            Unit::Text(s) => s.len(),
            Unit::Reals(v) => v.len() * 8,
            Unit::ProcessRef(_) => 16,
            Unit::Tuple(v) => v.iter().map(Unit::wire_size).sum::<usize>() + 8,
        }
    }
}

impl From<i64> for Unit {
    fn from(v: i64) -> Self {
        Unit::Int(v)
    }
}

impl From<f64> for Unit {
    fn from(v: f64) -> Self {
        Unit::Real(v)
    }
}

impl From<&str> for Unit {
    fn from(v: &str) -> Self {
        Unit::text(v)
    }
}

impl From<Vec<f64>> for Unit {
    fn from(v: Vec<f64>) -> Self {
        Unit::reals(v)
    }
}

impl From<ProcessRef> for Unit {
    fn from(v: ProcessRef) -> Self {
        Unit::ProcessRef(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_constructors() {
        assert_eq!(Unit::int(3).as_int(), Some(3));
        assert_eq!(Unit::real(2.5).as_real(), Some(2.5));
        assert_eq!(Unit::text("hi").as_text(), Some("hi"));
        assert_eq!(Unit::reals(vec![1.0, 2.0]).as_reals().unwrap().len(), 2);
        let t = Unit::tuple(vec![Unit::int(1), Unit::real(2.0)]);
        assert_eq!(t.as_tuple().unwrap().len(), 2);
    }

    #[test]
    fn no_cross_kind_coercion() {
        assert_eq!(Unit::int(3).as_real(), None);
        assert_eq!(Unit::real(3.0).as_int(), None);
        assert!(Unit::int(3).expect_real().is_err());
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Unit::int(1).wire_size(), 8);
        assert_eq!(Unit::reals(vec![0.0; 100]).wire_size(), 800);
        assert_eq!(
            Unit::tuple(vec![Unit::int(1), Unit::int(2)]).wire_size(),
            8 + 8 + 8
        );
        assert_eq!(Unit::text("abc").wire_size(), 3);
        assert_eq!(Unit::bytes(vec![0u8; 5]).wire_size(), 5);
    }

    #[test]
    fn reals_clone_is_shallow() {
        let u = Unit::reals(vec![1.0; 1000]);
        let v = u.clone();
        match (&u, &v) {
            (Unit::Reals(a), Unit::Reals(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }
}
