//! Processes: black boxes with ports, an event memory, and a life cycle.
//!
//! A MANIFOLD process is created, then *activated* (it starts running), and
//! eventually *terminates*. It communicates only by reading/writing its own
//! ports and by raising events, which the environment broadcasts to the
//! processes observing it. *Atomic* processes ([`AtomicProcess`]) are the
//! computation carriers — in the paper these are thin C wrappers around the
//! legacy `subsolve` and main routines; here they are Rust closures or
//! structs receiving a [`ProcessCtx`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{MfError, MfResult};
use crate::event::{EventMemory, EventOccurrence, EventPattern};
use crate::ident::{Name, ProcessId};
use crate::link::Placement;
use crate::port::Port;
use crate::remote::RemoteIdentity;
use crate::trace::{Clock, TraceRecord, TraceSink};
use crate::unit::Unit;

/// Life-cycle states of a process instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifeState {
    /// Created but not yet activated (its body has not started).
    Created,
    /// Running.
    Active,
    /// Finished (normally or by kill).
    Terminated,
}

/// The behaviour of an atomic (computational) process.
///
/// Implemented for any `FnOnce(ProcessCtx) -> MfResult<()>`, which is the
/// idiomatic way to write workers:
///
/// ```
/// # use manifold::prelude::*;
/// let body = |ctx: ProcessCtx| -> MfResult<()> {
///     let x = ctx.read("input")?;
///     ctx.write("output", x)?;
///     Ok(())
/// };
/// # let _ = body; // used via Coord::create_atomic
/// ```
pub trait AtomicProcess: Send + 'static {
    /// Run the process body to completion.
    fn run(self: Box<Self>, ctx: ProcessCtx) -> MfResult<()>;
}

impl<F> AtomicProcess for F
where
    F: FnOnce(ProcessCtx) -> MfResult<()> + Send + 'static,
{
    fn run(self: Box<Self>, ctx: ProcessCtx) -> MfResult<()> {
        (*self)(ctx)
    }
}

type TerminateHook = Box<dyn FnOnce() + Send>;

/// Shared state of one process instance.
pub struct ProcessCore {
    id: ProcessId,
    manifold_name: Name,
    life: Mutex<LifeState>,
    life_cv: Condvar,
    events: EventMemory,
    ports: Mutex<HashMap<Name, Arc<Port>>>,
    watchers: Mutex<Vec<Weak<ProcessCore>>>,
    placement: Mutex<Option<Placement>>,
    remote_identity: Mutex<Option<RemoteIdentity>>,
    pub(crate) body: Mutex<Option<Box<dyn AtomicProcess>>>,
    on_terminate: Mutex<Vec<TerminateHook>>,
    failure: Mutex<Option<MfError>>,
    killed: AtomicBool,
    trace: Arc<TraceSink>,
    clock: Clock,
}

impl ProcessCore {
    /// Create a core (normally done through the environment).
    pub fn new(
        id: ProcessId,
        manifold_name: impl Into<Name>,
        trace: Arc<TraceSink>,
        clock: Clock,
    ) -> Arc<ProcessCore> {
        Arc::new(ProcessCore {
            id,
            manifold_name: manifold_name.into(),
            life: Mutex::new(LifeState::Created),
            life_cv: Condvar::new(),
            events: EventMemory::new(),
            ports: Mutex::new(HashMap::new()),
            watchers: Mutex::new(Vec::new()),
            placement: Mutex::new(None),
            remote_identity: Mutex::new(None),
            body: Mutex::new(None),
            on_terminate: Mutex::new(Vec::new()),
            failure: Mutex::new(None),
            killed: AtomicBool::new(false),
            trace,
            clock,
        })
    }

    /// The process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The manifold (definition) name, e.g. `Worker(event)`.
    pub fn manifold_name(&self) -> &Name {
        &self.manifold_name
    }

    /// Current life state.
    pub fn life_state(&self) -> LifeState {
        *self.life.lock()
    }

    /// The process's event memory.
    pub fn events(&self) -> &EventMemory {
        &self.events
    }

    /// Where this process was placed (set at activation).
    pub fn placement(&self) -> Option<Placement> {
        self.placement.lock().clone()
    }

    pub(crate) fn set_placement(&self, p: Placement) {
        *self.placement.lock() = Some(p);
    }

    /// Adopt a remote task-instance identity: trace records emitted by this
    /// process report the given machine and task-instance uid instead of the
    /// local placement's. Used by proxy processes that stand in for a
    /// process living in another OS process (possibly on another host).
    pub fn set_remote_identity(&self, identity: RemoteIdentity) {
        *self.remote_identity.lock() = Some(identity);
    }

    /// The adopted remote identity, if any.
    pub fn remote_identity(&self) -> Option<RemoteIdentity> {
        self.remote_identity.lock().clone()
    }

    pub(crate) fn set_life(&self, s: LifeState) {
        *self.life.lock() = s;
        self.life_cv.notify_all();
    }

    /// Register a hook to run when the process terminates (used by the
    /// environment for task-instance load bookkeeping).
    pub fn on_terminate(&self, hook: impl FnOnce() + Send + 'static) {
        let mut hooks = self.on_terminate.lock();
        if *self.life.lock() == LifeState::Terminated {
            drop(hooks);
            hook();
        } else {
            hooks.push(Box::new(hook));
        }
    }

    /// Get (creating on demand) the named port. Any party may cause port
    /// creation: coordinators routinely connect to ports (`dataport`) the
    /// owner has not touched yet.
    pub fn port(&self, name: impl Into<Name>) -> Arc<Port> {
        let name = name.into();
        let mut ports = self.ports.lock();
        let port = ports
            .entry(name.clone())
            .or_insert_with(|| Port::new(self.id, name))
            .clone();
        drop(ports);
        // A port created after the process was killed must be born killed,
        // or a blocked read on it would never observe the kill.
        if self.killed.load(Ordering::SeqCst) {
            port.kill();
        }
        port
    }

    /// Names of the ports that exist so far.
    pub fn port_names(&self) -> Vec<Name> {
        self.ports.lock().keys().cloned().collect()
    }

    /// `watcher` starts observing this process: future raised events and the
    /// termination notice are delivered to its event memory. If the process
    /// has already terminated, the termination notice is delivered at once.
    pub fn add_watcher(&self, watcher: &Arc<ProcessCore>) {
        let mut ws = self.watchers.lock();
        let already_terminated = *self.life.lock() == LifeState::Terminated;
        if !ws
            .iter()
            .any(|w| w.upgrade().is_some_and(|w| w.id == watcher.id))
        {
            ws.push(Arc::downgrade(watcher));
        }
        drop(ws);
        if already_terminated {
            watcher.events.deliver(EventOccurrence::terminated(self.id));
        }
    }

    /// Raise a named event: deliver an occurrence to every watcher.
    pub fn raise(&self, event: impl Into<Name>) {
        let occ = EventOccurrence::named(event, self.id);
        self.broadcast(occ);
    }

    fn broadcast(&self, occ: EventOccurrence) {
        let watchers: Vec<Arc<ProcessCore>> = {
            let mut ws = self.watchers.lock();
            ws.retain(|w| w.strong_count() > 0);
            ws.iter().filter_map(Weak::upgrade).collect()
        };
        for w in watchers {
            w.events.deliver(occ.clone());
        }
    }

    /// Post an event occurrence into this process's own memory (`post(e)`).
    pub fn post(&self, event: impl Into<Name>) {
        self.events.deliver(EventOccurrence::named(event, self.id));
    }

    /// Mark terminated: notify life waiters, broadcast the termination
    /// notice, and run termination hooks.
    pub fn terminate(&self) {
        {
            let mut life = self.life.lock();
            if *life == LifeState::Terminated {
                return;
            }
            *life = LifeState::Terminated;
            self.life_cv.notify_all();
        }
        self.broadcast(EventOccurrence::terminated(self.id));
        let hooks: Vec<TerminateHook> = std::mem::take(&mut *self.on_terminate.lock());
        for h in hooks {
            h();
        }
    }

    /// Forcefully interrupt the process: all blocking operations return
    /// [`MfError::Killed`], after which its thread unwinds and terminates.
    pub fn kill(&self) {
        // Order matters: set the flag first so any port created from now on
        // is born killed (see `port`), then wake everything already blocked.
        self.killed.store(true, Ordering::SeqCst);
        self.events.kill();
        let ports: Vec<Arc<Port>> = self.ports.lock().values().cloned().collect();
        for p in ports {
            p.kill();
        }
    }

    /// Has this process been killed?
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Block until the process terminates (test/join helper; coordinators
    /// use the event-based `terminated(p)` primitive instead).
    pub fn wait_terminated(&self, timeout: Duration) -> MfResult<()> {
        let deadline = std::time::Instant::now() + timeout;
        let mut life = self.life.lock();
        while *life != LifeState::Terminated {
            if self.life_cv.wait_until(&mut life, deadline).timed_out() {
                return Err(MfError::Timeout);
            }
        }
        Ok(())
    }

    /// The error the body returned, if it failed with something other than
    /// a clean kill.
    pub fn failure(&self) -> Option<MfError> {
        self.failure.lock().clone()
    }

    pub(crate) fn record_failure(&self, e: MfError) {
        *self.failure.lock() = Some(e);
    }

    /// Emit a trace record in the paper's §6 format.
    pub fn trace_message(&self, source_file: &str, line: u32, message: String) {
        let placement = self.placement.lock().clone();
        let (mut host, mut task_uid, task_name) = match placement {
            Some(p) => (
                p.host.clone(),
                TraceRecord::task_uid_for(p.task),
                p.task_name.clone(),
            ),
            None => (crate::config::HostName::new("unplaced"), 0, Name::new("?")),
        };
        // A proxy for a remote task instance reports the *real* machine the
        // work runs on, not the local placement's CONFIG label.
        if let Some(remote) = self.remote_identity.lock().clone() {
            host = remote.host;
            task_uid = remote.task_uid;
        }
        let micros = self.clock.now_micros();
        self.trace.record(TraceRecord {
            host,
            task_uid,
            proc_uid: TraceRecord::proc_uid_for(self.id),
            secs: micros / 1_000_000,
            usecs: (micros % 1_000_000) as u32,
            task_name,
            manifold_name: self.manifold_name.clone(),
            source_file: source_file.to_string(),
            line,
            message,
        });
    }
}

impl std::fmt::Debug for ProcessCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessCore")
            .field("id", &self.id)
            .field("manifold", &self.manifold_name)
            .field("life", &self.life_state())
            .finish()
    }
}

/// A shareable reference to a process — what `&p` denotes in MANIFOLD.
///
/// Cloning is cheap; equality is by process identity. Process references
/// travel through streams as [`Unit::ProcessRef`] units, which is how the
/// master learns the identity of each worker the coordinator creates.
#[derive(Clone)]
pub struct ProcessRef(pub(crate) Arc<ProcessCore>);

impl ProcessRef {
    /// Wrap a core.
    pub fn new(core: Arc<ProcessCore>) -> Self {
        ProcessRef(core)
    }

    /// The underlying core.
    pub fn core(&self) -> &Arc<ProcessCore> {
        &self.0
    }

    /// The process id.
    pub fn id(&self) -> ProcessId {
        self.0.id()
    }

    /// The manifold name.
    pub fn manifold_name(&self) -> &Name {
        self.0.manifold_name()
    }

    /// Get (or create) a port on the referenced process.
    pub fn port(&self, name: impl Into<Name>) -> Arc<Port> {
        self.0.port(name)
    }

    /// Current life state.
    pub fn life_state(&self) -> LifeState {
        self.0.life_state()
    }
}

impl PartialEq for ProcessRef {
    fn eq(&self, other: &Self) -> bool {
        self.id() == other.id()
    }
}

impl Eq for ProcessRef {}

impl std::fmt::Debug for ProcessRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "&{}[{:?}]", self.manifold_name(), self.id())
    }
}

/// The execution context handed to an atomic process body: its window onto
/// its own ports and event memory.
///
/// Everything here is *self*-centric: a process can read/write only its own
/// ports and raise only its own events — it cannot connect streams or touch
/// other processes (that is the coordinators' monopoly).
#[derive(Clone)]
pub struct ProcessCtx {
    core: Arc<ProcessCore>,
}

impl ProcessCtx {
    /// Build a context for a core.
    pub fn new(core: Arc<ProcessCore>) -> Self {
        ProcessCtx { core }
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.core.id()
    }

    /// A reference to this process (`&self` in MANIFOLD terms).
    pub fn self_ref(&self) -> ProcessRef {
        ProcessRef(self.core.clone())
    }

    /// The underlying core.
    pub fn core(&self) -> &Arc<ProcessCore> {
        &self.core
    }

    /// Blocking read from one of our own input ports.
    pub fn read(&self, port: impl Into<Name>) -> MfResult<Unit> {
        self.core.port(port).read()
    }

    /// Blocking read with a deadline.
    pub fn read_timeout(&self, port: impl Into<Name>, t: Duration) -> MfResult<Unit> {
        self.core.port(port).read_timeout(t)
    }

    /// Non-blocking read.
    pub fn try_read(&self, port: impl Into<Name>) -> Option<Unit> {
        self.core.port(port).try_read()
    }

    /// Blocking write to one of our own output ports.
    pub fn write(&self, port: impl Into<Name>, unit: Unit) -> MfResult<()> {
        self.core.port(port).write(unit)
    }

    /// Raise a named event (broadcast to our observers).
    pub fn raise(&self, event: impl Into<Name>) {
        self.core.raise(event);
    }

    /// Post an event to our own memory.
    pub fn post(&self, event: impl Into<Name>) {
        self.core.post(event);
    }

    /// Start observing another process so its events reach us.
    pub fn watch(&self, target: &ProcessRef) {
        target.core().add_watcher(&self.core);
    }

    /// Block until an event matching one of `patterns` is in our memory;
    /// remove and return it.
    pub fn wait_event(&self, patterns: &[EventPattern]) -> MfResult<EventOccurrence> {
        self.core.events().wait_select(patterns).map(|(_, occ)| occ)
    }

    /// Like [`ProcessCtx::wait_event`] with a deadline.
    pub fn wait_event_timeout(
        &self,
        patterns: &[EventPattern],
        t: Duration,
    ) -> MfResult<EventOccurrence> {
        self.core
            .events()
            .wait_select_timeout(patterns, t)
            .map(|(_, occ)| occ)
    }

    /// Emit a §6-style trace message; prefer the [`mes!`](crate::mes)
    /// macro, which fills in file and line.
    pub fn trace(&self, source_file: &str, line: u32, message: String) {
        self.core.trace_message(source_file, line, message);
    }

    /// Adopt a remote task-instance identity for trace output (see
    /// [`ProcessCore::set_remote_identity`]).
    pub fn set_remote_identity(&self, identity: RemoteIdentity) {
        self.core.set_remote_identity(identity);
    }
}

impl std::fmt::Debug for ProcessCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProcessCtx({:?})", self.core.id())
    }
}

/// Emit a `MES("…")` trace message with the caller's file and line, in the
/// chronological format of §6 of the paper.
///
/// ```ignore
/// mes!(ctx, "Welcome");
/// mes!(ctx, "processed grid ({l}, {m})");
/// ```
#[macro_export]
macro_rules! mes {
    ($ctx:expr, $($arg:tt)*) => {
        $ctx.trace(file!(), line!(), format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(id: u64, name: &str) -> Arc<ProcessCore> {
        ProcessCore::new(
            ProcessId(id),
            name,
            Arc::new(TraceSink::new()),
            Clock::System,
        )
    }

    #[test]
    fn life_cycle_transitions() {
        let c = core(1, "P");
        assert_eq!(c.life_state(), LifeState::Created);
        c.set_life(LifeState::Active);
        assert_eq!(c.life_state(), LifeState::Active);
        c.terminate();
        assert_eq!(c.life_state(), LifeState::Terminated);
    }

    #[test]
    fn watcher_receives_raised_events() {
        let raiser = core(1, "Master");
        let watcher = core(2, "Main");
        raiser.add_watcher(&watcher);
        raiser.raise("create_pool");
        let (_, occ) = watcher
            .events()
            .try_select(&["create_pool".into()])
            .unwrap();
        assert_eq!(occ.source, ProcessId(1));
    }

    #[test]
    fn non_watcher_receives_nothing() {
        let raiser = core(1, "Master");
        let bystander = core(2, "Other");
        raiser.raise("e");
        assert!(bystander.events().is_empty());
    }

    #[test]
    fn termination_notice_delivered_to_watchers() {
        let p = core(1, "W");
        let w = core(2, "C");
        p.add_watcher(&w);
        p.terminate();
        let (_, occ) = w
            .events()
            .try_select(&[EventPattern::Terminated(ProcessId(1))])
            .unwrap();
        assert!(occ.is_termination_of(ProcessId(1)));
    }

    #[test]
    fn late_watcher_of_terminated_process_is_notified() {
        let p = core(1, "W");
        p.terminate();
        let w = core(2, "C");
        p.add_watcher(&w);
        assert!(w
            .events()
            .try_select(&[EventPattern::Terminated(ProcessId(1))])
            .is_some());
    }

    #[test]
    fn terminate_is_idempotent_single_notice() {
        let p = core(1, "W");
        let w = core(2, "C");
        p.add_watcher(&w);
        p.terminate();
        p.terminate();
        assert_eq!(w.events().len(), 1);
    }

    #[test]
    fn on_terminate_hooks_run_once() {
        let p = core(1, "W");
        let counter = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let c2 = counter.clone();
        p.on_terminate(move || {
            c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        p.terminate();
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 1);
        // Hook registered after termination runs immediately.
        let c3 = counter.clone();
        p.on_terminate(move || {
            c3.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn ports_created_on_demand_and_shared() {
        let p = core(1, "W");
        let a = p.port("dataport");
        let b = p.port("dataport");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(p.port_names().len(), 1);
    }

    #[test]
    fn kill_unblocks_event_wait() {
        let p = core(1, "W");
        let p2 = p.clone();
        let h = std::thread::spawn(move || p2.events().wait_select(&["never".into()]));
        std::thread::sleep(Duration::from_millis(10));
        p.kill();
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn process_ref_equality_by_id() {
        let a = ProcessRef::new(core(1, "X"));
        let b = a.clone();
        let c = ProcessRef::new(core(2, "X"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn trace_message_records() {
        let sink = Arc::new(TraceSink::new());
        let p = ProcessCore::new(ProcessId(1), "Worker(event)", sink.clone(), Clock::System);
        p.set_placement(Placement {
            task: crate::ident::TaskInstanceId(3),
            task_name: Name::new("mainprog"),
            host: crate::config::HostName::new("basfluit"),
            weight: 1,
            forked: true,
        });
        p.trace_message("ResSourceCode.c", 351, "Welcome".into());
        let recs = sink.snapshot();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].message, "Welcome");
        assert_eq!(recs[0].host.as_str(), "basfluit");
        assert_eq!(recs[0].manifold_name.as_str(), "Worker(event)");
    }

    #[test]
    fn wait_terminated_timeout_and_success() {
        let p = core(1, "W");
        assert_eq!(
            p.wait_terminated(Duration::from_millis(20)),
            Err(MfError::Timeout)
        );
        let p2 = p.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            p2.terminate();
        });
        p.wait_terminated(Duration::from_secs(2)).unwrap();
    }
}
