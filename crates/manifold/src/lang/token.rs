//! Lexer and preprocessor for MANIFOLD source.

use crate::error::{MfError, MfResult};
use std::collections::HashMap;

/// Token kinds of the MANIFOLD subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (content without quotes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `&`
    Amp,
    /// `/`
    Slash,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// End of input.
    Eof,
}

/// A token with its source line (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// Line number in the source.
    pub line: u32,
}

/// Lexer output: the token stream plus the recorded `#include` files.
#[derive(Clone, Debug)]
pub struct LexOutput {
    /// Tokens, ending with an [`TokenKind::Eof`].
    pub tokens: Vec<Token>,
    /// `#include "…"` files, in order.
    pub includes: Vec<String>,
    /// `//pragma …` lines, verbatim.
    pub pragmas: Vec<String>,
    /// `#define` macro table (name → replacement tokens).
    pub defines: HashMap<String, Vec<TokenKind>>,
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
}

impl<'s> Lexer<'s> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c == Some(b'\n') {
            self.line += 1;
        }
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn take_line(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos])
            .trim()
            .to_string()
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

/// Tokenize MANIFOLD source, handling comments, `#include`, `//pragma` and
/// object-like `#define` substitution.
pub fn lex(source: &str) -> MfResult<LexOutput> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = LexOutput {
        tokens: Vec::new(),
        includes: Vec::new(),
        pragmas: Vec::new(),
        defines: HashMap::new(),
    };

    while let Some(c) = lx.peek() {
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
            }
            b'/' if lx.peek2() == Some(b'/') => {
                let line = lx.take_line();
                if let Some(rest) = line.strip_prefix("//pragma") {
                    out.pragmas.push(rest.trim().to_string());
                }
            }
            b'/' if lx.peek2() == Some(b'*') => {
                lx.bump();
                lx.bump();
                loop {
                    match lx.bump() {
                        Some(b'*') if lx.peek() == Some(b'/') => {
                            lx.bump();
                            break;
                        }
                        Some(_) => {}
                        None => return Err(MfError::Spec("unterminated comment".into())),
                    }
                }
            }
            b'#' => {
                let line_no = lx.line;
                let line = lx.take_line();
                if let Some(rest) = line.strip_prefix("#include") {
                    let file = rest.trim().trim_matches(['"', '<', '>']).to_string();
                    out.includes.push(file);
                } else if let Some(rest) = line.strip_prefix("#define") {
                    let rest = rest.trim();
                    let (name, body) = rest
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| MfError::Spec(format!("bad #define at line {line_no}")))?;
                    let sub = lex(body)?; // macro bodies contain plain tokens
                    let kinds: Vec<TokenKind> = sub
                        .tokens
                        .into_iter()
                        .map(|t| t.kind)
                        .filter(|k| *k != TokenKind::Eof)
                        .collect();
                    out.defines.insert(name.to_string(), kinds);
                } else {
                    return Err(MfError::Spec(format!(
                        "unknown preprocessor line {line_no}: {line}"
                    )));
                }
            }
            b'"' => {
                let line = lx.line;
                lx.bump();
                let start = lx.pos;
                while let Some(c) = lx.peek() {
                    if c == b'"' {
                        break;
                    }
                    lx.bump();
                }
                let s = String::from_utf8_lossy(&lx.src[start..lx.pos]).into_owned();
                if lx.bump() != Some(b'"') {
                    return Err(MfError::Spec(format!("unterminated string at line {line}")));
                }
                out.tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            b'-' if lx.peek2() == Some(b'>') => {
                let line = lx.line;
                lx.bump();
                lx.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Arrow,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let line = lx.line;
                let start = lx.pos;
                while lx.peek().is_some_and(|c| c.is_ascii_digit()) {
                    lx.bump();
                }
                let text = String::from_utf8_lossy(&lx.src[start..lx.pos]).into_owned();
                let v = text
                    .parse()
                    .map_err(|_| MfError::Spec(format!("bad number at line {line}")))?;
                out.tokens.push(Token {
                    kind: TokenKind::Int(v),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let line = lx.line;
                let name = lx.ident();
                // Object-like macro substitution.
                if let Some(body) = out.defines.get(&name) {
                    for k in body.clone() {
                        out.tokens.push(Token { kind: k, line });
                    }
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Ident(name),
                        line,
                    });
                }
            }
            _ => {
                let line = lx.line;
                let kind = match lx.bump().unwrap() {
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'<' => TokenKind::Lt,
                    b'>' => TokenKind::Gt,
                    b',' => TokenKind::Comma,
                    b'.' => TokenKind::Dot,
                    b';' => TokenKind::Semi,
                    b':' => TokenKind::Colon,
                    b'&' => TokenKind::Amp,
                    b'/' => TokenKind::Slash,
                    b'*' => TokenKind::Star,
                    b'=' => TokenKind::Eq,
                    b'+' => TokenKind::Plus,
                    b'-' => TokenKind::Minus,
                    other => {
                        return Err(MfError::Spec(format!(
                            "unexpected character {:?} at line {}",
                            other as char, lx.line
                        )))
                    }
                };
                out.tokens.push(Token { kind, line });
            }
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Eof,
        line: lx.line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("a -> b.c;"),
            vec![
                Ident("a".into()),
                Arrow,
                Ident("b".into()),
                Dot,
                Ident("c".into()),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("/* x */ a // y\n b"), kinds("a b"));
    }

    #[test]
    fn strings_and_numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("MES(\"begin\") 42"),
            vec![
                Ident("MES".into()),
                LParen,
                Str("begin".into()),
                RParen,
                Int(42),
                Eof
            ]
        );
    }

    #[test]
    fn include_and_pragma_recorded() {
        let out = lex("#include \"MBL.h\"\n//pragma include \"Res.h\"\nx").unwrap();
        assert_eq!(out.includes, vec!["MBL.h"]);
        assert_eq!(out.pragmas, vec!["include \"Res.h\""]);
        assert_eq!(out.tokens.len(), 2); // x + eof
    }

    #[test]
    fn define_substitution() {
        use TokenKind::*;
        let got = kinds("#define IDLE terminated (void)\nbegin: IDLE.");
        assert_eq!(
            got,
            vec![
                Ident("begin".into()),
                Colon,
                Ident("terminated".into()),
                LParen,
                Ident("void".into()),
                RParen,
                Dot,
                Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let out = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = out.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* oops").is_err());
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn paper_sources_lex() {
        let a = lex(crate::lang::PROTOCOL_MW_SOURCE).unwrap();
        assert!(a.tokens.len() > 100);
        assert_eq!(a.includes, vec!["MBL.h", "rdid.h", "protocolMW.h"]);
        assert!(a.defines.contains_key("IDLE"));
        let b = lex(crate::lang::MAINPROG_SOURCE).unwrap();
        assert_eq!(b.pragmas, vec!["include \"ResSourceCode.h\""]);
    }
}
