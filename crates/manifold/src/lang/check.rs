//! Structural semantic checks and protocol-level queries on parsed
//! MANIFOLD programs.

use std::collections::BTreeSet;

use crate::error::{MfError, MfResult};
use crate::lang::ast::*;

/// Summary of a checked program: the facts the tests compare against the
/// embedded-DSL implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramSummary {
    /// Names of manners, in order.
    pub manners: Vec<String>,
    /// Names of manifolds, in order.
    pub manifolds: Vec<String>,
    /// Every event name referenced anywhere (labels, post/raise, params).
    pub events: BTreeSet<String>,
    /// Every stream-type keyword used in `stream` declarations.
    pub stream_types: BTreeSet<String>,
    /// Total number of states across all blocks (nested included).
    pub state_count: usize,
}

/// Check a program and summarize it. Errors on structural violations:
///
/// * every coordinator block (and nested block) must have a `begin` state
///   ("There must always be a begin state in every block", §4.2);
/// * `priority` declarations must reference events that label states of
///   the same block;
/// * `post(e)` targets must label a state of the enclosing or outer block;
/// * stream-type keywords must be one of `BK`, `KK`, `BB`, `KB`.
pub fn check_program(prog: &Program) -> MfResult<ProgramSummary> {
    let mut summary = ProgramSummary {
        manners: Vec::new(),
        manifolds: Vec::new(),
        events: BTreeSet::new(),
        stream_types: BTreeSet::new(),
        state_count: 0,
    };
    for item in &prog.items {
        match item {
            Item::Manner {
                name, body, params, ..
            } => {
                summary.manners.push(name.clone());
                collect_param_events(params, &mut summary.events);
                check_block(body, &[], &mut summary)?;
            }
            Item::Manifold {
                name,
                body,
                params,
                atomic_events,
                ..
            } => {
                summary.manifolds.push(name.clone());
                collect_param_events(params, &mut summary.events);
                for e in atomic_events {
                    summary.events.insert(e.clone());
                }
                if let Some(b) = body {
                    check_block(b, &[], &mut summary)?;
                }
            }
        }
    }
    Ok(summary)
}

fn collect_param_events(params: &[Param], events: &mut BTreeSet<String>) {
    for p in params {
        if let Param::Event(name) = p {
            if name != "_" {
                events.insert(name.clone());
            }
        }
    }
}

fn check_block(
    block: &Block,
    outer_labels: &[String],
    summary: &mut ProgramSummary,
) -> MfResult<()> {
    summary.state_count += block.states.len();
    let labels: Vec<String> = block.states.iter().map(|s| s.label.clone()).collect();
    if !labels.iter().any(|l| l == "begin") {
        return Err(MfError::Spec(
            "block without a begin state (every block must have one)".into(),
        ));
    }
    for s in &block.states {
        if s.label != "begin" && s.label != "end" {
            summary.events.insert(s.label.clone());
        }
    }
    for d in &block.declarations {
        match d {
            Declaration::Event(names) => {
                for n in names {
                    summary.events.insert(n.clone());
                }
            }
            Declaration::Priority { higher, lower } => {
                for e in [higher, lower] {
                    if !labels.iter().any(|l| l == e) {
                        return Err(MfError::Spec(format!(
                            "priority references `{e}` which labels no state of this block"
                        )));
                    }
                }
            }
            Declaration::Stream { ty, .. } => {
                if !["BK", "KK", "BB", "KB"].contains(&ty.as_str()) {
                    return Err(MfError::Spec(format!("unknown stream type `{ty}`")));
                }
                summary.stream_types.insert(ty.clone());
            }
            _ => {}
        }
    }
    // Walk actions: collect raise/post events, validate post targets,
    // recurse into nested blocks.
    let mut all_labels: Vec<String> = outer_labels.to_vec();
    all_labels.extend(labels.clone());
    for s in &block.states {
        check_action(&s.body, &all_labels, summary)?;
    }
    Ok(())
}

fn check_action(action: &Action, labels: &[String], summary: &mut ProgramSummary) -> MfResult<()> {
    match action {
        Action::Seq(parts) | Action::Group(parts) => {
            for p in parts {
                check_action(p, labels, summary)?;
            }
        }
        Action::Block(b) => check_block(b, labels, summary)?,
        Action::Post(e) => {
            summary.events.insert(e.clone());
            if !labels.iter().any(|l| l == e) && e != "end" {
                return Err(MfError::Spec(format!(
                    "post({e}) targets no state label in scope"
                )));
            }
        }
        Action::Raise(e) => {
            summary.events.insert(e.clone());
        }
        Action::If {
            then, otherwise, ..
        } => {
            check_action(then, labels, summary)?;
            if let Some(o) = otherwise {
                check_action(o, labels, summary)?;
            }
        }
        Action::Chain(_)
        | Action::Call { .. }
        | Action::Halt
        | Action::Terminated(_)
        | Action::PreemptAll
        | Action::Mes(_)
        | Action::Assign { .. }
        | Action::Mention(_) => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse::parse_program;
    use crate::lang::{MAINPROG_SOURCE, PROTOCOL_MW_SOURCE};

    #[test]
    fn paper_protocol_checks_clean() {
        let prog = parse_program(PROTOCOL_MW_SOURCE).unwrap();
        let summary = check_program(&prog).unwrap();
        assert_eq!(
            summary.manners,
            vec!["Create_Worker_Pool".to_string(), "ProtocolMW".into()]
        );
        // The protocol's full event vocabulary, recovered from the source.
        for e in [
            "create_pool",
            "create_worker",
            "rendezvous",
            "a_rendezvous",
            "finished",
            "death_worker",
        ] {
            assert!(summary.events.contains(e), "missing event {e}");
        }
        assert!(summary.stream_types.contains("KK"));
        // begin/create_worker/rendezvous/end + nested begin×2 +
        // death_worker + begin/create_pool/finished.
        assert_eq!(summary.state_count, 10);
    }

    #[test]
    fn paper_mainprog_checks_clean() {
        let prog = parse_program(MAINPROG_SOURCE).unwrap();
        let summary = check_program(&prog).unwrap();
        assert_eq!(
            summary.manifolds,
            vec!["Worker".to_string(), "Master".into(), "Main".into()]
        );
        assert!(summary.events.contains("a_rendezvous"));
    }

    #[test]
    fn protocol_source_agrees_with_dsl_constants() {
        // The event names used by the `protocol` crate are exactly those
        // recovered from the paper's source (structural agreement between
        // the transliteration and the original).
        let prog = parse_program(PROTOCOL_MW_SOURCE).unwrap();
        let summary = check_program(&prog).unwrap();
        let dsl_events = [
            "create_pool",
            "create_worker",
            "rendezvous",
            "a_rendezvous",
            "finished",
            "death_worker",
        ];
        for e in dsl_events {
            assert!(summary.events.contains(e));
        }
    }

    #[test]
    fn missing_begin_state_is_rejected() {
        let prog = parse_program("manner F() { go: halt. begin: halt. }").unwrap();
        assert!(check_program(&prog).is_ok());
        let prog = parse_program("manner F() { go: halt. }").unwrap();
        let err = check_program(&prog).unwrap_err();
        assert!(err.to_string().contains("begin"));
    }

    #[test]
    fn bad_priority_is_rejected() {
        let prog = parse_program("manner F() { priority a > b. begin: halt. }").unwrap();
        assert!(check_program(&prog).is_err());
    }

    #[test]
    fn bad_stream_type_is_rejected() {
        let prog = parse_program("manner F() { stream XX a -> b. begin: halt. }").unwrap();
        let err = check_program(&prog).unwrap_err();
        assert!(err.to_string().contains("XX"));
    }

    #[test]
    fn dangling_post_is_rejected() {
        let prog = parse_program("manner F() { begin: post (nowhere). }").unwrap();
        assert!(check_program(&prog).is_err());
    }

    #[test]
    fn nested_blocks_see_outer_labels() {
        // post(begin) inside a nested block may target the *outer* begin.
        let src = "manner F() { begin: { begin: post (outer). }. outer: halt. }";
        let prog = parse_program(src).unwrap();
        assert!(check_program(&prog).is_ok());
    }
}
