//! The tree-walking interpreter for the coordinator subset of MANIFOLD:
//! runs parsed manners (e.g. the paper's `protocolMW.m`, verbatim) against
//! the live runtime.
//!
//! This is the *reference* executor: it walks the AST directly, which keeps
//! it auditably close to the language report but re-derives structure
//! (label sorts, pattern lists, name hashing) on every step. The compiled
//! [`crate::lang::vm::Vm`] is the production path; the differential
//! property tests in `tests/lang_proptests.rs` hold the two bit-identical.
//! Select between them with [`crate::lang::CoordExec`].
//!
//! ## Semantics implemented
//!
//! * A block performs its declarations, then visits its `begin` state.
//! * A state body runs to completion unless a waiting action (`IDLE` =
//!   `terminated(void)`, or `terminated(p)`) is preempted by an event that
//!   labels a state of this block (or an enclosing one).
//! * When a body completes, a pending occurrence matching a local label
//!   causes a transition; one matching an outer label exits the block;
//!   otherwise the block *completes* and control returns to its caller —
//!   which is how `Create_Worker_Pool` returns after its `end` state, and
//!   how `ProtocolMW` returns when `terminated(master)` completes.
//! * `halt` returns from the enclosing manner immediately.
//! * `priority a > b.` orders the wait patterns; `ignore e.` purges `e`
//!   occurrences on block exit; `stream TY a -> b.` gives matching chain
//!   segments the dismantling type `TY`; `post`/`raise`/assignments/`if`
//!   behave as in §4.2.
//!
//! ## Host interface
//!
//! Atomic manifolds (the "C wrappers") are supplied by the host as
//! [`AtomicFactory`] closures; already-running processes (the paper's
//! `master` parameter) are passed as bindings. `variable` is built in.
//! Malformed specs diagnose with typed [`LangError`]s carrying source
//! lines, never panics.

use std::collections::HashMap;

use crate::builtin::Variable;
use crate::coord::Coord;
use crate::error::{MfError, MfResult};
use crate::event::{EventOccurrence, EventPattern};
use crate::ident::Name;
use crate::lang::ast::*;
use crate::lang::compile::{endpoints_match, parse_stream_type};
use crate::lang::error::{attribute_line, LangError, LangErrorKind};
#[cfg(test)]
use crate::lang::exec::AtomicFactory;
use crate::lang::exec::{CoordExec, CoordExecutor, Value};
use crate::process::ProcessRef;
use crate::stream::{Stream, StreamType};
use crate::unit::Unit;

/// The interpreter for one program.
pub struct Interp<'p> {
    program: &'p Program,
    source_name: String,
}

/// How a body/block finished.
enum Flow {
    /// Ran to completion.
    Done,
    /// Preempted by an event occurrence (not matching any local label).
    Preempted(EventOccurrence),
    /// `halt` executed: unwind to the manner boundary.
    Halted,
}

struct Frame<'f> {
    bindings: HashMap<String, Value>,
    parent: Option<&'f Frame<'f>>,
}

impl<'f> Frame<'f> {
    fn lookup(&self, name: &str) -> Option<Value> {
        match self.bindings.get(name) {
            Some(v) => Some(v.clone()),
            None => self.parent.and_then(|p| p.lookup(name)),
        }
    }
}

impl<'p> Interp<'p> {
    /// Create an interpreter for `program`. `source_name` labels MES trace
    /// records.
    pub fn new(program: &'p Program, source_name: impl Into<String>) -> Self {
        Interp {
            program,
            source_name: source_name.into(),
        }
    }

    /// Call an exported manner by name with the given arguments.
    pub fn call_manner(&self, coord: &Coord, name: &str, args: Vec<Value>) -> MfResult<()> {
        let (params, body, _) = self
            .program
            .coordinator(name)
            .ok_or_else(|| LangError::new(LangErrorKind::UnknownManner(name.to_string())))?;
        let root = Frame {
            bindings: HashMap::new(),
            parent: None,
        };
        self.run_manner(coord, name, params, body, args, &root, 0)?;
        Ok(())
    }

    fn bind_params(
        &self,
        manner: &str,
        params: &[Param],
        args: Vec<Value>,
        line: u32,
    ) -> MfResult<HashMap<String, Value>> {
        if params.len() != args.len() {
            return Err(LangError::at(
                LangErrorKind::ArityMismatch {
                    manner: manner.to_string(),
                    params: params.len(),
                    args: args.len(),
                },
                line,
            )
            .into());
        }
        let mut bindings = HashMap::new();
        for (p, a) in params.iter().zip(args) {
            let name = match p {
                Param::Process { name, .. } => name,
                Param::Manifold { name, .. } => name,
                Param::Event(name) => name,
                Param::Port { name, .. } => name,
            };
            bindings.insert(name.clone(), a);
        }
        Ok(bindings)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_manner(
        &self,
        coord: &Coord,
        name: &str,
        params: &[Param],
        body: &Block,
        args: Vec<Value>,
        parent: &Frame<'_>,
        line: u32,
    ) -> MfResult<()> {
        let bindings = self.bind_params(name, params, args, line)?;
        // Mentioning a process parameter in a manner tunes the coordinator
        // to its events (as the `terminated(master)` sensitivity of §4.2);
        // watch process arguments up front so no early raise is lost.
        for v in bindings.values() {
            if let Value::Process(p) = v {
                coord.watch(p);
            }
        }
        let frame = Frame {
            bindings,
            parent: Some(parent),
        };
        // A manner boundary absorbs `halt`.
        match self.run_block(coord, body, &frame, &[])? {
            Flow::Done | Flow::Halted => Ok(()),
            Flow::Preempted(occ) => Err(MfError::App(format!(
                "manner exited on unhandled occurrence {occ:?}"
            ))),
        }
    }

    /// Execute one block: declarations, then the state machine.
    fn run_block(
        &self,
        coord: &Coord,
        block: &Block,
        parent: &Frame<'_>,
        outer_labels: &[Name],
    ) -> MfResult<Flow> {
        let mut bindings: HashMap<String, Value> = HashMap::new();
        let mut priorities: Vec<(String, String)> = Vec::new();
        let mut ignores: Vec<Name> = Vec::new();
        let mut stream_decls: Vec<(StreamType, Endpoint, Endpoint)> = Vec::new();

        for d in &block.declarations {
            match d {
                Declaration::Save(_) | Declaration::Hold(_) | Declaration::Internal => {}
                Declaration::Ignore(names) => {
                    ignores.extend(names.iter().map(Name::new));
                }
                Declaration::Event(names) => {
                    for n in names {
                        bindings.insert(n.clone(), Value::Event(Name::new(n)));
                    }
                }
                Declaration::Priority { higher, lower } => {
                    priorities.push((higher.clone(), lower.clone()));
                }
                Declaration::Process {
                    name,
                    ctor,
                    args,
                    line,
                    ..
                } => {
                    let frame = Frame {
                        bindings: bindings.clone(),
                        parent: Some(parent),
                    };
                    let value = if ctor == "variable" {
                        let init = match args.first() {
                            Some(e) => self.eval_int(e, &frame, *line)?,
                            None => 0,
                        };
                        Value::Variable(Variable::spawn(coord, name, Unit::int(init))?)
                    } else {
                        let factory = match frame.lookup(ctor) {
                            Some(Value::Manifold(f)) => f,
                            _ => {
                                return Err(LangError::at(
                                    LangErrorKind::NotAManifold(ctor.clone()),
                                    *line,
                                )
                                .into())
                            }
                        };
                        let argv: Vec<Value> = args
                            .iter()
                            .map(|a| self.eval_value(a, &frame, *line))
                            .collect::<MfResult<_>>()?;
                        let p = factory(coord, &argv).map_err(|e| attribute_line(e, *line))?;
                        Value::Process(p)
                    };
                    bindings.insert(name.clone(), value);
                }
                Declaration::Stream { ty, from, to } => match parse_stream_type(ty) {
                    Some(sty) => stream_decls.push((sty, from.clone(), to.clone())),
                    None => {
                        return Err(
                            LangError::new(LangErrorKind::UnknownStreamType(ty.clone())).into()
                        )
                    }
                },
            }
        }

        let frame = Frame {
            bindings,
            parent: Some(parent),
        };
        let local_labels: Vec<Name> = block.states.iter().map(|s| Name::new(&s.label)).collect();
        // Wait patterns: local labels (priority-sorted) then outer labels.
        let mut ordered: Vec<Name> = local_labels.clone();
        ordered.sort_by_key(|n| {
            // Lower index = higher priority; default order of appearance,
            // bumped by explicit priority declarations.
            let base = block
                .states
                .iter()
                .position(|s| s.label == n.as_str())
                .unwrap_or(usize::MAX);
            let boost = priorities
                .iter()
                .position(|(hi, _)| hi == n.as_str())
                .map(|_| 0usize)
                .unwrap_or(1);
            (boost, base)
        });

        let mut current = "begin".to_string();
        let exit = loop {
            let state = block
                .state(&current)
                .ok_or_else(|| LangError::new(LangErrorKind::NoSuchState(current.clone())))?;
            let mut streams: Vec<Arc2> = Vec::new();
            let flow = self.exec(
                coord,
                &state.body,
                &frame,
                &ordered,
                outer_labels,
                &stream_decls,
                &mut streams,
                state.line,
            );
            // State preemption: dismantle this state's streams.
            for s in &streams {
                s.dismantle();
            }
            let flow = flow?;
            match flow {
                Flow::Halted => break Flow::Halted,
                Flow::Preempted(occ) => {
                    let name = occ.name().cloned();
                    match name {
                        Some(n) if local_labels.contains(&n) => {
                            current = n.as_str().to_string();
                        }
                        _ => break Flow::Preempted(occ),
                    }
                }
                Flow::Done => {
                    // Body completed: pending local label → transition;
                    // pending outer label → exit; else the block completes.
                    let local_pats: Vec<EventPattern> = ordered
                        .iter()
                        .map(|n| EventPattern::Named(n.clone()))
                        .collect();
                    if let Some((_, occ)) = coord.ctx().core().events().try_select(&local_pats) {
                        current = occ.name().unwrap().as_str().to_string();
                        continue;
                    }
                    let outer_pats: Vec<EventPattern> = outer_labels
                        .iter()
                        .map(|n| EventPattern::Named(n.clone()))
                        .collect();
                    if let Some((_, occ)) = coord.ctx().core().events().try_select(&outer_pats) {
                        break Flow::Preempted(occ);
                    }
                    break Flow::Done;
                }
            }
        };
        // `ignore e.`: purge on departure from the block.
        for e in &ignores {
            coord.ctx().core().events().purge_named(e);
        }
        Ok(exit)
    }

    /// Execute one action.
    #[allow(clippy::too_many_arguments)]
    fn exec(
        &self,
        coord: &Coord,
        action: &Action,
        frame: &Frame<'_>,
        local_labels: &[Name],
        outer_labels: &[Name],
        stream_decls: &[(StreamType, Endpoint, Endpoint)],
        streams: &mut Vec<Arc2>,
        line: u32,
    ) -> MfResult<Flow> {
        match action {
            Action::Seq(parts) | Action::Group(parts) => {
                for p in parts {
                    match self.exec(
                        coord,
                        p,
                        frame,
                        local_labels,
                        outer_labels,
                        stream_decls,
                        streams,
                        line,
                    )? {
                        Flow::Done => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Done)
            }
            Action::Block(b) => {
                let mut outer: Vec<Name> = local_labels.to_vec();
                outer.extend_from_slice(outer_labels);
                self.run_block(coord, b, frame, &outer)
            }
            Action::Chain(endpoints) => {
                self.build_chain(coord, endpoints, frame, stream_decls, streams, line)?;
                Ok(Flow::Done)
            }
            Action::Call { name, args } => {
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval_value(a, frame, line))
                    .collect::<MfResult<_>>()?;
                if let Some((params, body, _)) = self.program.coordinator(name) {
                    self.run_manner(coord, name, params, body, argv, frame, line)?;
                    return Ok(Flow::Done);
                }
                Err(LangError::at(LangErrorKind::UnknownManner(name.clone()), line).into())
            }
            Action::Post(e) => {
                coord.post(e.as_str());
                Ok(Flow::Done)
            }
            Action::Raise(e) => {
                coord.raise(e.as_str());
                Ok(Flow::Done)
            }
            Action::Halt => Ok(Flow::Halted),
            Action::PreemptAll => Ok(Flow::Done),
            Action::Mes(msg) => {
                coord.ctx().trace(&self.source_name, line, msg.clone());
                Ok(Flow::Done)
            }
            Action::Terminated(pname) => {
                let mut pats: Vec<EventPattern> = local_labels
                    .iter()
                    .chain(outer_labels)
                    .map(|n| EventPattern::Named(n.clone()))
                    .collect();
                if pname == "void" {
                    // IDLE: only events can get us out.
                    let (_, occ) = coord.ctx().core().events().wait_select(&pats)?;
                    return Ok(Flow::Preempted(occ));
                }
                let p = match frame.lookup(pname) {
                    Some(Value::Process(p)) => p,
                    _ => {
                        return Err(
                            LangError::at(LangErrorKind::NotAProcess(pname.clone()), line).into(),
                        )
                    }
                };
                coord.watch(&p);
                pats.push(EventPattern::Terminated(p.id()));
                let (idx, occ) = coord.ctx().core().events().wait_select(&pats)?;
                if idx == pats.len() - 1 && occ.is_termination_of(p.id()) {
                    Ok(Flow::Done)
                } else {
                    Ok(Flow::Preempted(occ))
                }
            }
            Action::Assign { name, value } => {
                let v = self.eval_int(value, frame, line)?;
                match frame.lookup(name) {
                    Some(Value::Variable(var)) => {
                        var.set(Unit::int(v));
                        Ok(Flow::Done)
                    }
                    _ => Err(LangError::at(LangErrorKind::NotAVariable(name.clone()), line).into()),
                }
            }
            Action::If {
                cond,
                then,
                otherwise,
            } => {
                let lhs = self.eval_int(&cond.lhs, frame, line)?;
                let rhs = self.eval_int(&cond.rhs, frame, line)?;
                let hit = match cond.op {
                    '<' => lhs < rhs,
                    '>' => lhs > rhs,
                    '=' => lhs == rhs,
                    _ => unreachable!(),
                };
                let branch = if hit {
                    Some(then.as_ref())
                } else {
                    otherwise.as_deref()
                };
                match branch {
                    Some(a) => self.exec(
                        coord,
                        a,
                        frame,
                        local_labels,
                        outer_labels,
                        stream_decls,
                        streams,
                        line,
                    ),
                    None => Ok(Flow::Done),
                }
            }
            Action::Mention(_) => Ok(Flow::Done),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_chain(
        &self,
        _coord: &Coord,
        endpoints: &[Endpoint],
        frame: &Frame<'_>,
        stream_decls: &[(StreamType, Endpoint, Endpoint)],
        streams: &mut Vec<Arc2>,
        line: u32,
    ) -> MfResult<()> {
        for pair in endpoints.windows(2) {
            let (from, to) = (&pair[0], &pair[1]);
            let ty = stream_decls
                .iter()
                .find(|(_, f, t)| endpoints_match(f, from) && endpoints_match(t, to))
                .map(|(ty, _, _)| *ty)
                .unwrap_or(StreamType::BK);
            let sink = self.resolve_process(&to.process, frame, line)?;
            let sink_port = sink.port(to.port.clone().unwrap_or_else(|| "input".into()));
            if from.is_ref {
                // `&p -> q`: a one-shot reference unit from the coordinator.
                let p = self.resolve_process(&from.process, frame, line)?;
                let s = Stream::preloaded(ty, [Unit::ProcessRef(p)]);
                sink_port.attach_incoming(&s);
                streams.push(s);
            } else {
                let src = self.resolve_process(&from.process, frame, line)?;
                let src_port = src.port(from.port.clone().unwrap_or_else(|| "output".into()));
                let s = Stream::new(ty);
                src_port.attach_outgoing(&s);
                sink_port.attach_incoming(&s);
                streams.push(s);
            }
        }
        Ok(())
    }

    fn resolve_process(&self, name: &str, frame: &Frame<'_>, line: u32) -> MfResult<ProcessRef> {
        match frame.lookup(name) {
            Some(Value::Process(p)) => Ok(p),
            Some(Value::Variable(v)) => Ok(v.process().clone()),
            _ => Err(LangError::at(LangErrorKind::NotAProcess(name.to_string()), line).into()),
        }
    }

    fn eval_value(&self, e: &Expr, frame: &Frame<'_>, line: u32) -> MfResult<Value> {
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Var(name) | Expr::Ref(name) => frame
                .lookup(name)
                .ok_or_else(|| LangError::at(LangErrorKind::Unbound(name.clone()), line).into()),
            Expr::Binary { .. } => Ok(Value::Int(self.eval_int(e, frame, line)?)),
            Expr::Call { .. } => Err(LangError::at(LangErrorKind::NestedCall, line).into()),
        }
    }

    fn eval_int(&self, e: &Expr, frame: &Frame<'_>, line: u32) -> MfResult<i64> {
        match e {
            Expr::Int(v) => Ok(*v),
            Expr::Var(name) => match frame.lookup(name) {
                Some(Value::Int(v)) => Ok(v),
                Some(Value::Variable(var)) => Ok(var.get_int()),
                other => Err(LangError::at(
                    LangErrorKind::NotNumeric {
                        name: name.clone(),
                        found: format!("{other:?}"),
                    },
                    line,
                )
                .into()),
            },
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval_int(lhs, frame, line)?;
                let r = self.eval_int(rhs, frame, line)?;
                Ok(match op {
                    '+' => l + r,
                    '-' => l - r,
                    _ => unreachable!(),
                })
            }
            _ => Err(LangError::at(LangErrorKind::NonNumericExpr, line).into()),
        }
    }
}

impl CoordExecutor for Interp<'_> {
    fn call_manner(&self, coord: &Coord, name: &str, args: Vec<Value>) -> MfResult<()> {
        Interp::call_manner(self, coord, name, args)
    }

    fn kind(&self) -> CoordExec {
        CoordExec::Interp
    }
}

type Arc2 = std::sync::Arc<Stream>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environment;
    use crate::lang::parse::parse_program;
    use crate::process::ProcessCtx;
    use std::rc::Rc;

    #[test]
    fn interprets_trivial_manner() {
        let prog = parse_program("manner Go() { begin: halt. }").unwrap();
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            Interp::new(&prog, "go.m").call_manner(coord, "Go", vec![])
        })
        .unwrap();
        env.shutdown();
    }

    #[test]
    fn interprets_post_transitions_and_variables() {
        let src = "manner Count() {\
            auto process n is variable(0).\
            begin: n = n + 1; if (n < 3) then ( post (begin) ) else ( post (done) ).\
            done: (MES(\"counted\"), halt).\
        }";
        let prog = parse_program(src).unwrap();
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            Interp::new(&prog, "count.m").call_manner(coord, "Count", vec![])
        })
        .unwrap();
        let msgs: Vec<String> = env
            .trace()
            .snapshot()
            .into_iter()
            .map(|r| r.message)
            .collect();
        assert!(msgs.contains(&"counted".to_string()));
        env.shutdown();
    }

    #[test]
    fn manner_calls_nest_and_halt_stops_only_the_inner_manner() {
        // Outer calls Inner; Inner halts; Outer continues to its own done
        // state — `halt` returns from the *enclosing manner* only.
        let src = "\
            manner Inner() { begin: (MES(\"inner\"), halt). }\
            manner Outer() { begin: Inner(); post (done). \
                             done: (MES(\"outer done\"), halt). }";
        let prog = parse_program(src).unwrap();
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            Interp::new(&prog, "nest.m").call_manner(coord, "Outer", vec![])
        })
        .unwrap();
        let msgs: Vec<String> = env
            .trace()
            .snapshot()
            .into_iter()
            .map(|r| r.message)
            .collect();
        assert_eq!(msgs, vec!["inner".to_string(), "outer done".into()]);
        env.shutdown();
    }

    #[test]
    fn block_completion_returns_to_caller() {
        // A manner whose begin state completes (no waits, no pending
        // events) simply returns — the `terminated(master)` completion
        // semantics of ProtocolMW's begin state.
        let src = "manner Quick() { begin: MES(\"ran\"). }";
        let prog = parse_program(src).unwrap();
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            Interp::new(&prog, "quick.m").call_manner(coord, "Quick", vec![])
        })
        .unwrap();
        assert_eq!(env.trace().len(), 1);
        env.shutdown();
    }

    #[test]
    fn unknown_manner_and_arity_errors_are_typed() {
        let prog = parse_program("manner F(process p) { begin: halt. }").unwrap();
        let env = Environment::new();
        let r = env.run_coordinator("Main", |coord| {
            let i = Interp::new(&prog, "f.m");
            assert_eq!(
                i.call_manner(coord, "Nope", vec![]),
                Err(LangError::new(LangErrorKind::UnknownManner("Nope".into())).into())
            );
            // Arity mismatch, diagnosed with the manner's name.
            match i.call_manner(coord, "F", vec![]) {
                Err(MfError::Lang(e)) => assert_eq!(
                    e.kind,
                    LangErrorKind::ArityMismatch {
                        manner: "F".into(),
                        params: 1,
                        args: 0
                    }
                ),
                other => panic!("expected arity error, got {other:?}"),
            }
            Ok(())
        });
        assert!(r.is_ok());
        env.shutdown();
    }

    #[test]
    fn interprets_stream_chain_to_worker() {
        // A manner that wires an externally-supplied producer to a worker
        // built from a manifold parameter, waits for its `done` event.
        let src = "manner Wire(process source, manifold Sink(event)) {\
            event done.\
            process snk is Sink(done).\
            begin: (source -> snk, terminated (void)).\
            done: halt.\
        }";
        let prog = parse_program(src).unwrap();
        let env = Environment::new();
        let got = std::sync::Arc::new(parking_lot::Mutex::new(None));
        let got2 = got.clone();
        env.run_coordinator("Main", |coord| {
            let source = coord.create_atomic("Source", |ctx: ProcessCtx| {
                ctx.write("output", Unit::int(99))?;
                // Stay alive until shutdown so the stream's source persists.
                let _ = ctx.read("park");
                Ok(())
            });
            coord.activate(&source)?;
            let sink_factory: AtomicFactory = Rc::new(move |coord, args| {
                let death = crate::lang::exec::expect_event_arg(args, 0)?;
                let got3 = got2.clone();
                let p = coord.create_atomic("Sink", move |ctx: ProcessCtx| {
                    let v = ctx.read("input")?.expect_int()?;
                    *got3.lock() = Some(v);
                    ctx.raise(death.as_str());
                    Ok(())
                });
                coord.activate(&p)?;
                Ok(p)
            });
            Interp::new(&prog, "wire.m").call_manner(
                coord,
                "Wire",
                vec![Value::Process(source), Value::Manifold(sink_factory)],
            )
        })
        .unwrap();
        env.shutdown();
        assert_eq!(*got.lock(), Some(99));
    }

    #[test]
    fn factory_errors_attribute_the_declaration_line() {
        let src = "manner Go(manifold W(event)) {\n\
            process p is W(7).\n\
            begin: halt.\n\
        }";
        let prog = parse_program(src).unwrap();
        let env = Environment::new();
        let r = env.run_coordinator("Main", |coord| {
            let factory: AtomicFactory = Rc::new(|_coord, args| {
                // Wrong kind: the factory wanted an event, got an int.
                let e = crate::lang::exec::expect_event_arg(args, 0)?;
                unreachable!("{e}");
            });
            Interp::new(&prog, "go.m").call_manner(coord, "Go", vec![Value::Manifold(factory)])
        });
        match r {
            Err(MfError::Lang(e)) => {
                assert_eq!(e.line, 2, "error should carry the declaration line");
                assert!(matches!(e.kind, LangErrorKind::BadArgument { .. }));
            }
            other => panic!("expected a typed factory error, got {other:?}"),
        }
        env.shutdown();
    }
}
